//! Quickstart: the paper's core loop in thirty lines.
//!
//! A P2P system where peers cache query-range partitions; similar queries
//! find each other's cached partitions through locality sensitive hashing
//! over a Chord ring.
//!
//! Run with: `cargo run --release --example quickstart`

use ars::prelude::*;

fn main() {
    // 100 peers, the paper's parameters (approx. min-wise permutations,
    // k = 20 hash functions per group, l = 5 groups).
    let mut net = RangeSelectNetwork::new(100, SystemConfig::default());

    // A peer asks for patients aged 30–50. Nothing is cached yet: the
    // query goes to the source, and its partition is cached at the l
    // identifier-owning peers.
    let q1 = RangeSet::interval(30, 50);
    let miss = net.query(&q1);
    println!(
        "query {q1}: match = {:?} (cached for later)",
        miss.best_match
    );

    // A *similar* query — ages 30–49, Jaccard similarity ≈ 0.95 — now
    // locates the cached partition with high probability, even though it
    // was never asked before.
    let q2 = RangeSet::interval(30, 49);
    let hit = net.query(&q2);
    match &hit.best_match {
        Some(m) => println!(
            "query {q2}: matched cached partition {m} \
             (similarity {:.3}, recall {:.3}, {} overlay hops)",
            hit.similarity,
            hit.recall,
            hit.hops.iter().sum::<usize>()
        ),
        None => println!("query {q2}: no match this time (LSH is probabilistic)"),
    }

    // An identical repeat always hits exactly.
    let exact = net.query(&q1);
    assert!(exact.exact);
    println!("query {q1} again: exact hit, recall = {}", exact.recall);

    // The collision probability machinery behind it:
    let p = ars::lsh::group::match_probability(0.95, 20, 5);
    println!("P[shared identifier | similarity 0.95, k=20, l=5] = {p:.3}");
    println!(
        "network now stores {} partition copies across {} peers",
        net.total_partitions(),
        net.len()
    );
}
