//! The protocol as real messages: the same query stream through the
//! direct-call simulation and the message-passing rendition over the
//! deterministic event simulator, asserting they agree and reporting the
//! message/hop overhead the overlay pays.
//!
//! Run with: `cargo run --release --example message_passing`

use ars::prelude::*;

fn main() {
    let config = SystemConfig::default().with_seed(9001);
    let mut direct = RangeSelectNetwork::new(64, config.clone());
    let mut proto = ProtoNetwork::new(64, config);

    let trace = uniform_trace(500, 0, 1000, 17);
    let mut agreements = 0;
    for q in trace.queries() {
        let a = direct.query(q);
        let b = proto.query(q);
        assert_eq!(
            a.best_match, b.best_match,
            "the two renditions must find the same partition"
        );
        assert_eq!(a.hops, b.hops, "and route over the same paths");
        agreements += 1;
    }
    println!("both renditions agreed on all {agreements} queries");

    let delivered = proto.messages_delivered();
    println!(
        "message rendition delivered {delivered} messages \
         ({:.1} per query: l=5 routed requests + replies, plus stores on miss)",
        delivered as f64 / agreements as f64
    );
    println!(
        "wire traffic: {} bytes total, {:.0} bytes/query (framed binary encoding)",
        proto.bytes_sent(),
        proto.bytes_sent() as f64 / agreements as f64
    );

    let stats = direct.stats();
    println!(
        "direct rendition routed {} identifier lookups over {} total overlay hops \
         ({:.2} hops/lookup on a 64-peer ring; ½·log₂64 = 3)",
        stats.lookups,
        stats.total_hops,
        stats.total_hops as f64 / stats.lookups as f64
    );
}
