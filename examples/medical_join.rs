//! The paper's §2 running example, end to end: the Glaucoma prescription
//! query (Figure 1) parsed from SQL, planned with selections pushed to the
//! leaves, leaf partitions fetched through the P2P cache, and the joins
//! computed locally at the querying peer (Figure 2).
//!
//! Run with: `cargo run --release --example medical_join`

use ars::core::data::DataNetwork;
use ars::prelude::*;
use ars::relation::exec::BaseTables;
use ars::relation::schema::medical;
use ars::relation::value::days_since_1900;

/// Synthesize the four base relations of the global schema at the sources.
fn build_sources() -> BaseTables {
    let mut tables = BaseTables::new();
    tables.register(Relation::new(
        medical::patient(),
        (0..500u32)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::from(format!("patient-{i}")),
                    Value::Int(18 + (i * 7) % 70),
                ]
            })
            .collect(),
    ));
    tables.register(Relation::new(
        medical::diagnosis(),
        (0..500u32)
            .map(|i| {
                let diagnosis = match i % 3 {
                    0 => "Glaucoma",
                    1 => "Cataract",
                    _ => "Myopia",
                };
                vec![
                    Value::Int(i),
                    Value::from(diagnosis),
                    Value::Int(i % 25),
                    Value::Int(i),
                ]
            })
            .collect(),
    ));
    let epoch = days_since_1900(1998, 1, 1);
    tables.register(Relation::new(
        medical::prescription(),
        (0..500u32)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Date(epoch + (i * 5) % 2500),
                    Value::from(format!("rx-{}", i % 60)),
                    Value::from("as directed"),
                ]
            })
            .collect(),
    ));
    tables
}

fn main() {
    // The paper's query, §2 (with inclusive bounds spelled out).
    let sql = "SELECT Prescription.prescription \
               FROM Patient, Diagnosis, Prescription \
               WHERE 30 <= age AND age <= 50 \
               AND diagnosis = 'Glaucoma' \
               AND Patient.patient_id = Diagnosis.patient_id \
               AND 01-01-2000 <= date AND date <= 12-31-2002 \
               AND Diagnosis.prescription_id = Prescription.prescription_id";

    // Everyone knows the global schema.
    let mut planner = Planner::new();
    planner
        .register(medical::patient())
        .register(medical::diagnosis())
        .register(medical::physician())
        .register(medical::prescription());

    let parsed = parse_query(sql).expect("the paper's query parses");
    let plan = planner.plan(&parsed).expect("planning succeeds");
    println!("=== logical plan (selects pushed to the leaves) ===\n{plan}");

    // A 60-peer data-sharing network in front of the sources.
    let mut p2p = DataNetwork::new(60, SystemConfig::default(), build_sources());

    let first = execute(&plan, &mut p2p).expect("execution succeeds");
    println!(
        "=== first run: {} prescriptions; leaf fetches — cache: {}, source: {} ===",
        first.len(),
        p2p.stats.cache_hits,
        p2p.stats.source_fetches
    );
    for t in first.tuples().iter().take(5) {
        println!("  {}", t[0]);
    }
    if first.len() > 5 {
        println!("  … and {} more", first.len() - 5);
    }

    // Run it again: the ranged leaves (Patient.age, Prescription.date) now
    // come from peers that cached them, not the sources.
    let second = execute(&plan, &mut p2p).expect("execution succeeds");
    println!(
        "=== second run: {} prescriptions; leaf fetches — cache: {}, source: {} ===",
        second.len(),
        p2p.stats.cache_hits,
        p2p.stats.source_fetches
    );
    assert_eq!(first.len(), second.len());
    println!(
        "cached partitions in the network: {}",
        p2p.cached_partitions()
    );
}
