//! Adaptive padding in action — the paper's closing future-work item.
//!
//! The controller starts with no padding, watches the fraction of queries
//! answered completely over a sliding window, pads more when under target
//! (additive increase) and decays when the target is met (multiplicative
//! decrease).
//!
//! Run with: `cargo run --release --example adaptive_padding`

use ars::core::adaptive::{AdaptiveClient, AdaptivePadding};
use ars::core::recall::pct_fully_answered;
use ars::prelude::*;

const N_QUERIES: usize = 3_000;
const N_PEERS: usize = 200;
const SEED: u64 = 4242;

fn main() {
    let config = SystemConfig::default()
        .with_matching(MatchMeasure::Containment)
        .with_seed(SEED);
    let trace = uniform_trace(N_QUERIES, 0, 1000, SEED);

    // Fixed paddings for reference.
    println!(
        "{:<28} {:>16} {:>14}",
        "policy", "fully answered", "final padding"
    );
    for fixed in [0.0, 0.2] {
        let mut net = RangeSelectNetwork::new(N_PEERS, config.clone());
        let outs: Vec<QueryOutcome> = trace
            .queries()
            .iter()
            .map(|q| net.query_padded(q, fixed))
            .collect();
        let cut = outs.len() / 5;
        println!(
            "{:<28} {:>15.1}% {:>14.2}",
            format!("fixed {fixed}"),
            pct_fully_answered(&outs[cut..]),
            fixed
        );
    }

    // The adaptive controller: target 70% complete answers, pad up to 0.5.
    let mut net = RangeSelectNetwork::new(N_PEERS, config);
    let controller = AdaptivePadding::new(0.0, 0.5, 0.05, 0.7, 50);
    let mut client = AdaptiveClient::with_controller(&mut net, controller);
    let mut trail = Vec::new();
    let outs: Vec<QueryOutcome> = trace
        .queries()
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if i % 500 == 0 {
                trail.push((i, client.controller.current()));
            }
            client.query(q)
        })
        .collect();
    let cut = outs.len() / 5;
    println!(
        "{:<28} {:>15.1}% {:>14.2}",
        "adaptive (target 70%)",
        pct_fully_answered(&outs[cut..]),
        client.controller.current()
    );

    println!("\npadding trajectory:");
    for (i, p) in trail {
        println!("  query {i:>5}: padding = {p:.2}");
    }
    println!(
        "  window complete-rate at end: {:.1}%",
        100.0 * client.controller.window_complete_rate()
    );
}
