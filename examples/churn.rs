//! Chord under churn: grow a ring node by node, kill a batch of peers
//! abruptly, and watch stabilization repair the ring while lookups stay
//! correct.
//!
//! Run with: `cargo run --release --example churn`

use ars::prelude::*;

fn lookup_accuracy(net: &DynamicNetwork, rng: &mut DetRng, trials: usize) -> (usize, usize) {
    let ids = net.node_ids();
    let mut correct = 0;
    let mut failed = 0;
    for _ in 0..trials {
        let from = ids[rng.gen_index(ids.len())];
        let key = Id(rng.next_u32());
        match net.lookup(from, key) {
            Ok((owner, _)) if owner == net.true_owner(key) => correct += 1,
            Ok(_) => {}
            Err(_) => failed += 1,
        }
    }
    (correct, failed)
}

fn main() {
    let mut rng = DetRng::new(77);
    let first = Id(rng.next_u32());
    let mut net = DynamicNetwork::bootstrap(first, 8);

    // Grow to 60 peers.
    while net.len() < 60 {
        let id = Id(rng.next_u32());
        if net.node_ids().contains(&id) {
            continue;
        }
        net.join(id, first).expect("join");
        net.stabilize_all(32);
    }
    let rounds = net.stabilize_until_consistent(64).expect("converges");
    println!(
        "grew to {} peers (converged in {rounds} extra rounds)",
        net.len()
    );

    let (correct, failed) = lookup_accuracy(&net, &mut rng, 300);
    println!("healthy ring: {correct}/300 lookups correct, {failed} failed");

    // Abruptly kill 15 peers (25% of the network) at once.
    for _ in 0..15 {
        let ids = net.node_ids();
        let victim = ids[rng.gen_index(ids.len())];
        net.fail(victim).expect("fail");
    }
    println!("\nkilled 15 peers without warning; ring is now stale");
    let (correct, failed) = lookup_accuracy(&net, &mut rng, 300);
    println!("before repair: {correct}/300 lookups correct, {failed} failed");

    // Stabilization repairs successor lists and fingers.
    let mut round = 0;
    while !net.is_ring_consistent() {
        net.stabilize_all(32);
        round += 1;
        assert!(round < 128, "ring failed to converge");
    }
    println!("ring consistent again after {round} stabilization rounds");

    let (correct, failed) = lookup_accuracy(&net, &mut rng, 300);
    println!("after repair: {correct}/300 lookups correct, {failed} failed");
    assert_eq!(correct, 300);
}
