//! Multi-attribute range selection — the paper's §6 future-work item,
//! implemented: conjunctions like `30 ≤ age ≤ 50 ∧ 2000 ≤ date ≤ 2002`
//! are hashed as product sets and located approximately, exactly like
//! single-attribute partitions.
//!
//! Run with: `cargo run --release --example multiattr_selection`

use ars::core::multiattr::{MultiAttrNetwork, MultiRange};
use ars::prelude::*;
use ars::relation::value::days_since_1900;

fn conjunction(age: (u32, u32), dates: ((u32, u32, u32), (u32, u32, u32))) -> MultiRange {
    let (from, to) = dates;
    MultiRange::new([
        ("age", RangeSet::interval(age.0, age.1)),
        (
            "date",
            RangeSet::interval(
                days_since_1900(from.0, from.1, from.2),
                days_since_1900(to.0, to.1, to.2),
            ),
        ),
    ])
}

fn main() {
    let mut net = MultiAttrNetwork::new(
        80,
        ["age", "date"],
        SystemConfig::default().with_matching(MatchMeasure::Containment),
    );

    // The paper's example selection pair, as one conjunction: patients
    // aged 30–50 with prescriptions dated 2000-01-01 … 2002-12-31.
    let q = conjunction((30, 50), ((2000, 1, 1), (2002, 12, 31)));
    println!("query: {q}");
    println!(
        "  product-set cardinality: {} (21 ages × 1096 days)",
        q.len()
    );

    let miss = net.query(&q);
    println!(
        "  first ask: match = {:?} (cached)",
        miss.best_match.is_some()
    );

    // A similar conjunction: slightly different on *both* attributes.
    let near = conjunction((30, 49), ((2000, 1, 1), (2002, 12, 30)));
    println!("\nsimilar query: {near}");
    println!(
        "  product-set Jaccard with the cached partition: {:.4}",
        near.jaccard(&q)
    );
    let out = net.query(&near);
    match &out.best_match {
        Some(m) => println!(
            "  matched {m}\n  similarity {:.4}, recall {:.4}",
            out.similarity, out.recall
        ),
        None => println!("  no match this time (both attributes must collide)"),
    }

    // A conjunction over different attributes can never be answered by it.
    let other = MultiRange::new([("age", RangeSet::interval(30, 50))]);
    println!(
        "\nage-only query vs the cached 2-attribute partition: Jaccard = {}",
        other.jaccard(&q)
    );

    let exact = net.query(&q);
    assert!(exact.exact);
    println!(
        "\nre-asking the original: exact hit (recall {})",
        exact.recall
    );
}
