//! The §5.2 quality levers, side by side: matching measure (Jaccard vs
//! containment) and query padding. Runs the same seeded workload through
//! four configurations and prints the recall table.
//!
//! Run with: `cargo run --release --example padded_queries`

use ars::core::recall::{mean_recall, pct_fully_answered, recall_curve};
use ars::prelude::*;

const N_QUERIES: usize = 3_000;
const N_PEERS: usize = 300;
const SEED: u64 = 2003;

fn run(label: &str, config: SystemConfig) -> (String, Vec<QueryOutcome>) {
    let trace = uniform_trace(N_QUERIES, 0, 1000, SEED);
    let mut net = RangeSelectNetwork::new(N_PEERS, config);
    let outs = net.run_trace(trace.queries());
    let cut = outs.len() / 5; // drop 20% warm-up, as the paper does
    (label.to_string(), outs[cut..].to_vec())
}

fn main() {
    let configs = [
        run("jaccard matching", SystemConfig::default().with_seed(SEED)),
        run(
            "containment matching",
            SystemConfig::default()
                .with_matching(MatchMeasure::Containment)
                .with_seed(SEED),
        ),
        run(
            "containment + 20% padding",
            SystemConfig::default()
                .with_matching(MatchMeasure::Containment)
                .with_padding(0.2)
                .with_seed(SEED),
        ),
        run(
            "containment + local index (§5.3)",
            SystemConfig::default()
                .with_matching(MatchMeasure::Containment)
                .with_local_index(true)
                .with_seed(SEED),
        ),
    ];

    println!(
        "{:<36} {:>16} {:>12}",
        "configuration", "fully answered", "mean recall"
    );
    for (label, outs) in &configs {
        println!(
            "{label:<36} {:>15.1}% {:>12.3}",
            pct_fully_answered(outs),
            mean_recall(outs)
        );
    }

    println!("\nrecall curve (% of queries with recall ≥ t):");
    print!("{:>6}", "t");
    for (label, _) in &configs {
        print!(" {:>30}", &label[..label.len().min(30)]);
    }
    println!();
    let curves: Vec<_> = configs.iter().map(|(_, o)| recall_curve(o)).collect();
    for i in 0..curves[0].len() {
        print!("{:>6.1}", curves[0][i].0);
        for c in &curves {
            print!(" {:>30.1}", c[i].1);
        }
        println!();
    }

    println!(
        "\nThe paper's ordering — containment > Jaccard for complete answers, \
         padding on top of containment highest — should be visible above."
    );
}
