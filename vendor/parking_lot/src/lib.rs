//! Offline stub of the `parking_lot` crate — see `vendor/README.md`.
//!
//! `Mutex` and `RwLock` facades over `std::sync` with parking_lot's
//! non-poisoning API: `lock`/`read`/`write` return guards directly. A
//! poisoned std lock (a holder panicked) is treated as released, matching
//! parking_lot's behaviour of never poisoning.

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
