//! Offline stub of the `bytes` crate — see `vendor/README.md`.
//!
//! Provides the subset this workspace uses: contiguous byte buffers with
//! big-endian primitive accessors. `Bytes` is a read cursor over an
//! immutable buffer; `BytesMut` is an append-only builder. All multi-byte
//! accessors use network (big-endian) byte order, matching the real crate.

use std::sync::Arc;

/// Read access to a contiguous byte buffer.
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Read a `u8`.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// An immutable byte buffer with a read cursor. Cloning is cheap (shared
/// storage, independent cursor).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `n` unread bytes, advancing `self`
    /// past them.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A zero-copy view of a sub-range of the unread bytes.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable, append-only byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(n),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_f64(1.5);
        assert_eq!(b.len(), 1 + 4 + 8 + 8);
        // Big-endian layout.
        assert_eq!(&b.as_slice()[1..5], &[0xDE, 0xAD, 0xBE, 0xEF]);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64(), 1.5);
        assert!(r.is_empty());
    }

    #[test]
    fn split_to_partitions() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_slice(), &[1, 2]);
        assert_eq!(b.as_slice(), &[3, 4, 5]);
        assert_eq!(b.remaining(), 3);
    }
}
