//! Offline stub of the `proptest` crate — see `vendor/README.md`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro,
//! `prop_assert*`/`prop_assume`, `any`, integer-range / tuple / `Just` /
//! mapped strategies, `prop::collection::vec`, and `prop::sample::select`.
//! Cases are generated from a deterministic per-test RNG (seeded by the
//! test name), so failures are reproducible. There is no shrinking: a
//! failing case panics with the generated inputs left in the assert
//! message.

pub mod test_runner {
    //! Configuration and RNG for generated test cases.

    /// Number of cases to run per property (mirrors
    /// `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Accepted (non-rejected) cases required per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Marker returned by `prop_assume!` rejections.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Deterministic splitmix64 RNG, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from a test name (FNV-1a), so every test draws an
        /// independent, stable stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty sampling range");
            // Widening-multiply range reduction (bias < 2^-64).
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() - *self.start()) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    *self.start() + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            // 53 uniform mantissa bits scaled into [start, end).
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind [`crate::prelude::any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw a uniform value over the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`crate::prelude::any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Any<T> {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` strategy: each value has a length in `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly-chosen clones of the given values.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// Choose uniformly from `values` (must be non-empty).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from empty list");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Namespace mirror of the real crate's `prop` module path
/// (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! Everything a property test needs.

    pub use crate::arbitrary::{Any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The canonical full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Assert a condition inside a property test; panics with the condition
/// text (and optional formatted message) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Reject the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Define property tests. Accepts an optional leading
/// `#![proptest_config(..)]`, then any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        // Callers write `#[test]` themselves; it is captured by the `meta`
        // repetition and re-emitted here with any other attributes.
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            let strategies = ($($strat,)+);
            #[allow(unused_mut)]
            let mut run_case = |rng: &mut $crate::test_runner::TestRng|
                -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&strategies, rng);
                {
                    $body
                }
                ::std::result::Result::Ok(())
            };
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).saturating_add(1000),
                    "too many prop_assume rejections in {}",
                    stringify!($name),
                );
                if run_case(&mut rng).is_ok() {
                    accepted += 1;
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let mut c = crate::test_runner::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategy_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("r");
        let s = 10u32..20;
        for _ in 0..1000 {
            let v = crate::strategy::Strategy::generate(&s, &mut rng);
            assert!((10..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_and_maps(
            x in 0u32..100,
            (a, b) in (0u64..10, 0u64..10).prop_map(|(a, b)| (a + 1, b)),
            pick in prop::sample::select(vec![2u32, 4, 8]),
            v in prop::collection::vec(0u8..5, 0..4),
        ) {
            prop_assume!(x != 99);
            prop_assert!(x < 99);
            prop_assert!((1..=10).contains(&a) && b < 10);
            prop_assert!(pick == 2 || pick == 4 || pick == 8);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(v.iter().filter(|&&e| e >= 5).count(), 0);
        }
    }
}
