//! Offline stub of the `criterion` crate — see `vendor/README.md`.
//!
//! Implements the harness subset this workspace's benches use:
//! `Criterion`, `benchmark_group` / `BenchmarkGroup`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros. Each benchmark is timed with an adaptive batch loop (target
//! ~0.2 s per sample) and the median ns/iter is printed to stdout.
//! There is no statistical analysis, HTML report, or CLI filtering.

use std::fmt::Display;
use std::time::Instant;

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value,
    /// rendered as `name/param` like the real crate.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median ns per iteration, filled in by [`Bencher::iter`].
    result_ns: f64,
}

impl Bencher {
    /// Run `f` repeatedly and record the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate a batch size so one sample takes roughly 0.2 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            if elapsed > 200_000 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            result_ns: f64::NAN,
        };
        f(&mut b);
        println!("{}/{}: {:.1} ns/iter", self.name, id.0, b.result_ns);
        self
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a runner function, mirroring the
/// real crate's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running each `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            ran = true;
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        assert!(ran);
    }
}
