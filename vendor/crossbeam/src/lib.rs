//! Offline stub of the `crossbeam` crate — see `vendor/README.md`.
//!
//! Provides `crossbeam::channel` with the `unbounded` MPSC channel surface
//! this workspace uses, delegating to `std::sync::mpsc`. Semantics match
//! where observable: FIFO per sender, `send` fails only after the receiver
//! is dropped, `recv` blocks and fails once all senders are gone.

/// Multi-producer channels (stub over `std::sync::mpsc`).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone; the
    /// unsent message is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring `T: Debug`, so callers
    // can `.expect()` on sends of non-Debug message types.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; fails only if the receiver has been dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t).map_err(|mpsc::SendError(t)| SendError(t))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails once every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive: `None` if the channel is currently empty
        /// or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            h.join().unwrap();
            drop(tx);
            let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_after_receiver_drop_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}
