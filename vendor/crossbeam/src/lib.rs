//! Offline stub of the `crossbeam` crate — see `vendor/README.md`.
//!
//! Provides `crossbeam::channel` with the `unbounded` MPMC channel surface
//! this workspace uses. Like the real crate — and unlike `std::sync::mpsc`
//! — **both halves are `Clone`**, so a pool of worker threads can share
//! one `Receiver` and each message is delivered to exactly one of them.
//! Semantics match where observable: FIFO delivery, `send` fails only
//! after every receiver is dropped, `recv` blocks and fails once all
//! senders are gone and the queue is drained.

/// Multi-producer multi-consumer channels (stub over `Mutex` + `Condvar`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    impl<T> Inner<T> {
        fn state(&self) -> MutexGuard<'_, State<T>> {
            // A panicking holder never leaves the queue mid-mutation
            // (push/pop are single calls), so poisoning is ignorable —
            // matching crossbeam, which never poisons.
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// Receiving half of a channel. Cloneable: each message goes to
    /// exactly one receiver.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring `T: Debug`, so callers
    // can `.expect()` on sends of non-Debug message types.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone and
    /// the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.state().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake blocked receivers so they observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.state().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state().receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        /// Send a message; fails only if every receiver has been dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state();
            if st.receivers == 0 {
                return Err(SendError(t));
            }
            st.queue.push_back(t);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails once every sender is gone
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state();
            loop {
                if let Some(t) = st.queue.pop_front() {
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive: `None` if the channel is currently empty
        /// or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.0.state().queue.pop_front()
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            h.join().unwrap();
            drop(tx);
            let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_after_receiver_drop_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn cloned_receivers_split_the_stream() {
            // MPMC: each message is consumed by exactly one receiver.
            let (tx, rx) = unbounded();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<i32> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }

        #[test]
        fn recv_drains_queue_after_senders_drop() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn try_recv_is_nonblocking() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), None);
            tx.send(9).unwrap();
            assert_eq!(rx.try_recv(), Some(9));
            assert_eq!(rx.try_recv(), None);
        }

        #[test]
        fn send_succeeds_while_any_receiver_lives() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            drop(rx);
            tx.send(5).unwrap();
            assert_eq!(rx2.recv(), Ok(5));
        }
    }
}
