//! Typed attribute values.
//!
//! Range selection needs attribute domains that map onto the `u32` value
//! space the LSH layer hashes (ages, ids, dates-as-day-numbers). Strings
//! participate in equality predicates and join keys only — matching the
//! paper's queries (`diagnosis = "Glaucoma"` is an equality select; the
//! range selects are on integers and dates).

use std::fmt;

/// The type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Unsigned 32-bit integer (ids, ages, counts).
    Int,
    /// UTF-8 string (names, diagnoses).
    Str,
    /// A calendar date, stored as days since 1900-01-01 — totally ordered
    /// and range-hashable like any integer.
    Date,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "INT"),
            ValueType::Str => write!(f, "STRING"),
            ValueType::Date => write!(f, "DATE"),
        }
    }
}

/// One attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Integer value.
    Int(u32),
    /// String value.
    Str(String),
    /// Date as days since 1900-01-01.
    Date(u32),
}

impl Value {
    /// The type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Str(_) => ValueType::Str,
            Value::Date(_) => ValueType::Date,
        }
    }

    /// The orderable `u32` key of this value, if it has one (integers and
    /// dates). This is what the LSH layer hashes.
    pub fn as_ordinal(&self) -> Option<u32> {
        match self {
            Value::Int(v) | Value::Date(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Build a date value from a calendar day.
    ///
    /// # Panics
    /// Panics on an invalid date or a date before 1900-01-01.
    pub fn date(year: u32, month: u32, day: u32) -> Value {
        Value::Date(days_since_1900(year, month, day))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => {
                let (y, m, dd) = from_days_since_1900(*d);
                write!(f, "{y:04}-{m:02}-{dd:02}")
            }
        }
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

const DAYS_IN_MONTH: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: u32) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

fn days_in_month(year: u32, month: u32) -> u32 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

/// Days elapsed since 1900-01-01 (which is day 0).
///
/// # Panics
/// Panics on out-of-range month/day or a year before 1900.
pub fn days_since_1900(year: u32, month: u32, day: u32) -> u32 {
    assert!(year >= 1900, "dates before 1900 are unsupported");
    assert!((1..=12).contains(&month), "invalid month {month}");
    assert!(
        day >= 1 && day <= days_in_month(year, month),
        "invalid day {day} for {year}-{month:02}"
    );
    let mut days = 0u32;
    for y in 1900..year {
        days += if is_leap(y) { 366 } else { 365 };
    }
    for m in 1..month {
        days += days_in_month(year, m);
    }
    days + (day - 1)
}

/// Inverse of [`days_since_1900`].
pub fn from_days_since_1900(mut days: u32) -> (u32, u32, u32) {
    let mut year = 1900;
    loop {
        let in_year = if is_leap(year) { 366 } else { 365 };
        if days < in_year {
            break;
        }
        days -= in_year;
        year += 1;
    }
    let mut month = 1;
    loop {
        let in_month = days_in_month(year, month);
        if days < in_month {
            break;
        }
        days -= in_month;
        month += 1;
    }
    (year, month, days + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn types_and_ordinals() {
        assert_eq!(Value::Int(5).value_type(), ValueType::Int);
        assert_eq!(Value::Int(5).as_ordinal(), Some(5));
        assert_eq!(Value::from("x").value_type(), ValueType::Str);
        assert_eq!(Value::from("x").as_ordinal(), None);
        assert_eq!(Value::date(1900, 1, 1).as_ordinal(), Some(0));
    }

    #[test]
    fn date_epoch() {
        assert_eq!(days_since_1900(1900, 1, 1), 0);
        assert_eq!(days_since_1900(1900, 1, 2), 1);
        assert_eq!(days_since_1900(1900, 2, 1), 31);
        assert_eq!(days_since_1900(1901, 1, 1), 365); // 1900 is not a leap year
    }

    #[test]
    fn leap_year_rules() {
        assert!(!is_leap(1900)); // divisible by 100 but not 400
        assert!(is_leap(2000));
        assert!(is_leap(2004));
        assert!(!is_leap(2001));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
    }

    #[test]
    fn paper_query_dates_are_ordered() {
        // 01-01-2000 < date < 12-31-2002 from the paper's example query.
        let lo = days_since_1900(2000, 1, 1);
        let hi = days_since_1900(2002, 12, 31);
        assert!(lo < hi);
        // Interval width: 2000 is leap (366) + 2001 (365) + 2002 through
        // Dec 31 (364 more days after Jan 1 2002... just check a known total)
        assert_eq!(hi - lo, 366 + 365 + 364);
    }

    #[test]
    #[should_panic(expected = "invalid day")]
    fn invalid_date_rejected() {
        Value::date(2001, 2, 29);
    }

    #[test]
    #[should_panic(expected = "before 1900")]
    fn pre_epoch_rejected() {
        Value::date(1899, 12, 31);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Value::Int(42)), "42");
        assert_eq!(format!("{}", Value::from("abc")), "abc");
        assert_eq!(format!("{}", Value::date(2002, 12, 31)), "2002-12-31");
    }

    #[test]
    fn value_ordering_within_type() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::from("a") < Value::from("b"));
        assert!(Value::date(2000, 1, 1) < Value::date(2000, 1, 2));
    }

    proptest! {
        #[test]
        fn date_roundtrip(days in 0u32..80_000) {
            let (y, m, d) = from_days_since_1900(days);
            prop_assert_eq!(days_since_1900(y, m, d), days);
        }

        #[test]
        fn date_encoding_is_monotone(a in 0u32..80_000, b in 0u32..80_000) {
            let (ya, ma, da) = from_days_since_1900(a);
            let (yb, mb, db) = from_days_since_1900(b);
            prop_assert_eq!(a.cmp(&b), (ya, ma, da).cmp(&(yb, mb, db)));
        }
    }
}
