//! A small SQL parser for the paper's query class.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query      := SELECT projection FROM table-list [WHERE condition (AND condition)*]
//! projection := '*' | attr-ref (',' attr-ref)*
//! table-list := ident (',' ident)*
//! condition  := attr-ref '=' attr-ref            -- equi-join
//!             | attr-ref cmp literal             -- selection
//!             | literal cmp attr-ref             -- selection (flipped)
//!             | literal rel attr-ref rel literal -- chained range, e.g. 30 < age < 50
//! cmp        := '=' | '<' | '<=' | '>' | '>='
//! rel        := '<' | '<='
//! literal    := integer | 'string' | "string" | date (MM-DD-YYYY or YYYY-MM-DD)
//! attr-ref   := ident | ident '.' ident
//! ```
//!
//! This covers the paper's example query verbatim (§2), including its
//! chained comparisons (`30 < age < 50`) and dash-separated date literals
//! (`01-01-2000 < date`).

use std::fmt;

/// A reference to an attribute, possibly qualified by relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrRef {
    /// `relation.attribute`
    Qualified(String, String),
    /// bare `attribute`
    Bare(String),
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrRef::Qualified(r, a) => write!(f, "{r}.{a}"),
            AttrRef::Bare(a) => write!(f, "{a}"),
        }
    }
}

/// A literal value in a condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Literal {
    /// Integer literal.
    Int(u32),
    /// Quoted string literal.
    Str(String),
    /// Date literal `(year, month, day)`.
    Date(u32, u32, u32),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// One WHERE-clause conjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// `attr op literal` (normalized: attribute always on the left).
    Cmp {
        /// The attribute.
        attr: AttrRef,
        /// The operator, after normalization.
        op: CmpOp,
        /// The literal operand.
        lit: Literal,
    },
    /// `lo (<|<=) attr (<|<=) hi`
    Between {
        /// Lower literal.
        lo: Literal,
        /// Whether the lower bound is inclusive.
        lo_inclusive: bool,
        /// The attribute.
        attr: AttrRef,
        /// Upper literal.
        hi: Literal,
        /// Whether the upper bound is inclusive.
        hi_inclusive: bool,
    },
    /// `attr = attr` equi-join.
    JoinEq {
        /// Left attribute.
        left: AttrRef,
        /// Right attribute.
        right: AttrRef,
    },
}

/// SELECT list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// Explicit attribute list.
    Attrs(Vec<AttrRef>),
}

/// A parsed (not yet planned) query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedQuery {
    /// The SELECT list.
    pub projection: Projection,
    /// FROM relations, in order.
    pub relations: Vec<String>,
    /// WHERE conjuncts.
    pub conditions: Vec<Condition>,
}

/// Parse errors, with byte position where known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input, when known.
    pub position: Option<usize>,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some(p) => write!(f, "parse error at byte {p}: {}", self.message),
            None => write!(f, "parse error: {}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>, position: Option<usize>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
        position,
    })
}

// ---------------------------------------------------------------- tokenizer

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Int(u32),
    Str(String),
    Date(u32, u32, u32),
    Comma,
    Dot,
    Star,
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Debug)]
struct Tokenizer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(src: &'a str) -> Tokenizer<'a> {
        Tokenizer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn tokenize(mut self) -> Result<Vec<(Token, usize)>, ParseError> {
        let mut out = Vec::new();
        loop {
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos >= self.bytes.len() {
                return Ok(out);
            }
            let start = self.pos;
            let c = self.bytes[self.pos];
            let tok = match c {
                b',' => {
                    self.pos += 1;
                    Token::Comma
                }
                b'.' => {
                    self.pos += 1;
                    Token::Dot
                }
                b'*' => {
                    self.pos += 1;
                    Token::Star
                }
                b'=' => {
                    self.pos += 1;
                    Token::Eq
                }
                b'<' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        Token::Le
                    } else {
                        Token::Lt
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        Token::Ge
                    } else {
                        Token::Gt
                    }
                }
                b'\'' | b'"' => {
                    let quote = c;
                    self.pos += 1;
                    let s_start = self.pos;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= self.bytes.len() {
                        return err("unterminated string literal", Some(start));
                    }
                    let s = self.src[s_start..self.pos].to_string();
                    self.pos += 1;
                    Token::Str(s)
                }
                b'0'..=b'9' => self.number_or_date(start)?,
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos].is_ascii_alphanumeric()
                            || self.bytes[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    Token::Ident(self.src[start..self.pos].to_string())
                }
                other => {
                    return err(
                        format!("unexpected character {:?}", other as char),
                        Some(start),
                    )
                }
            };
            out.push((tok, start));
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// A digit run, optionally continuing as `a-b-c` (a date literal).
    fn number_or_date(&mut self, start: usize) -> Result<Token, ParseError> {
        let first = self.digits(start)?;
        if self.peek() != Some(b'-') {
            return Ok(Token::Int(first));
        }
        self.pos += 1;
        let second = self.digits(self.pos)?;
        if self.peek() != Some(b'-') {
            return err("expected second '-' in date literal", Some(start));
        }
        self.pos += 1;
        let third = self.digits(self.pos)?;
        // MM-DD-YYYY (the paper's style) or YYYY-MM-DD (ISO).
        let (y, m, d) = if first >= 1000 {
            (first, second, third)
        } else {
            (third, first, second)
        };
        if !(1..=12).contains(&m) || !(1..=31).contains(&d) || y < 1900 {
            return err(
                format!("invalid date literal {first}-{second}-{third}"),
                Some(start),
            );
        }
        Ok(Token::Date(y, m, d))
    }

    fn digits(&mut self, at: usize) -> Result<u32, ParseError> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return err("expected digits", Some(at));
        }
        self.src[start..self.pos]
            .parse::<u32>()
            .map_err(|_| ParseError {
                message: "integer literal out of range".to_string(),
                position: Some(at),
            })
    }
}

// ------------------------------------------------------------------ parser

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn peek_pos(&self) -> Option<usize> {
        self.tokens.get(self.pos).map(|&(_, p)| p)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => err(format!("expected {kw}, found {other:?}"), self.peek_pos()),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => err(
                format!("expected identifier, found {other:?}"),
                self.peek_pos(),
            ),
        }
    }

    fn attr_ref(&mut self) -> Result<AttrRef, ParseError> {
        let first = self.ident()?;
        if self.peek() == Some(&Token::Dot) {
            self.next();
            let second = self.ident()?;
            Ok(AttrRef::Qualified(first, second))
        } else {
            Ok(AttrRef::Bare(first))
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Literal::Int(v)),
            Some(Token::Str(s)) => Ok(Literal::Str(s)),
            Some(Token::Date(y, m, d)) => Ok(Literal::Date(y, m, d)),
            other => err(
                format!("expected literal, found {other:?}"),
                self.peek_pos(),
            ),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        match self.next() {
            Some(Token::Eq) => Ok(CmpOp::Eq),
            Some(Token::Lt) => Ok(CmpOp::Lt),
            Some(Token::Le) => Ok(CmpOp::Le),
            Some(Token::Gt) => Ok(CmpOp::Gt),
            Some(Token::Ge) => Ok(CmpOp::Ge),
            other => err(
                format!("expected comparison, found {other:?}"),
                self.peek_pos(),
            ),
        }
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        let lit_first = matches!(
            self.peek(),
            Some(Token::Int(_)) | Some(Token::Str(_)) | Some(Token::Date(..))
        );
        if lit_first {
            // literal op attr [op literal]  — possibly a chained range.
            let lo = self.literal()?;
            let op1 = self.cmp_op()?;
            let attr = self.attr_ref()?;
            let chained = matches!(self.peek(), Some(Token::Lt) | Some(Token::Le));
            if chained {
                if !matches!(op1, CmpOp::Lt | CmpOp::Le) {
                    return err("chained comparison must use < or <=", self.peek_pos());
                }
                let op2 = self.cmp_op()?;
                let hi = self.literal()?;
                return Ok(Condition::Between {
                    lo,
                    lo_inclusive: op1 == CmpOp::Le,
                    attr,
                    hi,
                    hi_inclusive: op2 == CmpOp::Le,
                });
            }
            // `lit op attr` ⇒ normalize to `attr flip(op) lit`.
            return Ok(Condition::Cmp {
                attr,
                op: op1.flip(),
                lit: lo,
            });
        }
        // attr op (attr | literal)
        let left = self.attr_ref()?;
        let op = self.cmp_op()?;
        match self.peek() {
            Some(Token::Ident(_)) => {
                if op != CmpOp::Eq {
                    return err("joins must use =", self.peek_pos());
                }
                let right = self.attr_ref()?;
                Ok(Condition::JoinEq { left, right })
            }
            _ => {
                let lit = self.literal()?;
                Ok(Condition::Cmp {
                    attr: left,
                    op,
                    lit,
                })
            }
        }
    }
}

/// Parse one SQL query of the supported class.
pub fn parse_query(sql: &str) -> Result<ParsedQuery, ParseError> {
    let tokens = Tokenizer::new(sql).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };

    p.expect_keyword("SELECT")?;
    let projection = if p.peek() == Some(&Token::Star) {
        p.next();
        Projection::Star
    } else {
        let mut attrs = vec![p.attr_ref()?];
        while p.peek() == Some(&Token::Comma) {
            p.next();
            attrs.push(p.attr_ref()?);
        }
        Projection::Attrs(attrs)
    };

    p.expect_keyword("FROM")?;
    let mut relations = vec![p.ident()?];
    while p.peek() == Some(&Token::Comma) {
        p.next();
        relations.push(p.ident()?);
    }

    let mut conditions = Vec::new();
    if p.at_keyword("WHERE") {
        p.next();
        conditions.push(p.condition()?);
        while p.at_keyword("AND") {
            p.next();
            conditions.push(p.condition()?);
        }
    }

    if p.pos != p.tokens.len() {
        return err(
            format!("unexpected trailing input: {:?}", p.peek()),
            p.peek_pos(),
        );
    }

    Ok(ParsedQuery {
        projection,
        relations,
        conditions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select_star() {
        let q = parse_query("SELECT * FROM Patient WHERE age = 30").unwrap();
        assert_eq!(q.projection, Projection::Star);
        assert_eq!(q.relations, vec!["Patient"]);
        assert_eq!(
            q.conditions,
            vec![Condition::Cmp {
                attr: AttrRef::Bare("age".into()),
                op: CmpOp::Eq,
                lit: Literal::Int(30),
            }]
        );
    }

    #[test]
    fn parses_no_where() {
        let q = parse_query("select name from Patient").unwrap();
        assert_eq!(q.conditions, vec![]);
        assert_eq!(
            q.projection,
            Projection::Attrs(vec![AttrRef::Bare("name".into())])
        );
    }

    #[test]
    fn parses_chained_range() {
        let q = parse_query("SELECT * FROM Patient WHERE 30 < age < 50").unwrap();
        assert_eq!(
            q.conditions,
            vec![Condition::Between {
                lo: Literal::Int(30),
                lo_inclusive: false,
                attr: AttrRef::Bare("age".into()),
                hi: Literal::Int(50),
                hi_inclusive: false,
            }]
        );
    }

    #[test]
    fn parses_inclusive_chain() {
        let q = parse_query("SELECT * FROM T WHERE 1 <= x < 9").unwrap();
        assert_eq!(
            q.conditions,
            vec![Condition::Between {
                lo: Literal::Int(1),
                lo_inclusive: true,
                attr: AttrRef::Bare("x".into()),
                hi: Literal::Int(9),
                hi_inclusive: false,
            }]
        );
    }

    #[test]
    fn normalizes_flipped_comparison() {
        // `30 < age` becomes `age > 30`.
        let q = parse_query("SELECT * FROM Patient WHERE 30 < age").unwrap();
        assert_eq!(
            q.conditions,
            vec![Condition::Cmp {
                attr: AttrRef::Bare("age".into()),
                op: CmpOp::Gt,
                lit: Literal::Int(30),
            }]
        );
    }

    #[test]
    fn parses_paper_date_literals() {
        let q = parse_query("SELECT * FROM Prescription WHERE 01-01-2000 <= date <= 12-31-2002")
            .unwrap();
        assert_eq!(
            q.conditions,
            vec![Condition::Between {
                lo: Literal::Date(2000, 1, 1),
                lo_inclusive: true,
                attr: AttrRef::Bare("date".into()),
                hi: Literal::Date(2002, 12, 31),
                hi_inclusive: true,
            }]
        );
    }

    #[test]
    fn parses_iso_dates() {
        let q = parse_query("SELECT * FROM Prescription WHERE date >= 2000-01-01").unwrap();
        assert_eq!(
            q.conditions,
            vec![Condition::Cmp {
                attr: AttrRef::Bare("date".into()),
                op: CmpOp::Ge,
                lit: Literal::Date(2000, 1, 1),
            }]
        );
    }

    #[test]
    fn parses_join_and_qualified_attrs() {
        let q = parse_query(
            "SELECT Prescription.prescription FROM Diagnosis, Prescription \
             WHERE Diagnosis.prescription_id = Prescription.prescription_id",
        )
        .unwrap();
        assert_eq!(
            q.projection,
            Projection::Attrs(vec![AttrRef::Qualified(
                "Prescription".into(),
                "prescription".into()
            )])
        );
        assert_eq!(
            q.conditions,
            vec![Condition::JoinEq {
                left: AttrRef::Qualified("Diagnosis".into(), "prescription_id".into()),
                right: AttrRef::Qualified("Prescription".into(), "prescription_id".into()),
            }]
        );
    }

    #[test]
    fn parses_string_literals_both_quotes() {
        let q1 = parse_query("SELECT * FROM D WHERE diagnosis = 'Glaucoma'").unwrap();
        let q2 = parse_query("SELECT * FROM D WHERE diagnosis = \"Glaucoma\"").unwrap();
        assert_eq!(q1.conditions, q2.conditions);
    }

    #[test]
    fn rejects_unterminated_string() {
        let e = parse_query("SELECT * FROM D WHERE x = 'oops").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let e = parse_query("SELECT * FROM T WHERE a = 1 banana").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn rejects_missing_from() {
        assert!(parse_query("SELECT *").is_err());
        assert!(parse_query("SELECT * WHERE a = 1").is_err());
    }

    #[test]
    fn rejects_non_eq_join() {
        let e = parse_query("SELECT * FROM A, B WHERE A.x < B.y").unwrap_err();
        assert!(e.message.contains("joins must use ="));
    }

    #[test]
    fn rejects_invalid_date() {
        assert!(parse_query("SELECT * FROM T WHERE 13-45-2000 < d").is_err());
    }

    #[test]
    fn rejects_chain_with_eq() {
        let e = parse_query("SELECT * FROM T WHERE 1 = x < 5").unwrap_err();
        assert!(e.message.contains("chained"));
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_query("select * from T where 1 < x and x < 5").unwrap();
        assert_eq!(q.conditions.len(), 2);
    }

    #[test]
    fn parses_full_paper_query() {
        let q = parse_query(
            "Select Prescription.prescription \
             from Patient, Diagnosis, Prescription \
             where 30 <= age AND age <= 50 \
             and diagnosis = 'Glaucoma' \
             and Patient.patient_id = Diagnosis.patient_id \
             and 01-01-2000 <= date AND date <= 12-31-2002 \
             and Diagnosis.prescription_id = Prescription.prescription_id",
        )
        .unwrap();
        assert_eq!(q.relations.len(), 3);
        assert_eq!(q.conditions.len(), 7);
    }

    #[test]
    fn error_display_includes_position() {
        let e = parse_query("SELECT * FROM T WHERE ^").unwrap_err();
        let msg = format!("{e}");
        assert!(msg.contains("parse error"));
        assert!(msg.contains("byte"));
    }
}
