//! Schemas, tuples, and relations.
//!
//! The paper assumes "a global schema that is known to all the peers"
//! (§2). [`Schema`] describes one relation's attributes; [`Relation`] is a
//! bag of [`Tuple`]s conforming to a schema — either a base relation at a
//! source peer or a fetched fragment being joined at a querying peer.

use crate::value::{Value, ValueType};
use std::fmt;
use std::sync::Arc;

/// One attribute (column) of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within its schema.
    pub name: String,
    /// Attribute type.
    pub ty: ValueType,
}

/// The schema of one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Create a schema.
    ///
    /// # Panics
    /// Panics on duplicate attribute names or an empty attribute list.
    pub fn new<S: Into<String>>(name: S, attributes: Vec<(&str, ValueType)>) -> Schema {
        assert!(!attributes.is_empty(), "schema needs attributes");
        let attributes: Vec<Attribute> = attributes
            .into_iter()
            .map(|(n, ty)| Attribute {
                name: n.to_string(),
                ty,
            })
            .collect();
        for (i, a) in attributes.iter().enumerate() {
            assert!(
                !attributes[..i].iter().any(|b| b.name == a.name),
                "duplicate attribute {}",
                a.name
            );
        }
        Schema {
            name: name.into(),
            attributes,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute list in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Index of an attribute by name.
    pub fn index_of(&self, attr: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == attr)
    }

    /// Type of an attribute by name.
    pub fn type_of(&self, attr: &str) -> Option<ValueType> {
        self.index_of(attr).map(|i| self.attributes[i].ty)
    }

    /// Derive a schema for a projection of this one.
    ///
    /// # Panics
    /// Panics if any projected attribute is unknown.
    pub fn project(&self, attrs: &[&str]) -> Schema {
        let attributes = attrs
            .iter()
            .map(|&a| {
                let i = self
                    .index_of(a)
                    .unwrap_or_else(|| panic!("unknown attribute {a} in {}", self.name));
                self.attributes[i].clone()
            })
            .collect();
        Schema {
            name: format!("π({})", self.name),
            attributes,
        }
    }

    /// Derive the schema of a natural concatenation with `other`
    /// (attributes qualified by origin where names collide).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut attributes = self.attributes.clone();
        for a in &other.attributes {
            let name = if self.index_of(&a.name).is_some() {
                format!("{}.{}", other.name, a.name)
            } else {
                a.name.clone()
            };
            attributes.push(Attribute { name, ty: a.ty });
        }
        Schema {
            name: format!("{}⋈{}", self.name, other.name),
            attributes,
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

/// One tuple: values positionally aligned with a schema.
pub type Tuple = Vec<Value>;

/// A bag of tuples under a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Create an empty relation.
    pub fn empty(schema: Arc<Schema>) -> Relation {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Create a relation from tuples, validating arity and types.
    ///
    /// # Panics
    /// Panics if a tuple does not conform to the schema.
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Relation {
        for t in &tuples {
            validate(&schema, t);
        }
        Relation { schema, tuples }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a validated tuple.
    ///
    /// # Panics
    /// Panics if the tuple does not conform to the schema.
    pub fn push(&mut self, tuple: Tuple) {
        validate(&self.schema, &tuple);
        self.tuples.push(tuple);
    }

    /// Consume into tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// The value of attribute `attr` in tuple `i`.
    ///
    /// # Panics
    /// Panics on an unknown attribute or out-of-range index.
    pub fn value(&self, i: usize, attr: &str) -> &Value {
        let col = self
            .schema
            .index_of(attr)
            .unwrap_or_else(|| panic!("unknown attribute {attr}"));
        &self.tuples[i][col]
    }
}

fn validate(schema: &Schema, tuple: &Tuple) {
    assert_eq!(
        tuple.len(),
        schema.arity(),
        "tuple arity {} does not match schema {} (arity {})",
        tuple.len(),
        schema.name(),
        schema.arity()
    );
    for (v, a) in tuple.iter().zip(schema.attributes()) {
        assert_eq!(
            v.value_type(),
            a.ty,
            "attribute {} expects {}, got {:?}",
            a.name,
            a.ty,
            v
        );
    }
}

/// The paper's running example schema (§2): `Patient`, `Diagnosis`,
/// `Physician`, `Prescription`. Used throughout tests and examples.
pub mod medical {
    use super::*;

    /// `Patient(patient_id, name, age)`
    pub fn patient() -> Arc<Schema> {
        Arc::new(Schema::new(
            "Patient",
            vec![
                ("patient_id", ValueType::Int),
                ("name", ValueType::Str),
                ("age", ValueType::Int),
            ],
        ))
    }

    /// `Diagnosis(patient_id, diagnosis, physician_id, prescription_id)`
    pub fn diagnosis() -> Arc<Schema> {
        Arc::new(Schema::new(
            "Diagnosis",
            vec![
                ("patient_id", ValueType::Int),
                ("diagnosis", ValueType::Str),
                ("physician_id", ValueType::Int),
                ("prescription_id", ValueType::Int),
            ],
        ))
    }

    /// `Physician(physician_id, name, age, specialization)`
    pub fn physician() -> Arc<Schema> {
        Arc::new(Schema::new(
            "Physician",
            vec![
                ("physician_id", ValueType::Int),
                ("name", ValueType::Str),
                ("age", ValueType::Int),
                ("specialization", ValueType::Str),
            ],
        ))
    }

    /// `Prescription(prescription_id, date, prescription, comments)`
    pub fn prescription() -> Arc<Schema> {
        Arc::new(Schema::new(
            "Prescription",
            vec![
                ("prescription_id", ValueType::Int),
                ("date", ValueType::Date),
                ("prescription", ValueType::Str),
                ("comments", ValueType::Str),
            ],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = medical::patient();
        assert_eq!(s.name(), "Patient");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("age"), Some(2));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.type_of("name"), Some(ValueType::Str));
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attribute_rejected() {
        Schema::new("Bad", vec![("a", ValueType::Int), ("a", ValueType::Str)]);
    }

    #[test]
    fn relation_validates_tuples() {
        let s = medical::patient();
        let r = Relation::new(
            s.clone(),
            vec![vec![Value::Int(1), "alice".into(), Value::Int(34)]],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "name"), &Value::from("alice"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_rejected() {
        let s = medical::patient();
        Relation::new(s, vec![vec![Value::Int(1)]]);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn wrong_type_rejected() {
        let s = medical::patient();
        Relation::new(s, vec![vec![Value::Int(1), Value::Int(2), Value::Int(3)]]);
    }

    #[test]
    fn push_and_empty() {
        let s = medical::patient();
        let mut r = Relation::empty(s);
        assert!(r.is_empty());
        r.push(vec![Value::Int(2), "bob".into(), Value::Int(41)]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn project_schema() {
        let s = medical::prescription();
        let p = s.project(&["prescription"]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.attributes()[0].name, "prescription");
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn project_unknown_panics() {
        medical::patient().project(&["salary"]);
    }

    #[test]
    fn join_schema_qualifies_collisions() {
        let a = medical::patient(); // has name, age
        let b = medical::physician(); // also has name, age
        let j = a.join(&b);
        assert_eq!(j.arity(), 7);
        assert!(j.index_of("Physician.name").is_some());
        assert!(j.index_of("Physician.age").is_some());
        assert!(j.index_of("specialization").is_some());
    }

    #[test]
    fn display_schema() {
        let s = Schema::new("T", vec![("x", ValueType::Int)]);
        assert_eq!(format!("{s}"), "T(x: INT)");
    }
}
