//! Plan execution.
//!
//! Leaves are resolved through a [`LeafSource`] — the abstraction the P2P
//! layer plugs into: in the paper's architecture the querying peer fetches
//! each leaf partition from whichever peer caches it (or from the source),
//! then "compute\[s\] the remaining query locally using the available data"
//! (§2). Joins (hash join) and projections run here, locally.

use crate::plan::LogicalPlan;
use crate::predicate::Predicate;
use crate::schema::{Relation, Schema, Tuple};
use crate::value::Value;
use ars_common::FxHashMap;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The leaf source has no such relation.
    UnknownRelation(String),
    /// An attribute reference could not be resolved in its input schema.
    UnknownAttribute(String),
    /// The leaf source failed to provide data (e.g. P2P fetch failed).
    SourceUnavailable(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            ExecError::UnknownAttribute(a) => write!(f, "unknown attribute {a}"),
            ExecError::SourceUnavailable(m) => write!(f, "source unavailable: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Supplies tuples for `Select` leaves.
pub trait LeafSource {
    /// Fetch the tuples of `relation` satisfying all `predicates`.
    /// The returned relation uses the base (unqualified) schema.
    fn fetch(&mut self, relation: &str, predicates: &[Predicate]) -> Result<Relation, ExecError>;
}

/// A [`LeafSource`] over in-memory base tables — the "data source" peers of
/// the paper, which hold complete base relations.
#[derive(Debug, Clone, Default)]
pub struct BaseTables {
    tables: BTreeMap<String, Relation>,
    /// Count of leaf fetches served, for tests/experiments that check how
    /// often the source is hit.
    pub fetches: usize,
}

impl BaseTables {
    /// Create an empty catalog.
    pub fn new() -> BaseTables {
        BaseTables::default()
    }

    /// Register a base relation under its schema name.
    pub fn register(&mut self, relation: Relation) -> &mut BaseTables {
        self.tables
            .insert(relation.schema().name().to_string(), relation);
        self
    }

    /// Access a registered table.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.tables.get(name)
    }
}

impl LeafSource for BaseTables {
    fn fetch(&mut self, relation: &str, predicates: &[Predicate]) -> Result<Relation, ExecError> {
        self.fetches += 1;
        let base = self
            .tables
            .get(relation)
            .ok_or_else(|| ExecError::UnknownRelation(relation.to_string()))?;
        let schema = base.schema().clone();
        let tuples: Vec<Tuple> = base
            .tuples()
            .iter()
            .filter(|t| predicates.iter().all(|p| p.matches(&schema, t)))
            .cloned()
            .collect();
        Ok(Relation::new(schema, tuples))
    }
}

/// Execute a plan against a leaf source. Attribute names in the result are
/// fully qualified (`Relation.attr`).
pub fn execute(plan: &LogicalPlan, source: &mut dyn LeafSource) -> Result<Relation, ExecError> {
    match plan {
        LogicalPlan::Select {
            relation,
            predicates,
        } => {
            let fetched = source.fetch(relation, predicates)?;
            Ok(qualify(fetched))
        }
        LogicalPlan::Join {
            left,
            right,
            left_attr,
            right_attr,
        } => {
            let l = execute(left, source)?;
            let r = execute(right, source)?;
            hash_join(&l, &r, left_attr, right_attr)
        }
        LogicalPlan::Project { input, attrs } => {
            let rel = execute(input, source)?;
            project(&rel, attrs)
        }
    }
}

/// Re-qualify a base relation's schema: every attribute becomes
/// `Relation.attr`.
fn qualify(rel: Relation) -> Relation {
    let old = rel.schema().clone();
    let name = old.name().to_string();
    let attrs: Vec<(String, _)> = old
        .attributes()
        .iter()
        .map(|a| (format!("{name}.{}", a.name), a.ty))
        .collect();
    let schema = Arc::new(Schema::new(
        name,
        attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect(),
    ));
    Relation::new(schema, rel.into_tuples())
}

/// Classic two-phase hash join (build on the smaller input).
fn hash_join(
    left: &Relation,
    right: &Relation,
    left_attr: &str,
    right_attr: &str,
) -> Result<Relation, ExecError> {
    let li = left
        .schema()
        .index_of(left_attr)
        .ok_or_else(|| ExecError::UnknownAttribute(left_attr.to_string()))?;
    let ri = right
        .schema()
        .index_of(right_attr)
        .ok_or_else(|| ExecError::UnknownAttribute(right_attr.to_string()))?;
    let out_schema = Arc::new(left.schema().join(right.schema()));

    // Build on the smaller side; probe with the larger.
    let build_left = left.len() <= right.len();
    let (build, build_idx, probe, probe_idx) = if build_left {
        (left, li, right, ri)
    } else {
        (right, ri, left, li)
    };
    let mut table: FxHashMap<&Value, Vec<&Tuple>> = FxHashMap::default();
    for t in build.tuples() {
        table.entry(&t[build_idx]).or_default().push(t);
    }
    let mut out = Vec::new();
    for p in probe.tuples() {
        if let Some(matches) = table.get(&p[probe_idx]) {
            for b in matches {
                // Output order is always (left ++ right).
                let (l_t, r_t): (&Tuple, &Tuple) = if build_left { (b, p) } else { (p, b) };
                let mut row = Vec::with_capacity(l_t.len() + r_t.len());
                row.extend(l_t.iter().cloned());
                row.extend(r_t.iter().cloned());
                out.push(row);
            }
        }
    }
    Ok(Relation::new(out_schema, out))
}

/// Column projection.
fn project(rel: &Relation, attrs: &[String]) -> Result<Relation, ExecError> {
    let idxs: Vec<usize> = attrs
        .iter()
        .map(|a| {
            rel.schema()
                .index_of(a)
                .ok_or_else(|| ExecError::UnknownAttribute(a.clone()))
        })
        .collect::<Result<_, _>>()?;
    let schema = Arc::new(
        rel.schema()
            .project(&attrs.iter().map(String::as_str).collect::<Vec<_>>()),
    );
    let tuples = rel
        .tuples()
        .iter()
        .map(|t| idxs.iter().map(|&i| t[i].clone()).collect())
        .collect();
    Ok(Relation::new(schema, tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use crate::schema::medical;
    use crate::sql::parse_query;
    use crate::value::days_since_1900;

    /// Build the paper's medical dataset with known join structure:
    /// patient i has age 20+(i%60), a diagnosis alternating
    /// Glaucoma/Cataract, and prescription i dated spread over 1998–2004.
    fn medical_tables() -> BaseTables {
        let mut tables = BaseTables::new();
        let patients = Relation::new(
            medical::patient(),
            (0..200u32)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::from(format!("patient{i}")),
                        Value::Int(20 + (i % 60)),
                    ]
                })
                .collect(),
        );
        let diagnoses = Relation::new(
            medical::diagnosis(),
            (0..200u32)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::from(if i % 2 == 0 { "Glaucoma" } else { "Cataract" }),
                        Value::Int(i % 10),
                        Value::Int(i),
                    ]
                })
                .collect(),
        );
        let base_day = days_since_1900(1998, 1, 1);
        let prescriptions = Relation::new(
            medical::prescription(),
            (0..200u32)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Date(base_day + i * 12), // ~6.5 year spread
                        Value::from(format!("drug{i}")),
                        Value::from(""),
                    ]
                })
                .collect(),
        );
        tables
            .register(patients)
            .register(diagnoses)
            .register(prescriptions);
        tables
    }

    fn medical_planner() -> Planner {
        let mut p = Planner::new();
        p.register(medical::patient())
            .register(medical::diagnosis())
            .register(medical::prescription())
            .register(medical::physician());
        p
    }

    /// Reference evaluation of the paper's query by brute force.
    fn brute_force_paper_query(tables: &BaseTables) -> Vec<Value> {
        let patients = tables.get("Patient").unwrap();
        let diagnoses = tables.get("Diagnosis").unwrap();
        let prescriptions = tables.get("Prescription").unwrap();
        let lo = days_since_1900(2000, 1, 1);
        let hi = days_since_1900(2002, 12, 31);
        let mut out = Vec::new();
        for p in patients.tuples() {
            let age = p[2].as_ordinal().unwrap();
            if !(30..=50).contains(&age) {
                continue;
            }
            for d in diagnoses.tuples() {
                if d[0] != p[0] || d[1] != Value::from("Glaucoma") {
                    continue;
                }
                for rx in prescriptions.tuples() {
                    if rx[0] != d[3] {
                        continue;
                    }
                    let day = rx[1].as_ordinal().unwrap();
                    if (lo..=hi).contains(&day) {
                        out.push(rx[2].clone());
                    }
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn executes_the_papers_query_end_to_end() {
        let mut tables = medical_tables();
        let planner = medical_planner();
        let q = parse_query(
            "SELECT Prescription.prescription \
             FROM Patient, Diagnosis, Prescription \
             WHERE 30 <= age AND age <= 50 \
             AND diagnosis = 'Glaucoma' \
             AND Patient.patient_id = Diagnosis.patient_id \
             AND 01-01-2000 <= date AND date <= 12-31-2002 \
             AND Diagnosis.prescription_id = Prescription.prescription_id",
        )
        .unwrap();
        let plan = planner.plan(&q).unwrap();
        let expected = brute_force_paper_query(&tables);
        assert!(!expected.is_empty(), "test data must produce answers");

        let result = execute(&plan, &mut tables).unwrap();
        assert_eq!(result.schema().arity(), 1);
        let mut got: Vec<Value> = result.tuples().iter().map(|t| t[0].clone()).collect();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn select_leaf_applies_predicates() {
        let mut tables = medical_tables();
        let plan = LogicalPlan::Select {
            relation: "Patient".to_string(),
            predicates: vec![Predicate::range("age", 30, 35)],
        };
        let r = execute(&plan, &mut tables).unwrap();
        assert!(!r.is_empty());
        let idx = r.schema().index_of("Patient.age").unwrap();
        for t in r.tuples() {
            let a = t[idx].as_ordinal().unwrap();
            assert!((30..=35).contains(&a));
        }
    }

    #[test]
    fn qualified_schema_after_select() {
        let mut tables = medical_tables();
        let plan = LogicalPlan::Select {
            relation: "Patient".to_string(),
            predicates: vec![],
        };
        let r = execute(&plan, &mut tables).unwrap();
        assert!(r.schema().index_of("Patient.patient_id").is_some());
        assert!(r.schema().index_of("patient_id").is_none());
    }

    #[test]
    fn join_is_side_symmetric() {
        // Build-side selection (smaller input) must not change results.
        let mut tables = medical_tables();
        let small = LogicalPlan::Select {
            relation: "Patient".to_string(),
            predicates: vec![Predicate::range("age", 30, 31)],
        };
        let big = LogicalPlan::Select {
            relation: "Diagnosis".to_string(),
            predicates: vec![],
        };
        let join_sb = LogicalPlan::Join {
            left: Box::new(small.clone()),
            right: Box::new(big.clone()),
            left_attr: "Patient.patient_id".into(),
            right_attr: "Diagnosis.patient_id".into(),
        };
        let join_bs = LogicalPlan::Join {
            left: Box::new(big),
            right: Box::new(small),
            left_attr: "Diagnosis.patient_id".into(),
            right_attr: "Patient.patient_id".into(),
        };
        let r1 = execute(&join_sb, &mut tables).unwrap();
        let r2 = execute(&join_bs, &mut tables).unwrap();
        assert_eq!(r1.len(), r2.len());
        assert!(!r1.is_empty());
        // Column order differs (left ++ right), but the joined id sets match.
        let ids = |r: &Relation, col: &str| {
            let i = r.schema().index_of(col).unwrap();
            let mut v: Vec<Value> = r.tuples().iter().map(|t| t[i].clone()).collect();
            v.sort();
            v
        };
        assert_eq!(
            ids(&r1, "Patient.patient_id"),
            ids(&r2, "Patient.patient_id")
        );
    }

    #[test]
    fn join_with_no_matches_is_empty() {
        let mut tables = medical_tables();
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Select {
                relation: "Patient".to_string(),
                predicates: vec![Predicate::range("patient_id", 1000, 2000)],
            }),
            right: Box::new(LogicalPlan::Select {
                relation: "Diagnosis".to_string(),
                predicates: vec![],
            }),
            left_attr: "Patient.patient_id".into(),
            right_attr: "Diagnosis.patient_id".into(),
        };
        let r = execute(&plan, &mut tables).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn unknown_relation_error() {
        let mut tables = medical_tables();
        let plan = LogicalPlan::Select {
            relation: "Nope".to_string(),
            predicates: vec![],
        };
        assert_eq!(
            execute(&plan, &mut tables),
            Err(ExecError::UnknownRelation("Nope".to_string()))
        );
    }

    #[test]
    fn unknown_projection_attr_error() {
        let mut tables = medical_tables();
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Select {
                relation: "Patient".to_string(),
                predicates: vec![],
            }),
            attrs: vec!["Patient.salary".to_string()],
        };
        assert!(matches!(
            execute(&plan, &mut tables),
            Err(ExecError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn base_tables_count_fetches() {
        let mut tables = medical_tables();
        let plan = LogicalPlan::Select {
            relation: "Patient".to_string(),
            predicates: vec![],
        };
        execute(&plan, &mut tables).unwrap();
        execute(&plan, &mut tables).unwrap();
        assert_eq!(tables.fetches, 2);
    }

    #[test]
    fn duplicate_join_keys_produce_cross_combinations() {
        // Two left tuples with the same key joining two right tuples with
        // that key must produce 4 output rows.
        use crate::value::ValueType;
        let s1 = Arc::new(Schema::new(
            "L",
            vec![("k", ValueType::Int), ("a", ValueType::Int)],
        ));
        let s2 = Arc::new(Schema::new(
            "R",
            vec![("k", ValueType::Int), ("b", ValueType::Int)],
        ));
        let mut tables = BaseTables::new();
        tables.register(Relation::new(
            s1,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(11)],
            ],
        ));
        tables.register(Relation::new(
            s2,
            vec![
                vec![Value::Int(1), Value::Int(20)],
                vec![Value::Int(1), Value::Int(21)],
            ],
        ));
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Select {
                relation: "L".into(),
                predicates: vec![],
            }),
            right: Box::new(LogicalPlan::Select {
                relation: "R".into(),
                predicates: vec![],
            }),
            left_attr: "L.k".into(),
            right_attr: "R.k".into(),
        };
        let r = execute(&plan, &mut tables).unwrap();
        assert_eq!(r.len(), 4);
    }
}
