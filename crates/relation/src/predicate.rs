//! Selection predicates.
//!
//! The paper restricts selections to a single attribute at a time (§2):
//! either a range over an ordered attribute (`30 < age < 50`) or an
//! equality (`diagnosis = "Glaucoma"`). Range predicates carry the
//! [`RangeSet`] the LSH layer hashes; equalities are degenerate ranges for
//! ordinal attributes and plain value matches for strings.

use crate::schema::{Schema, Tuple};
use crate::value::Value;
use ars_lsh::RangeSet;
use std::fmt;

/// A single-attribute selection predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `lo ≤ attr ≤ hi` over an ordinal (Int/Date) attribute.
    Range {
        /// Attribute name.
        attr: String,
        /// Inclusive lower bound.
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
    },
    /// `attr = value` (any attribute type).
    Eq {
        /// Attribute name.
        attr: String,
        /// The value to match.
        value: Value,
    },
}

impl Predicate {
    /// Build an inclusive range predicate.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range<S: Into<String>>(attr: S, lo: u32, hi: u32) -> Predicate {
        assert!(lo <= hi, "empty range predicate [{lo}, {hi}]");
        Predicate::Range {
            attr: attr.into(),
            lo,
            hi,
        }
    }

    /// Build an equality predicate.
    pub fn eq<S: Into<String>, V: Into<Value>>(attr: S, value: V) -> Predicate {
        Predicate::Eq {
            attr: attr.into(),
            value: value.into(),
        }
    }

    /// The attribute this predicate constrains.
    pub fn attr(&self) -> &str {
        match self {
            Predicate::Range { attr, .. } | Predicate::Eq { attr, .. } => attr,
        }
    }

    /// The value-set view of this predicate, when it has one:
    /// a range predicate maps to its interval; an equality over an ordinal
    /// value maps to a singleton set; a string equality has none.
    pub fn range_set(&self) -> Option<RangeSet> {
        match self {
            Predicate::Range { lo, hi, .. } => Some(RangeSet::interval(*lo, *hi)),
            Predicate::Eq { value, .. } => value.as_ordinal().map(|v| RangeSet::interval(v, v)),
        }
    }

    /// Evaluate against a tuple under `schema`.
    ///
    /// # Panics
    /// Panics if the attribute is unknown in the schema.
    pub fn matches(&self, schema: &Schema, tuple: &Tuple) -> bool {
        let idx = schema
            .index_of(self.attr())
            .unwrap_or_else(|| panic!("unknown attribute {} in {}", self.attr(), schema.name()));
        let v = &tuple[idx];
        match self {
            Predicate::Range { lo, hi, .. } => match v.as_ordinal() {
                Some(x) => x >= *lo && x <= *hi,
                None => false,
            },
            Predicate::Eq { value, .. } => v == value,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Range { attr, lo, hi } => write!(f, "{lo} <= {attr} <= {hi}"),
            Predicate::Eq { attr, value } => write!(f, "{attr} = {value}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::medical;
    use crate::value::days_since_1900;

    #[test]
    fn range_matches_inclusive() {
        let s = medical::patient();
        let p = Predicate::range("age", 30, 50);
        let t30 = vec![Value::Int(1), "a".into(), Value::Int(30)];
        let t50 = vec![Value::Int(2), "b".into(), Value::Int(50)];
        let t29 = vec![Value::Int(3), "c".into(), Value::Int(29)];
        assert!(p.matches(&s, &t30));
        assert!(p.matches(&s, &t50));
        assert!(!p.matches(&s, &t29));
    }

    #[test]
    fn eq_matches_strings() {
        let s = medical::diagnosis();
        let p = Predicate::eq("diagnosis", "Glaucoma");
        let hit = vec![
            Value::Int(1),
            "Glaucoma".into(),
            Value::Int(9),
            Value::Int(7),
        ];
        let miss = vec![
            Value::Int(2),
            "Cataract".into(),
            Value::Int(9),
            Value::Int(8),
        ];
        assert!(p.matches(&s, &hit));
        assert!(!p.matches(&s, &miss));
    }

    #[test]
    fn date_range_predicate() {
        let s = medical::prescription();
        let lo = days_since_1900(2000, 1, 1);
        let hi = days_since_1900(2002, 12, 31);
        let p = Predicate::range("date", lo, hi);
        let hit = vec![
            Value::Int(1),
            Value::date(2001, 6, 15),
            "atropine".into(),
            "".into(),
        ];
        let miss = vec![
            Value::Int(2),
            Value::date(1999, 12, 31),
            "timolol".into(),
            "".into(),
        ];
        assert!(p.matches(&s, &hit));
        assert!(!p.matches(&s, &miss));
    }

    #[test]
    fn range_set_views() {
        assert_eq!(
            Predicate::range("age", 30, 50).range_set(),
            Some(RangeSet::interval(30, 50))
        );
        assert_eq!(
            Predicate::eq("age", 30u32).range_set(),
            Some(RangeSet::interval(30, 30))
        );
        assert_eq!(Predicate::eq("diagnosis", "Glaucoma").range_set(), None);
    }

    #[test]
    fn range_over_string_attr_never_matches() {
        let s = medical::patient();
        let p = Predicate::range("name", 0, 10);
        let t = vec![Value::Int(1), "zed".into(), Value::Int(5)];
        assert!(!p.matches(&s, &t));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn reversed_range_rejected() {
        Predicate::range("age", 50, 30);
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn unknown_attr_panics() {
        let s = medical::patient();
        Predicate::range("salary", 0, 1).matches(&s, &vec![]);
    }

    #[test]
    fn display() {
        assert_eq!(
            format!("{}", Predicate::range("age", 30, 50)),
            "30 <= age <= 50"
        );
        assert_eq!(
            format!("{}", Predicate::eq("diagnosis", "Glaucoma")),
            "diagnosis = Glaucoma"
        );
    }
}
