//! Horizontal partitions — the unit of caching and sharing.
//!
//! "A query specifies a range over an attribute of a relation. We refer to
//! the resulting set of tuples defined by this range as a *data partition*"
//! (paper, footnote 1). A [`HorizontalPartition`] carries the defining
//! `(relation, attribute, range)` triple plus the tuples themselves; the
//! P2P layer hashes the range and stores/locates partitions by it.

use crate::schema::{Relation, Schema, Tuple};
use ars_lsh::RangeSet;
use std::fmt;
use std::sync::Arc;

/// Identifies *which* fragment of *which* relation a partition holds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PartitionKey {
    /// Relation name.
    pub relation: String,
    /// Attribute the defining range selects on.
    pub attr: String,
    /// The selection range.
    pub range: RangeSet,
}

impl fmt::Display for PartitionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} ∈ {}", self.relation, self.attr, self.range)
    }
}

/// A cached horizontal partition: key + payload tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizontalPartition {
    key: PartitionKey,
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
}

impl HorizontalPartition {
    /// Build a partition by actually selecting `range` on `attr` from
    /// `source` — the operation a data source performs when a query first
    /// reaches it.
    ///
    /// # Panics
    /// Panics if `attr` is unknown in the source schema.
    pub fn select_from(source: &Relation, attr: &str, range: &RangeSet) -> HorizontalPartition {
        let schema = source.schema().clone();
        let idx = schema
            .index_of(attr)
            .unwrap_or_else(|| panic!("unknown attribute {attr} in {}", schema.name()));
        let tuples: Vec<Tuple> = source
            .tuples()
            .iter()
            .filter(|t| match t[idx].as_ordinal() {
                Some(v) => range.contains(v),
                None => false,
            })
            .cloned()
            .collect();
        HorizontalPartition {
            key: PartitionKey {
                relation: schema.name().to_string(),
                attr: attr.to_string(),
                range: range.clone(),
            },
            schema,
            tuples,
        }
    }

    /// Wrap pre-selected tuples (e.g. received over the network).
    pub fn from_parts(
        relation: &str,
        attr: &str,
        range: RangeSet,
        schema: Arc<Schema>,
        tuples: Vec<Tuple>,
    ) -> HorizontalPartition {
        HorizontalPartition {
            key: PartitionKey {
                relation: relation.to_string(),
                attr: attr.to_string(),
                range,
            },
            schema,
            tuples,
        }
    }

    /// The identifying key.
    pub fn key(&self) -> &PartitionKey {
        &self.key
    }

    /// The defining range.
    pub fn range(&self) -> &RangeSet {
        &self.key.range
    }

    /// The relation name this fragments.
    pub fn relation(&self) -> &str {
        &self.key.relation
    }

    /// The attribute the defining range selects on.
    pub fn attr(&self) -> &str {
        &self.key.attr
    }

    /// Schema of the payload tuples.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Payload tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of payload tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the partition holds no tuples (a valid state: the range may
    /// simply select nothing).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// View the payload as a [`Relation`].
    pub fn as_relation(&self) -> Relation {
        Relation::new(self.schema.clone(), self.tuples.clone())
    }

    /// Re-select a narrower range from this partition — how a querying peer
    /// extracts exactly its answer from a broader cached partition.
    ///
    /// Returns `None` if `narrower` is not fully contained in this
    /// partition's range (the result would be incomplete).
    pub fn refine(&self, narrower: &RangeSet) -> Option<HorizontalPartition> {
        if !narrower.is_subset_of(&self.key.range) {
            return None;
        }
        let idx = self.schema.index_of(&self.key.attr)?;
        let tuples: Vec<Tuple> = self
            .tuples
            .iter()
            .filter(|t| match t[idx].as_ordinal() {
                Some(v) => narrower.contains(v),
                None => false,
            })
            .cloned()
            .collect();
        Some(HorizontalPartition {
            key: PartitionKey {
                relation: self.key.relation.clone(),
                attr: self.key.attr.clone(),
                range: narrower.clone(),
            },
            schema: self.schema.clone(),
            tuples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::medical;
    use crate::value::Value;

    fn patients() -> Relation {
        let s = medical::patient();
        Relation::new(
            s,
            (0..100u32)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::from(format!("p{i}")),
                        Value::Int(20 + (i % 60)),
                    ]
                })
                .collect(),
        )
    }

    #[test]
    fn select_from_filters_by_range() {
        let base = patients();
        let range = RangeSet::interval(30, 50);
        let p = HorizontalPartition::select_from(&base, "age", &range);
        assert_eq!(p.relation(), "Patient");
        assert_eq!(p.attr(), "age");
        assert!(!p.is_empty());
        let age_idx = p.schema().index_of("age").unwrap();
        for t in p.tuples() {
            let age = t[age_idx].as_ordinal().unwrap();
            assert!((30..=50).contains(&age));
        }
        // Everything in the base that qualifies is present.
        let expect = base
            .tuples()
            .iter()
            .filter(|t| {
                let a = t[2].as_ordinal().unwrap();
                (30..=50).contains(&a)
            })
            .count();
        assert_eq!(p.len(), expect);
    }

    #[test]
    fn empty_selection_is_valid() {
        let base = patients();
        let p = HorizontalPartition::select_from(&base, "age", &RangeSet::interval(500, 600));
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn unknown_attr_rejected() {
        HorizontalPartition::select_from(&patients(), "salary", &RangeSet::interval(0, 1));
    }

    #[test]
    fn refine_extracts_contained_subrange() {
        let base = patients();
        let broad = HorizontalPartition::select_from(&base, "age", &RangeSet::interval(30, 60));
        let narrow = broad.refine(&RangeSet::interval(40, 45)).unwrap();
        assert_eq!(narrow.range(), &RangeSet::interval(40, 45));
        let direct = HorizontalPartition::select_from(&base, "age", &RangeSet::interval(40, 45));
        assert_eq!(narrow.tuples(), direct.tuples());
    }

    #[test]
    fn refine_rejects_uncontained_range() {
        let base = patients();
        let broad = HorizontalPartition::select_from(&base, "age", &RangeSet::interval(30, 60));
        assert!(broad.refine(&RangeSet::interval(25, 45)).is_none());
    }

    #[test]
    fn as_relation_roundtrip() {
        let base = patients();
        let p = HorizontalPartition::select_from(&base, "age", &RangeSet::interval(30, 50));
        let r = p.as_relation();
        assert_eq!(r.len(), p.len());
        assert_eq!(r.schema().name(), "Patient");
    }

    #[test]
    fn key_display() {
        let base = patients();
        let p = HorizontalPartition::select_from(&base, "age", &RangeSet::interval(30, 50));
        assert_eq!(format!("{}", p.key()), "Patient.age ∈ RangeSet{[30,50]}");
    }
}
