//! Logical plans and the select-pushdown planner.
//!
//! The paper's querying peer "converts the query into a plan where all the
//! selects are moved toward the leaves as much as possible" (§2) — the
//! classic algebraic optimization — so that each leaf is exactly a
//! single-attribute selection on one relation, i.e. a horizontal partition
//! the P2P layer can locate. [`Planner`] performs that conversion from a
//! parsed query; [`LogicalPlan`] is the resulting operator tree.
//!
//! Naming convention: leaf scans re-qualify every attribute as
//! `Relation.attr`, so references above the leaves are unambiguous.

use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::sql::{AttrRef, CmpOp, Condition, Literal, ParsedQuery, Projection};
use crate::value::{days_since_1900, Value, ValueType};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A logical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Leaf: fetch the tuples of `relation` matching all `predicates`
    /// (attribute names unqualified — they belong to `relation`).
    Select {
        /// Relation to read.
        relation: String,
        /// Pushed-down single-attribute predicates.
        predicates: Vec<Predicate>,
    },
    /// Equi-join of two subplans on fully-qualified attributes.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join attribute in the left input (qualified).
        left_attr: String,
        /// Join attribute in the right input (qualified).
        right_attr: String,
    },
    /// Projection onto fully-qualified attributes.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Qualified attributes to keep, in order.
        attrs: Vec<String>,
    },
}

impl LogicalPlan {
    /// All leaf `Select` nodes, in left-to-right order — the partitions the
    /// P2P layer must locate.
    pub fn leaves(&self) -> Vec<(&str, &[Predicate])> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<(&'a str, &'a [Predicate])>) {
        match self {
            LogicalPlan::Select {
                relation,
                predicates,
            } => out.push((relation, predicates)),
            LogicalPlan::Join { left, right, .. } => {
                left.collect_leaves(out);
                right.collect_leaves(out);
            }
            LogicalPlan::Project { input, .. } => input.collect_leaves(out),
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::Select {
                relation,
                predicates,
            } => {
                write!(f, "{pad}Select {relation}")?;
                for p in predicates {
                    write!(f, " [{p}]")?;
                }
                writeln!(f)
            }
            LogicalPlan::Join {
                left,
                right,
                left_attr,
                right_attr,
            } => {
                writeln!(f, "{pad}Join {left_attr} = {right_attr}")?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Project { input, attrs } => {
                writeln!(f, "{pad}Project {}", attrs.join(", "))?;
                input.fmt_indent(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

/// Errors produced while planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A referenced relation is not in the catalog.
    UnknownRelation(String),
    /// An attribute was not found in any FROM relation.
    UnknownAttribute(String),
    /// A bare attribute name matches several FROM relations.
    AmbiguousAttribute(String),
    /// A literal's type does not fit the attribute.
    TypeMismatch {
        /// The attribute involved.
        attr: String,
        /// What the schema expects.
        expected: ValueType,
    },
    /// Two range bounds on one attribute do not intersect.
    EmptyRange(String),
    /// A comparison operator was applied to a string attribute.
    OrderedOpOnString(String),
    /// The join graph does not connect all FROM relations.
    DisconnectedJoin,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            PlanError::UnknownAttribute(a) => write!(f, "unknown attribute {a}"),
            PlanError::AmbiguousAttribute(a) => write!(f, "ambiguous attribute {a}"),
            PlanError::TypeMismatch { attr, expected } => {
                write!(f, "attribute {attr} expects {expected}")
            }
            PlanError::EmptyRange(a) => write!(f, "contradictory bounds on {a}"),
            PlanError::OrderedOpOnString(a) => {
                write!(f, "range comparison on string attribute {a}")
            }
            PlanError::DisconnectedJoin => {
                write!(f, "join conditions do not connect all relations")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Plans parsed queries against a catalog of schemas.
#[derive(Debug, Clone, Default)]
pub struct Planner {
    catalog: BTreeMap<String, Arc<Schema>>,
}

/// Accumulated bounds for one attribute while merging range conditions.
#[derive(Debug, Clone, Copy)]
struct Bounds {
    lo: u32,
    hi: u32,
}

impl Planner {
    /// Create an empty planner.
    pub fn new() -> Planner {
        Planner::default()
    }

    /// Register a relation schema.
    pub fn register(&mut self, schema: Arc<Schema>) -> &mut Planner {
        self.catalog.insert(schema.name().to_string(), schema);
        self
    }

    /// Look up a registered schema.
    pub fn schema(&self, relation: &str) -> Option<&Arc<Schema>> {
        self.catalog.get(relation)
    }

    /// Convert a parsed query into a select-pushdown plan:
    /// one `Select` leaf per FROM relation carrying all its predicates,
    /// joined left-deep following the query's equi-join conditions, with a
    /// final projection.
    pub fn plan(&self, q: &ParsedQuery) -> Result<LogicalPlan, PlanError> {
        // Validate relations.
        for r in &q.relations {
            if !self.catalog.contains_key(r) {
                return Err(PlanError::UnknownRelation(r.clone()));
            }
        }
        // Resolve conditions into per-relation predicates and join edges.
        let mut bounds: BTreeMap<(String, String), Bounds> = BTreeMap::new();
        let mut eq_preds: Vec<(String, Predicate)> = Vec::new();
        let mut joins: Vec<(String, String, String, String)> = Vec::new(); // (rel_l, attr_l, rel_r, attr_r)

        for cond in &q.conditions {
            match cond {
                Condition::JoinEq { left, right } => {
                    let (rl, al) = self.resolve(left, &q.relations)?;
                    let (rr, ar) = self.resolve(right, &q.relations)?;
                    joins.push((rl, al, rr, ar));
                }
                Condition::Cmp { attr, op, lit } => {
                    let (rel, a) = self.resolve(attr, &q.relations)?;
                    let ty = self.catalog[&rel]
                        .type_of(&a)
                        .expect("resolved attribute must exist");
                    match (*op, ty) {
                        (CmpOp::Eq, ValueType::Str) => {
                            let v = match lit {
                                Literal::Str(s) => Value::Str(s.clone()),
                                _ => {
                                    return Err(PlanError::TypeMismatch {
                                        attr: a,
                                        expected: ty,
                                    })
                                }
                            };
                            eq_preds.push((rel, Predicate::Eq { attr: a, value: v }));
                        }
                        (_, ValueType::Str) => return Err(PlanError::OrderedOpOnString(a)),
                        (op, _) => {
                            let v = literal_ordinal(lit, ty).ok_or(PlanError::TypeMismatch {
                                attr: a.clone(),
                                expected: ty,
                            })?;
                            let b = bounds.entry((rel, a.clone())).or_insert(Bounds {
                                lo: 0,
                                hi: u32::MAX,
                            });
                            apply_bound(b, op, v, &a)?;
                        }
                    }
                }
                Condition::Between {
                    lo,
                    lo_inclusive,
                    attr,
                    hi,
                    hi_inclusive,
                } => {
                    let (rel, a) = self.resolve(attr, &q.relations)?;
                    let ty = self.catalog[&rel]
                        .type_of(&a)
                        .expect("resolved attribute must exist");
                    if ty == ValueType::Str {
                        return Err(PlanError::OrderedOpOnString(a));
                    }
                    let lo_v = literal_ordinal(lo, ty).ok_or(PlanError::TypeMismatch {
                        attr: a.clone(),
                        expected: ty,
                    })?;
                    let hi_v = literal_ordinal(hi, ty).ok_or(PlanError::TypeMismatch {
                        attr: a.clone(),
                        expected: ty,
                    })?;
                    let b = bounds.entry((rel, a.clone())).or_insert(Bounds {
                        lo: 0,
                        hi: u32::MAX,
                    });
                    apply_bound(
                        b,
                        if *lo_inclusive { CmpOp::Ge } else { CmpOp::Gt },
                        lo_v,
                        &a,
                    )?;
                    apply_bound(
                        b,
                        if *hi_inclusive { CmpOp::Le } else { CmpOp::Lt },
                        hi_v,
                        &a,
                    )?;
                }
            }
        }

        // Assemble per-relation predicate lists (pushdown).
        let mut rel_preds: BTreeMap<String, Vec<Predicate>> = BTreeMap::new();
        for ((rel, attr), b) in bounds {
            if b.lo > b.hi {
                return Err(PlanError::EmptyRange(attr));
            }
            rel_preds.entry(rel).or_default().push(Predicate::Range {
                attr,
                lo: b.lo,
                hi: b.hi,
            });
        }
        for (rel, p) in eq_preds {
            rel_preds.entry(rel).or_default().push(p);
        }

        // Build leaves in FROM order.
        let leaf = |rel: &str| LogicalPlan::Select {
            relation: rel.to_string(),
            predicates: rel_preds.get(rel).cloned().unwrap_or_default(),
        };

        // Left-deep join: start from the first relation, greedily attach a
        // relation connected by some join condition.
        let mut in_tree: Vec<String> = vec![q.relations[0].clone()];
        let mut plan = leaf(&q.relations[0]);
        let mut remaining: Vec<String> = q.relations[1..].to_vec();
        let mut pending = joins;
        while !remaining.is_empty() {
            // Find a join edge connecting the tree to a remaining relation.
            let found = pending.iter().position(|(rl, _, rr, _)| {
                (in_tree.contains(rl) && remaining.contains(rr))
                    || (in_tree.contains(rr) && remaining.contains(rl))
            });
            let Some(pos) = found else {
                // No explicit join edge: if there are no join conditions at
                // all and a single relation remains unreferenced, this is a
                // cross product — unsupported, matching the paper's query
                // class.
                return Err(PlanError::DisconnectedJoin);
            };
            let (rl, al, rr, ar) = pending.remove(pos);
            let (new_rel, tree_attr, new_attr) = if in_tree.contains(&rl) {
                (rr.clone(), format!("{rl}.{al}"), format!("{rr}.{ar}"))
            } else {
                (rl.clone(), format!("{rr}.{ar}"), format!("{rl}.{al}"))
            };
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(leaf(&new_rel)),
                left_attr: tree_attr,
                right_attr: new_attr,
            };
            remaining.retain(|r| r != &new_rel);
            in_tree.push(new_rel);
        }

        // Projection.
        let plan = match &q.projection {
            Projection::Star => plan,
            Projection::Attrs(attrs) => {
                let mut qualified = Vec::with_capacity(attrs.len());
                for a in attrs {
                    let (rel, attr) = self.resolve(a, &q.relations)?;
                    qualified.push(format!("{rel}.{attr}"));
                }
                LogicalPlan::Project {
                    input: Box::new(plan),
                    attrs: qualified,
                }
            }
        };
        Ok(plan)
    }

    /// Resolve an attribute reference to `(relation, attribute)`.
    fn resolve(&self, attr: &AttrRef, relations: &[String]) -> Result<(String, String), PlanError> {
        match attr {
            AttrRef::Qualified(rel, a) => {
                let schema = self
                    .catalog
                    .get(rel)
                    .ok_or_else(|| PlanError::UnknownRelation(rel.clone()))?;
                if schema.index_of(a).is_none() {
                    return Err(PlanError::UnknownAttribute(format!("{rel}.{a}")));
                }
                if !relations.contains(rel) {
                    return Err(PlanError::UnknownRelation(rel.clone()));
                }
                Ok((rel.clone(), a.clone()))
            }
            AttrRef::Bare(a) => {
                let mut hits = relations
                    .iter()
                    .filter(|r| {
                        self.catalog
                            .get(*r)
                            .map(|s| s.index_of(a).is_some())
                            .unwrap_or(false)
                    })
                    .cloned()
                    .collect::<Vec<_>>();
                // A join attribute like patient_id may appear in several
                // relations; a *selection* on a bare name needs uniqueness.
                hits.dedup();
                match hits.len() {
                    0 => Err(PlanError::UnknownAttribute(a.clone())),
                    1 => Ok((hits.pop().unwrap(), a.clone())),
                    _ => Err(PlanError::AmbiguousAttribute(a.clone())),
                }
            }
        }
    }
}

/// Tighten `b` with one comparison. Exclusive integer bounds shift by one.
fn apply_bound(b: &mut Bounds, op: CmpOp, v: u32, attr: &str) -> Result<(), PlanError> {
    match op {
        CmpOp::Eq => {
            b.lo = b.lo.max(v);
            b.hi = b.hi.min(v);
        }
        CmpOp::Le => b.hi = b.hi.min(v),
        CmpOp::Lt => {
            if v == 0 {
                return Err(PlanError::EmptyRange(attr.to_string()));
            }
            b.hi = b.hi.min(v - 1);
        }
        CmpOp::Ge => b.lo = b.lo.max(v),
        CmpOp::Gt => {
            if v == u32::MAX {
                return Err(PlanError::EmptyRange(attr.to_string()));
            }
            b.lo = b.lo.max(v + 1);
        }
    }
    Ok(())
}

/// The `u32` ordinal of a literal under the attribute's type.
fn literal_ordinal(lit: &Literal, ty: ValueType) -> Option<u32> {
    match (lit, ty) {
        (Literal::Int(v), ValueType::Int) => Some(*v),
        (Literal::Int(v), ValueType::Date) => Some(*v),
        (Literal::Date(y, m, d), ValueType::Date) => Some(days_since_1900(*y, *m, *d)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::medical;
    use crate::sql::parse_query;

    fn medical_planner() -> Planner {
        let mut p = Planner::new();
        p.register(medical::patient())
            .register(medical::diagnosis())
            .register(medical::physician())
            .register(medical::prescription());
        p
    }

    #[test]
    fn plans_the_papers_example_query() {
        let planner = medical_planner();
        let q = parse_query(
            "SELECT Prescription.prescription \
             FROM Patient, Diagnosis, Prescription \
             WHERE 30 <= age AND age <= 50 \
             AND diagnosis = 'Glaucoma' \
             AND Patient.patient_id = Diagnosis.patient_id \
             AND 01-01-2000 <= date AND date <= 12-31-2002 \
             AND Diagnosis.prescription_id = Prescription.prescription_id",
        )
        .unwrap();
        let plan = planner.plan(&q).unwrap();
        // Three leaves, each with its pushed-down selection.
        let leaves = plan.leaves();
        assert_eq!(leaves.len(), 3);
        let (rel0, preds0) = leaves[0];
        assert_eq!(rel0, "Patient");
        assert_eq!(preds0, &[Predicate::range("age", 30, 50)]);
        let (rel1, preds1) = leaves[1];
        assert_eq!(rel1, "Diagnosis");
        assert_eq!(preds1, &[Predicate::eq("diagnosis", "Glaucoma")]);
        let (rel2, preds2) = leaves[2];
        assert_eq!(rel2, "Prescription");
        assert_eq!(preds2.len(), 1);
        match &preds2[0] {
            Predicate::Range { attr, lo, hi } => {
                assert_eq!(attr, "date");
                assert_eq!(*lo, days_since_1900(2000, 1, 1));
                assert_eq!(*hi, days_since_1900(2002, 12, 31));
            }
            p => panic!("unexpected predicate {p}"),
        }
        // Shape: Project over Join(Join(Patient, Diagnosis), Prescription).
        let printed = format!("{plan}");
        assert!(printed.starts_with("Project Prescription.prescription"));
        assert!(printed.contains("Join Patient.patient_id = Diagnosis.patient_id"));
        assert!(printed.contains("Join Diagnosis.prescription_id = Prescription.prescription_id"));
    }

    #[test]
    fn chained_between_condition() {
        let planner = medical_planner();
        let q = parse_query("SELECT * FROM Patient WHERE 30 < age < 50").unwrap();
        let plan = planner.plan(&q).unwrap();
        // Exclusive bounds narrow by one on each side.
        assert_eq!(plan.leaves()[0].1, &[Predicate::range("age", 31, 49)]);
    }

    #[test]
    fn merges_multiple_bounds_on_one_attribute() {
        let planner = medical_planner();
        let q = parse_query("SELECT * FROM Patient WHERE age >= 30 AND age <= 50 AND age <= 45")
            .unwrap();
        let plan = planner.plan(&q).unwrap();
        assert_eq!(plan.leaves()[0].1, &[Predicate::range("age", 30, 45)]);
    }

    #[test]
    fn contradictory_bounds_rejected() {
        let planner = medical_planner();
        let q = parse_query("SELECT * FROM Patient WHERE age > 50 AND age < 30").unwrap();
        assert_eq!(
            planner.plan(&q),
            Err(PlanError::EmptyRange("age".to_string()))
        );
    }

    #[test]
    fn unknown_relation_rejected() {
        let planner = medical_planner();
        let q = parse_query("SELECT * FROM Nonexistent WHERE age = 1").unwrap();
        assert!(matches!(
            planner.plan(&q),
            Err(PlanError::UnknownRelation(_))
        ));
    }

    #[test]
    fn ambiguous_bare_attribute_rejected() {
        let planner = medical_planner();
        // `age` exists in both Patient and Physician.
        let q = parse_query(
            "SELECT * FROM Patient, Physician \
             WHERE age = 30 AND Patient.patient_id = Physician.physician_id",
        )
        .unwrap();
        assert_eq!(
            planner.plan(&q),
            Err(PlanError::AmbiguousAttribute("age".to_string()))
        );
    }

    #[test]
    fn string_range_rejected() {
        let planner = medical_planner();
        let q = parse_query("SELECT * FROM Patient WHERE name > 5").unwrap();
        assert!(matches!(
            planner.plan(&q),
            Err(PlanError::OrderedOpOnString(_))
        ));
    }

    #[test]
    fn cross_product_rejected() {
        let planner = medical_planner();
        let q = parse_query("SELECT * FROM Patient, Diagnosis WHERE age = 30").unwrap();
        assert_eq!(planner.plan(&q), Err(PlanError::DisconnectedJoin));
    }

    #[test]
    fn eq_on_int_becomes_point_range() {
        let planner = medical_planner();
        let q = parse_query("SELECT * FROM Patient WHERE age = 30").unwrap();
        let plan = planner.plan(&q).unwrap();
        assert_eq!(plan.leaves()[0].1, &[Predicate::range("age", 30, 30)]);
    }

    #[test]
    fn type_mismatch_rejected() {
        let planner = medical_planner();
        let q = parse_query("SELECT * FROM Patient WHERE age = 'thirty'").unwrap();
        assert!(matches!(
            planner.plan(&q),
            Err(PlanError::TypeMismatch { .. })
        ));
    }
}
