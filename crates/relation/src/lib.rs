//! Relational substrate for the P2P data sharing system.
//!
//! The paper's peers share data "in the form of database relations" (§2):
//! a global schema is known to all peers, sources hold base relations, and
//! peers cache *horizontal partitions* — the tuples of one relation
//! selected by a range predicate on a single attribute. Queries arrive as
//! SQL, get planned with selections pushed to the leaves, and the leaves
//! are served from cached partitions fetched through the P2P layer while
//! joins/projections run locally at the querying peer.
//!
//! This crate provides all of that machinery:
//!
//! * [`value::Value`] / [`schema::Schema`] / [`schema::Relation`] — typed
//!   tuples and relations;
//! * [`predicate::Predicate`] — single-attribute range and equality
//!   selections (the paper's restriction: one attribute per select);
//! * [`partition::HorizontalPartition`] — a cached fragment with its
//!   defining [`ars_lsh::RangeSet`];
//! * [`plan`] — logical plans with select-pushdown planning;
//! * [`exec`] — a small executor: scan, filter, project, hash join;
//! * [`sql`] — a tokenizer + recursive-descent parser for the paper's
//!   query class (`SELECT … FROM r1, r2 WHERE range AND eq-join …`).

#![warn(missing_docs)]

pub mod exec;
pub mod partition;
pub mod plan;
pub mod predicate;
pub mod schema;
pub mod sql;
pub mod value;

pub use exec::execute;
pub use partition::HorizontalPartition;
pub use plan::{LogicalPlan, Planner};
pub use predicate::Predicate;
pub use schema::{Attribute, Relation, Schema, Tuple};
pub use sql::parse_query;
pub use value::{Value, ValueType};
