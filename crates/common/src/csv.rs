//! Minimal CSV writing for experiment results.
//!
//! The figure harness in `ars-bench` emits one CSV per reproduced figure.
//! The format is deliberately simple (comma separation, quoting only when a
//! field contains a comma, quote, or newline) — enough for gnuplot, pandas,
//! or a spreadsheet.

use std::fmt::Write as _;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// An in-memory CSV table with a fixed header.
#[derive(Debug, Clone)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Create a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> CsvTable {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "CSV header must be non-empty");
        CsvTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table to a CSV string.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        write_record(&mut out, &self.header);
        for row in &self.rows {
            write_record(&mut out, row);
        }
        out
    }

    /// Write the table to a file, creating parent directories as needed.
    pub fn write_to<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = File::create(path)?;
        f.write_all(self.to_csv_string().as_bytes())
    }
}

fn write_record(out: &mut String, fields: &[String]) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if f.contains(',') || f.contains('"') || f.contains('\n') {
            let escaped = f.replace('"', "\"\"");
            let _ = write!(out, "\"{escaped}\"");
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

/// Format a float with enough precision for plotting without noise digits.
pub fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push_row(["1", "2"]);
        t.push_row(["3", "4"]);
        assert_eq!(t.to_csv_string(), "a,b\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn quotes_special_fields() {
        let mut t = CsvTable::new(["x"]);
        t.push_row(["has,comma"]);
        t.push_row(["has\"quote"]);
        assert_eq!(t.to_csv_string(), "x\n\"has,comma\"\n\"has\"\"quote\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn write_creates_dirs() {
        let dir = std::env::temp_dir().join(format!("ars-csv-test-{}", std::process::id()));
        let path = dir.join("nested/out.csv");
        let mut t = CsvTable::new(["v"]);
        t.push_row(["7"]);
        t.write_to(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "v\n7\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fmt_f64_style() {
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(0.25), "0.250000");
    }
}
