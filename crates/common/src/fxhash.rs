//! A fast, non-cryptographic hasher for hot hash maps.
//!
//! The simulation layers key maps by small integers (32-bit identifiers, peer
//! indices) millions of times per experiment. The standard library's SipHash
//! is needlessly expensive for that; this is the Fx algorithm used by rustc
//! (multiply-and-rotate word mixer), implemented locally so we stay inside the
//! approved dependency set. HashDoS resistance is irrelevant here: all keys
//! come from our own simulator.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word-at-a-time hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u32), hash_of(&2u32));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&2), Some(&"two"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn tail_bytes_affect_hash() {
        // 9-byte inputs differing only in the final byte must differ.
        let a: [u8; 9] = [0, 0, 0, 0, 0, 0, 0, 0, 1];
        let b: [u8; 9] = [0, 0, 0, 0, 0, 0, 0, 0, 2];
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(&a), h(&b));
    }

    #[test]
    fn u32_keys_spread() {
        // Low-entropy sequential keys should still produce distinct hashes.
        let hashes: FxHashSet<u64> = (0u32..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1000);
    }
}
