//! Shared utilities for the `ars` workspace.
//!
//! This crate deliberately has **no external dependencies**: everything the
//! rest of the system needs for deterministic pseudo-randomness, fast
//! non-cryptographic hashing, summary statistics, and CSV result output is
//! implemented here so that experiments are reproducible bit-for-bit across
//! machines and crate-version bumps.

#![warn(missing_docs)]

pub mod csv;
pub mod fxhash;
pub mod rng;
pub mod stats;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::DetRng;
pub use stats::{Histogram, Summary};
