//! Deterministic pseudo-random number generation.
//!
//! Experiments in the paper are defined by their workload distribution, not a
//! particular random stream, but for *reproducibility* every run in this
//! repository is driven by an explicitly seeded generator. We implement
//! xoshiro256++ (public-domain algorithm by Blackman & Vigna) seeded through
//! splitmix64, rather than depending on `rand`'s version-dependent stream, so
//! a seed written in EXPERIMENTS.md regenerates the same numbers forever.

/// splitmix64 step: used for seeding and as a cheap stateless mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// Not cryptographically secure; used only to drive simulations and
/// synthetic workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a 64-bit seed (expanded via splitmix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not be seeded with all zeros; splitmix64 output of any
        // seed cannot be all-zero across four draws, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        DetRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift rejection
    /// method (unbiased).
    #[inline]
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only reject when low part falls in the biased
            // region. threshold = (2^64 - bound) mod bound = wrapping_neg % bound
            let threshold = bound.wrapping_neg() % bound;
            if lo >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    #[inline]
    pub fn gen_inclusive_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + self.gen_range_u64(span) as u32
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range_u64(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns true with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.gen_index(i + 1);
            data.swap(i, j);
        }
    }

    /// Choose `m` distinct indices from `[0, n)` (partial Fisher–Yates).
    pub fn sample_indices(&mut self, n: usize, m: usize) -> Vec<usize> {
        assert!(m <= n, "cannot sample {m} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..m {
            let j = i + self.gen_index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(m);
        idx
    }

    /// Fork a derived, independently-seeded generator. Useful to hand each
    /// simulated peer or hash function its own stream without correlation.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }

    /// Split `n` parallel streams off this generator **without advancing
    /// it**.
    ///
    /// Stream 0 is an exact continuation of `self`: its draws are the very
    /// numbers `self` would produce next. Streams `1..n` are independently
    /// seeded from a splitmix64 fold of the current state plus the stream
    /// index, so stream `i` is the same generator regardless of `n` — a
    /// consumer that splits 4 streams and one that splits 7 agree on
    /// streams 0–3. This is what lets a sharded engine hand each shard its
    /// own deterministic stream while shard 0 (and therefore a one-shard
    /// configuration) reproduces the unsplit sequence bit for bit.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn split_streams(&self, n: usize) -> Vec<DetRng> {
        assert!(n > 0, "must split at least one stream");
        let mut streams = Vec::with_capacity(n);
        streams.push(self.clone());
        // Fold the four state words into one seed base; each extra stream
        // re-mixes the base with its index. Seeding through `DetRng::new`
        // adds a second splitmix expansion, decorrelating the streams from
        // each other and from stream 0's raw xoshiro outputs.
        let mut base = 0x243F_6A88_85A3_08D3u64; // arbitrary fixed tag
        for &w in &self.s {
            base ^= w;
            splitmix64(&mut base);
        }
        for i in 1..n as u64 {
            let mut s = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            streams.push(DetRng::new(splitmix64(&mut s)));
        }
        streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut r = DetRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..200 {
                assert!(r.gen_range_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_inclusive_hits_endpoints() {
        let mut r = DetRng::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = r.gen_inclusive_u32(5, 8);
            assert!((5..=8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut r = DetRng::new(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.gen_index(10)] += 1;
        }
        for &c in &counts {
            // expectation 10_000; allow 10% slack
            assert!((9_000..=11_000).contains(&c), "count {c} out of range");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = DetRng::new(13);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = DetRng::new(1234);
        let mut c1 = root.fork();
        let mut c2 = root.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_stream_zero_continues_parent_exactly() {
        let parent = DetRng::new(2024);
        let mut streams = parent.clone().split_streams(4);
        let mut unsplit = parent;
        for _ in 0..256 {
            assert_eq!(streams[0].next_u64(), unsplit.next_u64());
        }
    }

    #[test]
    fn split_does_not_advance_parent() {
        let mut parent = DetRng::new(7);
        let before = parent.clone();
        let _ = parent.split_streams(8);
        assert_eq!(parent, before);
        assert_eq!(parent.next_u64(), before.clone().next_u64());
    }

    #[test]
    fn split_streams_pairwise_independent() {
        let parent = DetRng::new(99);
        let streams = parent.split_streams(5);
        for i in 0..streams.len() {
            for j in (i + 1)..streams.len() {
                let mut a = streams[i].clone();
                let mut b = streams[j].clone();
                let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
                assert_eq!(same, 0, "streams {i} and {j} correlate");
            }
        }
    }

    #[test]
    fn split_stream_i_independent_of_count() {
        let parent = DetRng::new(314);
        let four = parent.split_streams(4);
        let seven = parent.split_streams(7);
        for i in 0..4 {
            assert_eq!(four[i], seven[i], "stream {i} depends on split count");
        }
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn split_zero_streams_rejected() {
        DetRng::new(1).split_streams(0);
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = DetRng::new(77);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((24_000..=26_000).contains(&hits), "hits {hits}");
    }
}
