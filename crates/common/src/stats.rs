//! Summary statistics used by the experiment harness.
//!
//! The paper reports means, 1st/99th percentiles (Figs. 11–12), histograms of
//! match similarity (Figs. 6–7), and cumulative "percentage of queries with
//! recall ≥ x" curves (Figs. 8–10). These small building blocks compute all
//! of those from raw samples.

/// Mean / percentile summary of a sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// 1st percentile.
    pub p01: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Compute a summary from samples. Panics on an empty slice.
    pub fn from_samples(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "Summary of empty sample set");
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let mean = sum / count as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            min: sorted[0],
            max: sorted[count - 1],
            p01: percentile_sorted(&sorted, 0.01),
            p50: percentile_sorted(&sorted, 0.50),
            p99: percentile_sorted(&sorted, 0.99),
            stddev: var.sqrt(),
        }
    }

    /// Convenience: summarize integer samples.
    pub fn from_counts<I: IntoIterator<Item = usize>>(counts: I) -> Summary {
        let samples: Vec<f64> = counts.into_iter().map(|c| c as f64).collect();
        Summary::from_samples(&samples)
    }
}

/// Percentile (nearest-rank with linear interpolation) of a pre-sorted slice.
/// `q` in `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Percentile of an unsorted slice.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    percentile_sorted(&sorted, q)
}

/// A fixed-width histogram over `[lo, hi]`.
///
/// Used for the similarity histograms of Figs. 6–7 (10 bins over `[0, 1]`).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Samples below `lo` or above `hi`.
    pub out_of_range: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `nbins` equal bins spanning `[lo, hi]`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Histogram {
        assert!(nbins > 0 && hi > lo);
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            out_of_range: 0,
            total: 0,
        }
    }

    /// Record one sample. Samples exactly at `hi` land in the last bin.
    pub fn record(&mut self, x: f64) {
        if x < self.lo || x > self.hi || x.is_nan() {
            self.out_of_range += 1;
            return;
        }
        let n = self.bins.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * n as f64) as usize).min(n - 1);
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total in-range samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin counts as percentages of total in-range samples (the y-axis of the
    /// paper's Figs. 6–7).
    pub fn percentages(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins
            .iter()
            .map(|&c| 100.0 * c as f64 / self.total as f64)
            .collect()
    }

    /// `(bin_low_edge, bin_high_edge)` for bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }
}

/// Build the complementary-cumulative curve used by the paper's recall plots
/// (Figs. 8–10): for each threshold `t` in `thresholds`, the *percentage* of
/// samples with value `>= t`.
pub fn pct_at_least(samples: &[f64], thresholds: &[f64]) -> Vec<f64> {
    if samples.is_empty() {
        return vec![0.0; thresholds.len()];
    }
    thresholds
        .iter()
        .map(|&t| {
            let n = samples.iter().filter(|&&s| s >= t).count();
            100.0 * n as f64 / samples.len() as f64
        })
        .collect()
}

/// A discrete probability-distribution function over integer outcomes,
/// used for Fig. 12(b) (PDF of path length).
pub fn discrete_pdf(samples: &[usize]) -> Vec<(usize, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let max = *samples.iter().max().unwrap();
    let mut counts = vec![0u64; max + 1];
    for &s in samples {
        counts[s] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(v, c)| (v, c as f64 / samples.len() as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.p50 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.p01, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_empty_panics() {
        Summary::from_samples(&[]);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn percentile_of_uniform_ramp() {
        let samples: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert!((percentile(&samples, 0.99) - 99.0).abs() < 1e-9);
        assert!((percentile(&samples, 0.01) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_and_percentages() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for x in [0.05, 0.15, 0.15, 0.95, 1.0] {
            h.record(x);
        }
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 2); // 0.95 and 1.0 both in last bin
        assert_eq!(h.total(), 5);
        let p = h.percentages();
        assert!((p[1] - 40.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.1);
        h.record(f64::NAN);
        assert_eq!(h.out_of_range, 3);
        assert_eq!(h.total(), 0);
        assert_eq!(h.percentages(), vec![0.0; 4]);
    }

    #[test]
    fn histogram_bin_edges() {
        let h = Histogram::new(0.0, 1.0, 10);
        let (lo, hi) = h.bin_edges(3);
        assert!((lo - 0.3).abs() < 1e-12);
        assert!((hi - 0.4).abs() < 1e-12);
    }

    #[test]
    fn pct_at_least_curve() {
        let samples = [1.0, 0.5, 0.5, 0.0];
        let curve = pct_at_least(&samples, &[0.0, 0.5, 1.0]);
        assert_eq!(curve, vec![100.0, 75.0, 25.0]);
    }

    #[test]
    fn pct_at_least_empty() {
        assert_eq!(pct_at_least(&[], &[0.5]), vec![0.0]);
    }

    #[test]
    fn discrete_pdf_sums_to_one() {
        let samples = [2usize, 2, 3, 5];
        let pdf = discrete_pdf(&samples);
        let total: f64 = pdf.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(pdf[2].1, 0.5);
        assert_eq!(pdf[4].1, 0.0);
        assert_eq!(pdf[5].1, 0.25);
    }
}
