//! Binary wire format for protocol messages.
//!
//! The threaded runtime moves typed values through channels, but a real
//! deployment needs a concrete encoding. [`Wire`] defines one:
//! length-prefixed frames (u32 big-endian length, then the payload), with
//! primitive helpers over `bytes::{Buf, BufMut}` that protocol crates use
//! to implement [`Wire`] for their message enums. Round-trip property
//! tests in `ars-core` exercise the full protocol encoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An enum tag byte was not recognized.
    BadTag(u8),
    /// A length field exceeded sanity bounds.
    BadLength(u64),
    /// String payload was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated message"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::BadLength(l) => write!(f, "implausible length {l}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Maximum accepted collection length — a defensive bound against corrupt
/// frames allocating gigabytes.
pub const MAX_LEN: u64 = 16 * 1024 * 1024;

/// Types with a binary wire encoding.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decode a value, consuming exactly its bytes from `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError>;
}

/// Frame a message: u32 BE length prefix + payload.
pub fn frame<M: Wire>(msg: &M) -> Bytes {
    let mut payload = BytesMut::new();
    msg.encode(&mut payload);
    let mut out = BytesMut::with_capacity(4 + payload.len());
    out.put_u32(payload.len() as u32);
    out.extend_from_slice(&payload);
    out.freeze()
}

/// Strip a frame and decode its message. Returns the message and any
/// remaining bytes after the frame.
pub fn deframe<M: Wire>(mut buf: Bytes) -> Result<(M, Bytes), CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u32() as usize;
    if buf.len() < len {
        return Err(CodecError::Truncated);
    }
    let mut payload = buf.split_to(len);
    let msg = M::decode(&mut payload)?;
    if !payload.is_empty() {
        return Err(CodecError::BadLength(payload.len() as u64));
    }
    Ok((msg, buf))
}

// --------------------------------------------------------------- helpers

/// Read a `u8`, checking length.
pub fn get_u8(buf: &mut Bytes) -> Result<u8, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u8())
}

/// Read a `u32` (big-endian), checking length.
pub fn get_u32(buf: &mut Bytes) -> Result<u32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u32())
}

/// Read a `u64` (big-endian), checking length.
pub fn get_u64(buf: &mut Bytes) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u64())
}

/// Write a length-prefixed string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a length-prefixed string.
pub fn get_str(buf: &mut Bytes) -> Result<String, CodecError> {
    let len = get_u32(buf)? as u64;
    if len > MAX_LEN {
        return Err(CodecError::BadLength(len));
    }
    if (buf.remaining() as u64) < len {
        return Err(CodecError::Truncated);
    }
    let raw = buf.split_to(len as usize);
    String::from_utf8(raw.to_vec()).map_err(|_| CodecError::BadUtf8)
}

/// Write a length-prefixed list.
pub fn put_seq<T>(buf: &mut BytesMut, items: &[T], mut f: impl FnMut(&mut BytesMut, &T)) {
    buf.put_u32(items.len() as u32);
    for it in items {
        f(buf, it);
    }
}

/// Read a length-prefixed list.
pub fn get_seq<T>(
    buf: &mut Bytes,
    mut f: impl FnMut(&mut Bytes) -> Result<T, CodecError>,
) -> Result<Vec<T>, CodecError> {
    let len = get_u32(buf)? as u64;
    if len > MAX_LEN {
        return Err(CodecError::BadLength(len));
    }
    let mut out = Vec::with_capacity(len.min(1024) as usize);
    for _ in 0..len {
        out.push(f(buf)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ping {
        id: u64,
        tag: String,
        data: Vec<u32>,
    }

    impl Wire for Ping {
        fn encode(&self, buf: &mut BytesMut) {
            buf.put_u64(self.id);
            put_str(buf, &self.tag);
            put_seq(buf, &self.data, |b, v| b.put_u32(*v));
        }
        fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
            Ok(Ping {
                id: get_u64(buf)?,
                tag: get_str(buf)?,
                data: get_seq(buf, get_u32)?,
            })
        }
    }

    #[test]
    fn roundtrip() {
        let p = Ping {
            id: 77,
            tag: "hello λ".to_string(),
            data: vec![1, 2, 3, u32::MAX],
        };
        let framed = frame(&p);
        let (decoded, rest) = deframe::<Ping>(framed).unwrap();
        assert_eq!(decoded, p);
        assert!(rest.is_empty());
    }

    #[test]
    fn deframe_leaves_following_bytes() {
        let p = Ping {
            id: 1,
            tag: "x".into(),
            data: vec![],
        };
        let mut bytes = BytesMut::new();
        bytes.extend_from_slice(&frame(&p));
        bytes.extend_from_slice(&frame(&p));
        let (m1, rest) = deframe::<Ping>(bytes.freeze()).unwrap();
        let (m2, rest2) = deframe::<Ping>(rest).unwrap();
        assert_eq!(m1, m2);
        assert!(rest2.is_empty());
    }

    #[test]
    fn truncated_frame_detected() {
        let p = Ping {
            id: 1,
            tag: "abc".into(),
            data: vec![9],
        };
        let full = frame(&p);
        for cut in [0, 2, 4, full.len() - 1] {
            let partial = full.slice(..cut);
            assert_eq!(
                deframe::<Ping>(partial).unwrap_err(),
                CodecError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_in_frame_detected() {
        // Craft a frame whose declared length exceeds the encoded message.
        let p = Ping {
            id: 1,
            tag: "".into(),
            data: vec![],
        };
        let mut payload = BytesMut::new();
        p.encode(&mut payload);
        payload.put_u8(0xFF); // extra byte inside the frame
        let mut framed = BytesMut::new();
        framed.put_u32(payload.len() as u32);
        framed.extend_from_slice(&payload);
        assert!(matches!(
            deframe::<Ping>(framed.freeze()),
            Err(CodecError::BadLength(_))
        ));
    }

    #[test]
    fn bad_utf8_detected() {
        let mut payload = BytesMut::new();
        payload.put_u64(5);
        payload.put_u32(2);
        payload.put_slice(&[0xFF, 0xFE]); // invalid UTF-8
        payload.put_u32(0);
        let mut framed = BytesMut::new();
        framed.put_u32(payload.len() as u32);
        framed.extend_from_slice(&payload);
        assert_eq!(
            deframe::<Ping>(framed.freeze()).unwrap_err(),
            CodecError::BadUtf8
        );
    }

    #[test]
    fn implausible_length_rejected() {
        let mut payload = BytesMut::new();
        payload.put_u64(5);
        payload.put_u32(u32::MAX); // string "length" of 4 GiB
        let mut framed = BytesMut::new();
        framed.put_u32(payload.len() as u32);
        framed.extend_from_slice(&payload);
        assert!(matches!(
            deframe::<Ping>(framed.freeze()),
            Err(CodecError::BadLength(_))
        ));
    }

    #[test]
    fn error_display() {
        assert_eq!(format!("{}", CodecError::Truncated), "truncated message");
        assert!(format!("{}", CodecError::BadTag(9)).contains('9'));
    }
}
