//! Network substrate for the P2P system.
//!
//! The paper's peers are "connected to each other via connections over a
//! TCP/IP network" (§2) but its evaluation runs in simulation. This crate
//! provides both renditions:
//!
//! * [`sim::SimNet`] — a deterministic discrete-event simulator: messages
//!   carry a latency drawn from a pluggable [`event::LatencyModel`], and a
//!   single-threaded run loop dispatches them in virtual-time order. Every
//!   run with the same seed is bit-identical, which the experiment harness
//!   relies on.
//! * [`threaded::ThreadedNet`] — an in-process runtime where every peer is
//!   an OS thread exchanging messages over crossbeam channels; the same
//!   [`Node`] implementation runs unchanged on either substrate.
//! * [`codec`] — a small binary wire format (length-prefixed frames over
//!   `bytes`) so protocol messages have a concrete encoding, exercised by
//!   round-trip tests.
//! * [`fault`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   (drop, duplication, extra delay, node crash/pause windows, scheduled
//!   network partitions, and gray-failure slow windows) executed
//!   identically by both runtimes, driving the `SimStats` accounting
//!   invariant `sent == delivered + dropped + partitioned + queued`
//!   (slowed copies are delivered, tracked in their own column).

#![warn(missing_docs)]

pub mod codec;
pub mod event;
pub mod fault;
pub mod sim;
pub mod threaded;

pub use event::{ConstantLatency, LatencyModel, UniformLatency};
pub use fault::{FaultAction, FaultInjector, FaultPlan, PartitionWindow, SlowWindow};
pub use sim::{Node, NodeCtx, SimNet, SimStats};
pub use threaded::ThreadedNet;
