//! The deterministic discrete-event simulator.
//!
//! Peers implement [`Node`]; the simulator owns them, delivers messages in
//! virtual-time order, and lets handlers send further messages through a
//! [`NodeCtx`]. A full run is a pure function of (nodes, latency model,
//! initial messages) — no wall-clock, no thread scheduling — so experiment
//! results are exactly reproducible.

use crate::event::{Delivery, EventQueue, LatencyModel, SimTime};
use ars_common::DetRng;

/// Aggregate transport statistics for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total messages delivered.
    pub delivered: u64,
    /// Total messages sent (delivered + still queued at stop).
    pub sent: u64,
    /// Messages dropped by the loss model.
    pub dropped: u64,
    /// Total wire bytes sent (only counted when a meter is installed via
    /// [`SimNet::set_meter`]).
    pub bytes: u64,
    /// Virtual time of the last delivery.
    pub end_time: SimTime,
}

/// A wire meter: returns the on-wire size of a message.
pub type WireMeter<M> = Box<dyn FnMut(&M) -> u64>;

/// A peer's message handler.
pub trait Node<M> {
    /// Handle a message delivered to this node. `ctx` exposes the node's
    /// own index, the virtual clock, and `send`.
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, M>, from: usize, msg: M);
}

/// Handler-side view of the simulator.
#[derive(Debug)]
pub struct NodeCtx<'a, M> {
    /// Index of the handling node.
    pub me: usize,
    /// Current virtual time (the delivery time of the message being
    /// handled).
    pub now: SimTime,
    outbox: &'a mut Vec<(usize, M)>,
}

impl<'a, M> NodeCtx<'a, M> {
    /// Internal constructor shared by the simulator and the threaded
    /// runtime.
    pub(crate) fn for_runtime(
        me: usize,
        now: SimTime,
        outbox: &'a mut Vec<(usize, M)>,
    ) -> NodeCtx<'a, M> {
        NodeCtx { me, now, outbox }
    }

    /// Send `msg` to peer `to` (delivery is scheduled when the handler
    /// returns, with latency from the run's latency model).
    pub fn send(&mut self, to: usize, msg: M) {
        self.outbox.push((to, msg));
    }
}

/// The simulator: nodes + queue + clock.
pub struct SimNet<M, L: LatencyModel> {
    nodes: Vec<Box<dyn Node<M>>>,
    queue: EventQueue<M>,
    latency: L,
    now: SimTime,
    stats: SimStats,
    /// Optional loss model: each message independently dropped with this
    /// probability (failure injection).
    loss: Option<(f64, DetRng)>,
    /// Optional wire meter: bytes a message would occupy on the wire.
    meter: Option<WireMeter<M>>,
}

impl<M, L: LatencyModel> SimNet<M, L> {
    /// Create a simulator over `nodes` with the given latency model.
    pub fn new(nodes: Vec<Box<dyn Node<M>>>, latency: L) -> SimNet<M, L> {
        SimNet {
            nodes,
            queue: EventQueue::new(),
            latency,
            now: 0,
            stats: SimStats::default(),
            loss: None,
            meter: None,
        }
    }

    /// Install a wire meter: called once per sent message; the returned
    /// size accumulates in [`SimStats::bytes`]. Typically the framed
    /// encoding length (`ars_simnet::codec::frame(msg).len()`).
    pub fn set_meter(&mut self, f: impl FnMut(&M) -> u64 + 'static) {
        self.meter = Some(Box::new(f));
    }

    fn metered(&mut self, msg: &M) -> u64 {
        match &mut self.meter {
            Some(f) => f(msg),
            None => 0,
        }
    }

    /// Enable lossy transport: every message (injected or sent by a
    /// handler) is independently dropped with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn set_loss(&mut self, p: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss = if p > 0.0 {
            Some((p, DetRng::new(seed)))
        } else {
            None
        };
    }

    /// Returns true if the loss model decides to drop a message.
    fn drops(&mut self) -> bool {
        match &mut self.loss {
            Some((p, rng)) => {
                let p = *p;
                rng.gen_bool(p)
            }
            None => false,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the simulator has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Inject a message from the outside world (e.g. a user query arriving
    /// at a peer) at the current virtual time plus one latency sample.
    ///
    /// # Panics
    /// Panics if `to` is out of range.
    pub fn inject(&mut self, from: usize, to: usize, msg: M) {
        assert!(to < self.nodes.len(), "destination {to} out of range");
        if self.drops() {
            self.stats.dropped += 1;
            return;
        }
        self.stats.bytes += self.metered(&msg);
        let lat = self.latency.latency(from, to);
        self.queue.schedule(self.now + lat, from, to, msg);
        self.stats.sent += 1;
    }

    /// Deliver a single message; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Delivery {
            at, from, to, msg, ..
        }) = self.queue.pop()
        else {
            return false;
        };
        debug_assert!(at >= self.now, "time ran backwards");
        self.now = at;
        self.stats.delivered += 1;
        self.stats.end_time = at;
        let mut outbox: Vec<(usize, M)> = Vec::new();
        {
            let mut ctx = NodeCtx::for_runtime(to, at, &mut outbox);
            self.nodes[to].on_message(&mut ctx, from, msg);
        }
        for (dest, m) in outbox {
            assert!(dest < self.nodes.len(), "destination {dest} out of range");
            if self.drops() {
                self.stats.dropped += 1;
                continue;
            }
            self.stats.bytes += self.metered(&m);
            let lat = self.latency.latency(to, dest);
            self.queue.schedule(at + lat, to, dest, m);
            self.stats.sent += 1;
        }
        true
    }

    /// Run until the queue drains or `max_steps` deliveries have happened.
    /// Returns the number of deliveries performed.
    pub fn run(&mut self, max_steps: u64) -> u64 {
        let mut steps = 0;
        while steps < max_steps && self.step() {
            steps += 1;
        }
        steps
    }

    /// Borrow a node's state (for inspection after a run).
    pub fn node(&self, i: usize) -> &dyn Node<M> {
        self.nodes[i].as_ref()
    }

    /// Mutably borrow a node's state.
    pub fn node_mut(&mut self, i: usize) -> &mut (dyn Node<M> + 'static) {
        self.nodes[i].as_mut()
    }

    /// Consume the simulator, returning the nodes (to extract results).
    pub fn into_nodes(self) -> Vec<Box<dyn Node<M>>> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ConstantLatency;
    use crate::event::UniformLatency;

    /// A node that forwards a counter to the next node until it hits 0.
    struct RelayNode {
        received: Vec<u32>,
        n_nodes: usize,
    }

    impl Node<u32> for RelayNode {
        fn on_message(&mut self, ctx: &mut NodeCtx<'_, u32>, _from: usize, msg: u32) {
            self.received.push(msg);
            if msg > 0 {
                ctx.send((ctx.me + 1) % self.n_nodes, msg - 1);
            }
        }
    }

    fn relay_net(n: usize) -> SimNet<u32, ConstantLatency> {
        let nodes: Vec<Box<dyn Node<u32>>> = (0..n)
            .map(|_| {
                Box::new(RelayNode {
                    received: Vec::new(),
                    n_nodes: n,
                }) as Box<dyn Node<u32>>
            })
            .collect();
        SimNet::new(nodes, ConstantLatency(10))
    }

    #[test]
    fn relays_until_counter_exhausts() {
        let mut net = relay_net(3);
        net.inject(0, 0, 5);
        let steps = net.run(1000);
        // 6 deliveries: 5,4,3,2,1,0.
        assert_eq!(steps, 6);
        assert_eq!(net.stats().delivered, 6);
        assert_eq!(net.stats().sent, 6);
        // Virtual time advanced by 6 hops × 10 µs.
        assert_eq!(net.now(), 60);
    }

    #[test]
    fn run_respects_step_budget() {
        let mut net = relay_net(2);
        net.inject(0, 0, 100);
        let steps = net.run(3);
        assert_eq!(steps, 3);
        assert!(net.stats().delivered == 3);
    }

    #[test]
    fn deterministic_with_seeded_latency() {
        let run = || {
            let nodes: Vec<Box<dyn Node<u32>>> = (0..4)
                .map(|_| {
                    Box::new(RelayNode {
                        received: Vec::new(),
                        n_nodes: 4,
                    }) as Box<dyn Node<u32>>
                })
                .collect();
            let mut net = SimNet::new(nodes, UniformLatency::new(5, 50, 99));
            net.inject(0, 0, 20);
            net.run(u64::MAX);
            net.now()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inject_validates_destination() {
        let mut net = relay_net(2);
        net.inject(0, 7, 1);
    }

    #[test]
    fn step_on_empty_queue_is_false() {
        let mut net = relay_net(1);
        assert!(!net.step());
    }

    #[test]
    fn meter_accumulates_bytes() {
        let mut net = relay_net(2);
        net.set_meter(|_| 8);
        net.inject(0, 0, 3);
        net.run(u64::MAX);
        // 4 messages (3,2,1,0) × 8 bytes.
        assert_eq!(net.stats().bytes, 32);
    }

    #[test]
    fn no_meter_counts_zero_bytes() {
        let mut net = relay_net(2);
        net.inject(0, 0, 3);
        net.run(u64::MAX);
        assert_eq!(net.stats().bytes, 0);
    }

    #[test]
    fn lossy_transport_drops_messages() {
        let mut net = relay_net(2);
        net.set_loss(1.0, 1); // drop everything
        net.inject(0, 0, 5);
        assert_eq!(net.stats().dropped, 1);
        assert_eq!(net.run(100), 0);
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn partial_loss_still_makes_progress() {
        let mut net = relay_net(2);
        net.set_loss(0.3, 42);
        for _ in 0..50 {
            net.inject(0, 0, 10);
        }
        net.run(u64::MAX);
        let s = net.stats();
        assert!(s.dropped > 0, "some messages must drop at 30% loss");
        assert!(s.delivered > 0, "some messages must get through");
        assert_eq!(s.sent, s.delivered, "queue drained");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn loss_probability_validated() {
        let mut net = relay_net(1);
        net.set_loss(1.5, 0);
    }

    #[test]
    fn stats_count_queued_but_undelivered() {
        let mut net = relay_net(2);
        net.inject(0, 0, 1);
        net.inject(0, 1, 0);
        assert_eq!(net.stats().sent, 2);
        assert_eq!(net.stats().delivered, 0);
        net.run(u64::MAX);
        assert_eq!(net.stats().delivered, 3); // two injected + one relay
    }
}
