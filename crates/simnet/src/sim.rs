//! The deterministic discrete-event simulator.
//!
//! Peers implement [`Node`]; the simulator owns them, delivers messages in
//! virtual-time order, and lets handlers send further messages through a
//! [`NodeCtx`]. A full run is a pure function of (nodes, latency model,
//! initial messages) — no wall-clock, no thread scheduling — so experiment
//! results are exactly reproducible.

use crate::event::{Delivery, EventQueue, LatencyModel, SimTime};
use crate::fault::{FaultAction, FaultInjector, FaultPlan};

/// Aggregate transport statistics for one run.
///
/// Every send attempt is accounted exactly once, so at any instant
/// `sent == delivered + dropped + partitioned + queued` — the conservation
/// invariant the fault layer is tested against. Duplicated messages count
/// each copy as a separate send.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total messages delivered.
    pub delivered: u64,
    /// Total send attempts (delivered + dropped + partitioned + still
    /// queued).
    pub sent: u64,
    /// Messages dropped by the fault layer (loss model or crashed
    /// endpoint).
    pub dropped: u64,
    /// Messages lost to an open partition window (cross-island traffic).
    pub partitioned: u64,
    /// Messages currently scheduled but not yet delivered.
    pub queued: u64,
    /// Copies whose latency was inflated by an open slow window (gray
    /// failures). These are *delivered*, so the column is informational —
    /// it never appears in the conservation identity.
    pub slowed: u64,
    /// Total wire bytes sent (only counted when a meter is installed via
    /// [`SimNet::set_meter`]).
    pub bytes: u64,
    /// Virtual time of the last delivery.
    pub end_time: SimTime,
}

impl SimStats {
    /// The conservation invariant: every send attempt is delivered,
    /// dropped, lost to a partition, or still queued.
    pub fn is_conserved(&self) -> bool {
        self.sent == self.delivered + self.dropped + self.partitioned + self.queued
    }

    /// Re-export the message ledger as `simnet.*` telemetry gauges, so a
    /// recording sink's snapshot carries the transport picture alongside
    /// the query-layer counters (and the conservation invariant can be
    /// re-checked from the snapshot alone).
    pub fn export_telemetry(&self, telemetry: &ars_telemetry::Telemetry) {
        telemetry.gauge_set("simnet.sent", self.sent);
        telemetry.gauge_set("simnet.delivered", self.delivered);
        telemetry.gauge_set("simnet.dropped", self.dropped);
        telemetry.gauge_set("simnet.partitioned", self.partitioned);
        telemetry.gauge_set("simnet.queued", self.queued);
        telemetry.gauge_set("simnet.slowed", self.slowed);
        telemetry.gauge_set("simnet.bytes", self.bytes);
        telemetry.gauge_set("simnet.end_time", self.end_time);
    }
}

/// A wire meter: returns the on-wire size of a message.
pub type WireMeter<M> = Box<dyn FnMut(&M) -> u64>;

/// A peer's message handler.
pub trait Node<M> {
    /// Handle a message delivered to this node. `ctx` exposes the node's
    /// own index, the virtual clock, and `send`.
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, M>, from: usize, msg: M);
}

/// Handler-side view of the simulator.
#[derive(Debug)]
pub struct NodeCtx<'a, M> {
    /// Index of the handling node.
    pub me: usize,
    /// Current virtual time (the delivery time of the message being
    /// handled).
    pub now: SimTime,
    outbox: &'a mut Vec<(usize, M)>,
}

impl<'a, M> NodeCtx<'a, M> {
    /// Internal constructor shared by the simulator and the threaded
    /// runtime.
    pub(crate) fn for_runtime(
        me: usize,
        now: SimTime,
        outbox: &'a mut Vec<(usize, M)>,
    ) -> NodeCtx<'a, M> {
        NodeCtx { me, now, outbox }
    }

    /// Send `msg` to peer `to` (delivery is scheduled when the handler
    /// returns, with latency from the run's latency model).
    pub fn send(&mut self, to: usize, msg: M) {
        self.outbox.push((to, msg));
    }
}

/// The simulator: nodes + queue + clock.
pub struct SimNet<M, L: LatencyModel> {
    nodes: Vec<Box<dyn Node<M>>>,
    queue: EventQueue<M>,
    latency: L,
    now: SimTime,
    stats: SimStats,
    /// Optional fault injector (drop/duplicate/delay/crash/pause).
    faults: Option<FaultInjector>,
    /// Optional wire meter: bytes a message would occupy on the wire.
    meter: Option<WireMeter<M>>,
}

impl<M: Clone, L: LatencyModel> SimNet<M, L> {
    /// Create a simulator over `nodes` with the given latency model.
    pub fn new(nodes: Vec<Box<dyn Node<M>>>, latency: L) -> SimNet<M, L> {
        SimNet {
            nodes,
            queue: EventQueue::new(),
            latency,
            now: 0,
            stats: SimStats::default(),
            faults: None,
            meter: None,
        }
    }

    /// Install a wire meter: called once per sent message; the returned
    /// size accumulates in [`SimStats::bytes`]. Typically the framed
    /// encoding length (`ars_simnet::codec::frame(msg).len()`).
    pub fn set_meter(&mut self, f: impl FnMut(&M) -> u64 + 'static) {
        self.meter = Some(Box::new(f));
    }

    fn metered(&mut self, msg: &M) -> u64 {
        match &mut self.meter {
            Some(f) => f(msg),
            None => 0,
        }
    }

    /// Enable lossy transport: every message (injected or sent by a
    /// handler) is independently dropped with probability `p`. Shorthand
    /// for [`Self::set_faults`] with a drop-only plan.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn set_loss(&mut self, p: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.set_faults(FaultPlan::none().with_drop(p), seed);
    }

    /// Install a fault plan: every message (injected or sent by a handler)
    /// passes through a seeded [`FaultInjector`] that may drop, duplicate,
    /// or delay it, honouring crash and pause windows. A benign plan
    /// removes the injector.
    pub fn set_faults(&mut self, plan: FaultPlan, seed: u64) {
        self.faults = if plan.is_benign() {
            None
        } else {
            Some(FaultInjector::new(plan, seed))
        };
    }

    /// The active fault injector, if any (for inspecting drop/dup counts).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Pass one send attempt through the fault layer and schedule the
    /// surviving copies. `at` is the send time (the current virtual time
    /// for injections, the handling delivery's time for handler sends).
    fn transmit(&mut self, at: SimTime, from: usize, to: usize, msg: M) {
        assert!(to < self.nodes.len(), "destination {to} out of range");
        let action = match &mut self.faults {
            Some(inj) => inj.on_send(from, to, at),
            None => FaultAction::Deliver(vec![0]),
        };
        match action {
            FaultAction::Drop => {
                self.stats.sent += 1;
                self.stats.dropped += 1;
            }
            FaultAction::Partitioned => {
                self.stats.sent += 1;
                self.stats.partitioned += 1;
            }
            FaultAction::Deliver(extras) => {
                // Gray failure: a slowed endpoint serves at a multiple of
                // the model latency (the copy is still delivered).
                let factor = self
                    .faults
                    .as_ref()
                    .map_or(1, |inj| inj.slow_factor(from, to, at));
                for extra in extras {
                    self.stats.sent += 1;
                    self.stats.queued += 1;
                    self.stats.bytes += self.metered(&msg);
                    let lat = self.latency.latency(from, to) * factor;
                    if factor > 1 {
                        self.stats.slowed += 1;
                        if let Some(inj) = &mut self.faults {
                            inj.note_slowed();
                        }
                    }
                    self.queue.schedule(at + lat + extra, from, to, msg.clone());
                }
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the simulator has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Export the current message ledger as `simnet.*` gauges (see
    /// [`SimStats::export_telemetry`]).
    pub fn export_telemetry(&self, telemetry: &ars_telemetry::Telemetry) {
        self.stats.export_telemetry(telemetry);
    }

    /// Inject a message from the outside world (e.g. a user query arriving
    /// at a peer) at the current virtual time plus one latency sample.
    ///
    /// # Panics
    /// Panics if `to` is out of range.
    pub fn inject(&mut self, from: usize, to: usize, msg: M) {
        self.transmit(self.now, from, to, msg);
    }

    /// Deliver a single message; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Delivery {
            at, from, to, msg, ..
        }) = self.queue.pop()
        else {
            return false;
        };
        debug_assert!(at >= self.now, "time ran backwards");
        self.now = at;
        // A message in flight when its destination crashed is lost on
        // arrival (the send-time check only sees crashes already past).
        // Likewise, a message that was in flight when a partition window
        // opened cannot cross the boundary: it is lost on arrival and
        // counted in the `partitioned` column.
        if let Some(inj) = &mut self.faults {
            if inj.is_crashed(to, at) {
                self.stats.queued -= 1;
                self.stats.dropped += 1;
                return true;
            }
            if inj.is_partitioned(from, to, at) {
                inj.note_partitioned();
                self.stats.queued -= 1;
                self.stats.partitioned += 1;
                return true;
            }
        }
        self.stats.delivered += 1;
        self.stats.queued -= 1;
        self.stats.end_time = at;
        let mut outbox: Vec<(usize, M)> = Vec::new();
        {
            let mut ctx = NodeCtx::for_runtime(to, at, &mut outbox);
            self.nodes[to].on_message(&mut ctx, from, msg);
        }
        for (dest, m) in outbox {
            self.transmit(at, to, dest, m);
        }
        true
    }

    /// Run until the queue drains or `max_steps` deliveries have happened.
    /// Returns the number of deliveries performed.
    pub fn run(&mut self, max_steps: u64) -> u64 {
        let mut steps = 0;
        while steps < max_steps && self.step() {
            steps += 1;
        }
        steps
    }

    /// Borrow a node's state (for inspection after a run).
    pub fn node(&self, i: usize) -> &dyn Node<M> {
        self.nodes[i].as_ref()
    }

    /// Mutably borrow a node's state.
    pub fn node_mut(&mut self, i: usize) -> &mut (dyn Node<M> + 'static) {
        self.nodes[i].as_mut()
    }

    /// Consume the simulator, returning the nodes (to extract results).
    pub fn into_nodes(self) -> Vec<Box<dyn Node<M>>> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ConstantLatency;
    use crate::event::UniformLatency;

    /// A node that forwards a counter to the next node until it hits 0.
    struct RelayNode {
        received: Vec<u32>,
        n_nodes: usize,
    }

    impl Node<u32> for RelayNode {
        fn on_message(&mut self, ctx: &mut NodeCtx<'_, u32>, _from: usize, msg: u32) {
            self.received.push(msg);
            if msg > 0 {
                ctx.send((ctx.me + 1) % self.n_nodes, msg - 1);
            }
        }
    }

    fn relay_net(n: usize) -> SimNet<u32, ConstantLatency> {
        let nodes: Vec<Box<dyn Node<u32>>> = (0..n)
            .map(|_| {
                Box::new(RelayNode {
                    received: Vec::new(),
                    n_nodes: n,
                }) as Box<dyn Node<u32>>
            })
            .collect();
        SimNet::new(nodes, ConstantLatency(10))
    }

    #[test]
    fn relays_until_counter_exhausts() {
        let mut net = relay_net(3);
        net.inject(0, 0, 5);
        let steps = net.run(1000);
        // 6 deliveries: 5,4,3,2,1,0.
        assert_eq!(steps, 6);
        assert_eq!(net.stats().delivered, 6);
        assert_eq!(net.stats().sent, 6);
        // Virtual time advanced by 6 hops × 10 µs.
        assert_eq!(net.now(), 60);
    }

    #[test]
    fn run_respects_step_budget() {
        let mut net = relay_net(2);
        net.inject(0, 0, 100);
        let steps = net.run(3);
        assert_eq!(steps, 3);
        assert!(net.stats().delivered == 3);
    }

    #[test]
    fn deterministic_with_seeded_latency() {
        let run = || {
            let nodes: Vec<Box<dyn Node<u32>>> = (0..4)
                .map(|_| {
                    Box::new(RelayNode {
                        received: Vec::new(),
                        n_nodes: 4,
                    }) as Box<dyn Node<u32>>
                })
                .collect();
            let mut net = SimNet::new(nodes, UniformLatency::new(5, 50, 99));
            net.inject(0, 0, 20);
            net.run(u64::MAX);
            net.now()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inject_validates_destination() {
        let mut net = relay_net(2);
        net.inject(0, 7, 1);
    }

    #[test]
    fn step_on_empty_queue_is_false() {
        let mut net = relay_net(1);
        assert!(!net.step());
    }

    #[test]
    fn meter_accumulates_bytes() {
        let mut net = relay_net(2);
        net.set_meter(|_| 8);
        net.inject(0, 0, 3);
        net.run(u64::MAX);
        // 4 messages (3,2,1,0) × 8 bytes.
        assert_eq!(net.stats().bytes, 32);
    }

    #[test]
    fn no_meter_counts_zero_bytes() {
        let mut net = relay_net(2);
        net.inject(0, 0, 3);
        net.run(u64::MAX);
        assert_eq!(net.stats().bytes, 0);
    }

    #[test]
    fn lossy_transport_drops_messages() {
        let mut net = relay_net(2);
        net.set_loss(1.0, 1); // drop everything
        net.inject(0, 0, 5);
        assert_eq!(net.stats().dropped, 1);
        assert_eq!(net.stats().sent, 1, "a dropped attempt still counts");
        assert_eq!(net.run(100), 0);
        assert_eq!(net.stats().delivered, 0);
        assert!(net.stats().is_conserved());
    }

    #[test]
    fn partial_loss_still_makes_progress() {
        let mut net = relay_net(2);
        net.set_loss(0.3, 42);
        for _ in 0..50 {
            net.inject(0, 0, 10);
        }
        net.run(u64::MAX);
        let s = net.stats();
        assert!(s.dropped > 0, "some messages must drop at 30% loss");
        assert!(s.delivered > 0, "some messages must get through");
        assert_eq!(s.queued, 0, "queue drained");
        assert_eq!(s.sent, s.delivered + s.dropped);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        use crate::fault::FaultPlan;
        let mut net = relay_net(2);
        net.set_faults(FaultPlan::none().with_duplicate(1.0), 3);
        net.inject(0, 0, 0); // payload 0: delivered, no relay
        net.run(u64::MAX);
        let s = net.stats();
        assert_eq!(s.delivered, 2, "one injection, two copies");
        assert_eq!(s.sent, 2);
        assert!(s.is_conserved());
        assert_eq!(net.fault_injector().unwrap().duplicated(), 1);
    }

    #[test]
    fn crashed_destination_loses_in_flight_messages() {
        use crate::fault::FaultPlan;
        let mut net = relay_net(2);
        // Node 1 crashes at t=15; constant latency is 10, so a message
        // sent at t=10 (in flight at the crash) is lost on arrival.
        net.set_faults(FaultPlan::none().with_crash(1, 15), 1);
        net.inject(0, 0, 3); // 0 relays 2 to node 1 at t=10, arriving t=20
        net.run(u64::MAX);
        let s = net.stats();
        assert!(s.dropped >= 1, "in-flight message to crashed node lost");
        assert!(s.is_conserved());
    }

    #[test]
    fn partition_window_severs_and_heals() {
        use crate::fault::FaultPlan;
        let mut net = relay_net(2);
        // Islands {0} and {1}, open over [0, 100); latency is 10.
        net.set_faults(
            FaultPlan::none().with_partition(vec![vec![0], vec![1]], 0, 100),
            1,
        );
        net.inject(0, 1, 0); // cross-island during the window: lost
        net.inject(0, 0, 0); // island-internal: delivered
        net.run(u64::MAX);
        let s = net.stats().clone();
        assert_eq!(s.partitioned, 1);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.delivered, 1);
        assert!(s.is_conserved());
        // Advance virtual time past the heal instant with island-internal
        // traffic, then the severed link works again.
        while net.now() < 100 {
            net.inject(0, 0, 0);
            net.run(u64::MAX);
        }
        let delivered_before = net.stats().delivered;
        net.inject(0, 1, 0);
        net.run(u64::MAX);
        assert_eq!(net.stats().delivered, delivered_before + 1);
        assert_eq!(net.stats().partitioned, 1, "no loss after heal");
        assert!(net.stats().is_conserved());
    }

    #[test]
    fn in_flight_message_lost_when_window_opens() {
        use crate::fault::FaultPlan;
        let mut net = relay_net(2);
        // Window opens at t=5; the message is sent at t=0 with latency 10,
        // so it is in flight when the boundary comes up and must not cross.
        net.set_faults(
            FaultPlan::none().with_partition(vec![vec![0], vec![1]], 5, 1000),
            1,
        );
        net.inject(0, 1, 0);
        net.run(u64::MAX);
        let s = net.stats();
        assert_eq!(s.delivered, 0);
        assert_eq!(s.partitioned, 1);
        assert!(s.is_conserved());
        assert_eq!(net.fault_injector().unwrap().partitioned(), 1);
    }

    #[test]
    fn slow_window_multiplies_latency_and_counts() {
        use crate::fault::FaultPlan;
        let mut net = relay_net(2);
        // Node 1 is 10× slow over [0, 1000); constant latency is 10.
        net.set_faults(FaultPlan::none().with_slow(vec![1], 10, 0, 1000), 1);
        net.inject(0, 1, 0); // delivered at 10 × 10 = 100
        net.run(u64::MAX);
        let s = net.stats().clone();
        assert_eq!(net.now(), 100, "latency multiplied by the slow factor");
        assert_eq!(s.delivered, 1, "slow is not loss");
        assert_eq!(s.slowed, 1);
        assert!(s.is_conserved(), "slowed never enters the ledger identity");
        assert_eq!(net.fault_injector().unwrap().slowed(), 1);
        // After the window closes the node serves at model speed again.
        while net.now() < 1000 {
            net.inject(0, 0, 0);
            net.run(u64::MAX);
        }
        let t0 = net.now();
        net.inject(0, 1, 0);
        net.run(u64::MAX);
        assert_eq!(net.now(), t0 + 10, "back to model latency after heal");
        assert_eq!(net.stats().slowed, 1, "no new slowed copies after heal");
    }

    #[test]
    fn pause_window_defers_delivery() {
        use crate::fault::FaultPlan;
        let mut net = relay_net(2);
        net.set_faults(FaultPlan::none().with_pause(0, 0, 500), 1);
        net.inject(1, 0, 0);
        net.run(u64::MAX);
        // Latency 10 + deferred to the pause end (500).
        assert!(
            net.now() >= 500,
            "delivery at {} ignored the pause",
            net.now()
        );
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn mixed_fault_plan_conserves_accounting() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::none()
            .with_drop(0.2)
            .with_duplicate(0.2)
            .with_delay(0.3, 5, 50)
            .with_crash(1, 400);
        let mut net = relay_net(3);
        net.set_faults(plan, 77);
        for i in 0..40 {
            net.inject(0, i % 3, 6);
        }
        net.run(u64::MAX);
        let s = net.stats();
        assert_eq!(s.queued, 0);
        assert!(
            s.is_conserved(),
            "sent {} != delivered {} + dropped {}",
            s.sent,
            s.delivered,
            s.dropped
        );
        assert!(s.dropped > 0 && s.delivered > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn loss_probability_validated() {
        let mut net = relay_net(1);
        net.set_loss(1.5, 0);
    }

    #[test]
    fn stats_count_queued_but_undelivered() {
        let mut net = relay_net(2);
        net.inject(0, 0, 1);
        net.inject(0, 1, 0);
        assert_eq!(net.stats().sent, 2);
        assert_eq!(net.stats().delivered, 0);
        assert_eq!(net.stats().queued, 2);
        assert!(net.stats().is_conserved());
        net.run(u64::MAX);
        assert_eq!(net.stats().delivered, 3); // two injected + one relay
        assert_eq!(net.stats().queued, 0);
    }
}
