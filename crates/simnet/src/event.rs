//! Virtual time, the event queue, and latency models.

use ars_common::DetRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in microseconds.
pub type SimTime = u64;

/// Produces a one-way delay for a message between two peers.
pub trait LatencyModel {
    /// Latency in virtual microseconds for a message `from → to`.
    fn latency(&mut self, from: usize, to: usize) -> SimTime;
}

/// Every message takes the same time.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLatency(pub SimTime);

impl LatencyModel for ConstantLatency {
    fn latency(&mut self, _from: usize, _to: usize) -> SimTime {
        self.0
    }
}

/// Latency drawn uniformly from `[lo, hi]` — a crude but standard stand-in
/// for WAN jitter. Deterministic under its seed.
#[derive(Debug, Clone)]
pub struct UniformLatency {
    lo: SimTime,
    hi: SimTime,
    rng: DetRng,
}

impl UniformLatency {
    /// Create a model with delays in `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: SimTime, hi: SimTime, seed: u64) -> UniformLatency {
        assert!(lo <= hi, "invalid latency interval");
        UniformLatency {
            lo,
            hi,
            rng: DetRng::new(seed),
        }
    }
}

impl LatencyModel for UniformLatency {
    fn latency(&mut self, _from: usize, _to: usize) -> SimTime {
        self.lo + self.rng.gen_range_u64(self.hi - self.lo + 1)
    }
}

/// One scheduled delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Delivery (virtual) time.
    pub at: SimTime,
    /// Tie-break sequence number: FIFO among equal-time deliveries.
    pub seq: u64,
    /// Sending peer.
    pub from: usize,
    /// Receiving peer.
    pub to: usize,
    /// Payload.
    pub msg: M,
}

/// A virtual-time-ordered delivery queue (min-heap on `(at, seq)`).
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Reverse<HeapEntry<M>>>,
    next_seq: u64,
}

#[derive(Debug)]
struct HeapEntry<M>(Delivery<M>);

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<M> Eq for HeapEntry<M> {}
impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.at, self.0.seq).cmp(&(other.0.at, other.0.seq))
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> EventQueue<M> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule a delivery at absolute virtual time `at`.
    pub fn schedule(&mut self, at: SimTime, from: usize, to: usize, msg: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(HeapEntry(Delivery {
            at,
            seq,
            from,
            to,
            msg,
        })));
    }

    /// Pop the earliest delivery.
    pub fn pop(&mut self) -> Option<Delivery<M>> {
        self.heap.pop().map(|Reverse(HeapEntry(d))| d)
    }

    /// Number of pending deliveries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 0, 1, "c");
        q.schedule(10, 0, 1, "a");
        q.schedule(20, 0, 1, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().msg, "a");
        assert_eq!(q.pop().unwrap().msg, "b");
        assert_eq!(q.pop().unwrap().msg, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5, 0, 1, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().msg, i);
        }
    }

    #[test]
    fn constant_latency() {
        let mut m = ConstantLatency(42);
        assert_eq!(m.latency(0, 1), 42);
        assert_eq!(m.latency(5, 9), 42);
    }

    #[test]
    fn uniform_latency_in_bounds_and_deterministic() {
        let mut a = UniformLatency::new(10, 20, 7);
        let mut b = UniformLatency::new(10, 20, 7);
        for _ in 0..100 {
            let la = a.latency(0, 1);
            assert!((10..=20).contains(&la));
            assert_eq!(la, b.latency(0, 1));
        }
    }

    #[test]
    #[should_panic(expected = "invalid latency interval")]
    fn uniform_latency_rejects_reversed() {
        UniformLatency::new(20, 10, 0);
    }

    #[test]
    fn delivery_carries_endpoints() {
        let mut q = EventQueue::new();
        q.schedule(1, 3, 9, ());
        let d = q.pop().unwrap();
        assert_eq!((d.from, d.to, d.at), (3, 9, 1));
    }
}
