//! Deterministic fault injection for both network runtimes.
//!
//! A [`FaultPlan`] describes how a run's transport misbehaves — message
//! drop, duplication, and extra delay (globally or per link), plus node
//! crash and pause windows — and a [`FaultInjector`] executes the plan
//! from a seeded [`DetRng`], so every fault a run experiences is a pure
//! function of `(plan, seed)`. The same injector drives the discrete-event
//! simulator ([`crate::sim::SimNet::set_faults`]) and the threaded runtime
//! ([`crate::threaded::ThreadedNet::spawn_with_faults`]); experiments and
//! the resilience test-suite replay identical fault schedules on either.
//!
//! Semantics, decided at *send* time (deterministic, independent of
//! delivery interleaving):
//!
//! * **crash**: a node crashed at or before the send time neither sends
//!   nor receives — the message is dropped;
//! * **partition**: while a [`PartitionWindow`] is open, a message whose
//!   endpoints sit on different islands is dropped, counted in its own
//!   `partitioned` ledger column (island-internal traffic is untouched);
//! * **pause**: a message to a node inside a pause window is deferred to
//!   the window's end (a stalled-but-alive process), not dropped;
//! * **slow**: while a [`SlowWindow`] is open, a message touching a slowed
//!   endpoint is delivered at a multiple of the model latency — a gray
//!   failure (slow-but-alive node), counted in its own `slowed` column;
//! * **drop**: the message vanishes, counted in `dropped`;
//! * **duplicate**: one extra copy is scheduled (each copy counts as sent
//!   and is then independently delayed);
//! * **delay**: a uniform extra latency from the configured window.

use crate::event::SimTime;
use ars_common::DetRng;

/// A node crash: from `at` (inclusive) onward the node is gone for good.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashing node (runtime peer index).
    pub node: usize,
    /// Virtual time of the crash.
    pub at: SimTime,
}

/// A node pause: within `[from, until)` the node is unresponsive;
/// messages addressed to it are deferred to `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseWindow {
    /// The pausing node (runtime peer index).
    pub node: usize,
    /// Pause start (inclusive).
    pub from: SimTime,
    /// Pause end (exclusive) — deferred messages land here.
    pub until: SimTime,
}

/// A gray failure: within `[from, until)` the listed nodes are *slow* —
/// alive, responsive, never dropping traffic, but serving every message
/// at `factor ×` the model latency. This is the fault class crash/pause
/// windows cannot express: an overloaded or degraded node that silently
/// inflates tail latency without tripping any failure path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowWindow {
    /// The slowed nodes (runtime peer indices).
    pub nodes: Vec<usize>,
    /// Latency multiplier (≥ 2; 1 would be a no-op).
    pub factor: u64,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl SlowWindow {
    /// True if the window is open at `now`.
    pub fn is_open(&self, now: SimTime) -> bool {
        now >= self.from && now < self.until
    }

    /// True if this window slows `node` at `now`.
    pub fn slows(&self, node: usize, now: SimTime) -> bool {
        self.is_open(now) && self.nodes.contains(&node)
    }
}

/// A scheduled network partition: within `[from, until)` the nodes listed
/// in `groups` are split into islands and cross-island traffic is dropped.
///
/// Nodes not listed in any group are treated as members of island 0 (the
/// majority side), so a window only needs to enumerate the minority
/// islands it carves off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// The islands: ≥2 disjoint, non-empty groups of node indices.
    pub groups: Vec<Vec<usize>>,
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Partition end (exclusive) — the heal instant.
    pub until: SimTime,
}

impl PartitionWindow {
    /// Island index of `node` under this window (unlisted nodes belong to
    /// island 0).
    pub fn island_of(&self, node: usize) -> usize {
        self.groups
            .iter()
            .position(|g| g.contains(&node))
            .unwrap_or(0)
    }

    /// True if the window is open at `now`.
    pub fn is_open(&self, now: SimTime) -> bool {
        now >= self.from && now < self.until
    }

    /// True if this window severs the directed link `from → to` at `now`.
    pub fn severs(&self, from: usize, to: usize, now: SimTime) -> bool {
        self.is_open(now) && self.island_of(from) != self.island_of(to)
    }
}

/// A declarative description of how a run's transport misbehaves.
///
/// Built with the `with_*` methods; executed by a [`FaultInjector`]. The
/// default plan injects nothing (a perfect network).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Per-message drop probability (all links unless overridden).
    pub drop_p: f64,
    /// Per-message duplication probability.
    pub duplicate_p: f64,
    /// Per-message probability of extra delay.
    pub delay_p: f64,
    /// Extra delay window `[lo, hi]` applied when `delay_p` fires.
    pub delay_range: (SimTime, SimTime),
    /// Per-link drop-probability overrides `(from, to, p)`.
    pub link_drop: Vec<(usize, usize, f64)>,
    /// Permanent node crashes.
    pub crashes: Vec<CrashWindow>,
    /// Temporary node pauses.
    pub pauses: Vec<PauseWindow>,
    /// Scheduled network partitions (cross-island traffic is dropped
    /// while a window is open).
    pub partitions: Vec<PartitionWindow>,
    /// Gray failures: slow-but-alive nodes whose traffic is delivered at a
    /// multiple of the model latency while a window is open.
    pub slow: Vec<SlowWindow>,
    /// Storage fault: probability a crash leaves a torn (partial) tail
    /// write on a peer's durable log instead of a clean truncation.
    /// Executed by `ars-store`'s simulated disks, not by the transport
    /// injector — the plan is the single declarative fault surface.
    pub torn_write_p: f64,
    /// Storage fault: probability a crash flips one bit in the tail of
    /// a peer's durable log image (a corrupted sector).
    pub bit_flip_p: f64,
}

fn check_p(p: f64) {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True if this plan can never affect a message.
    pub fn is_benign(&self) -> bool {
        self.drop_p == 0.0
            && self.duplicate_p == 0.0
            && self.delay_p == 0.0
            && self.link_drop.is_empty()
            && self.crashes.is_empty()
            && self.pauses.is_empty()
            && self.partitions.is_empty()
            && self.slow.is_empty()
    }

    /// Drop every message independently with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn with_drop(mut self, p: f64) -> FaultPlan {
        check_p(p);
        self.drop_p = p;
        self
    }

    /// Duplicate every message independently with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn with_duplicate(mut self, p: f64) -> FaultPlan {
        check_p(p);
        self.duplicate_p = p;
        self
    }

    /// With probability `p`, add a uniform extra delay from `[lo, hi]`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1` and `lo ≤ hi`.
    pub fn with_delay(mut self, p: f64, lo: SimTime, hi: SimTime) -> FaultPlan {
        check_p(p);
        assert!(lo <= hi, "invalid delay interval");
        self.delay_p = p;
        self.delay_range = (lo, hi);
        self
    }

    /// Override the drop probability of the directed link `from → to`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn with_link_drop(mut self, from: usize, to: usize, p: f64) -> FaultPlan {
        check_p(p);
        self.link_drop.push((from, to, p));
        self
    }

    /// Crash `node` permanently at virtual time `at`.
    pub fn with_crash(mut self, node: usize, at: SimTime) -> FaultPlan {
        self.crashes.push(CrashWindow { node, at });
        self
    }

    /// Pause `node` over `[from, until)`.
    ///
    /// # Panics
    /// Panics unless `from < until`.
    pub fn with_pause(mut self, node: usize, from: SimTime, until: SimTime) -> FaultPlan {
        assert!(from < until, "empty pause window");
        self.pauses.push(PauseWindow { node, from, until });
        self
    }

    /// Split the network into `groups` islands over `[from, until)`.
    /// Nodes not listed in any group belong to island 0, so minority
    /// islands can be declared without enumerating the majority.
    ///
    /// # Panics
    /// Panics unless `from < until`, there are ≥2 groups, every group is
    /// non-empty, and no node appears in two groups.
    pub fn with_partition(
        mut self,
        groups: Vec<Vec<usize>>,
        from: SimTime,
        until: SimTime,
    ) -> FaultPlan {
        assert!(from < until, "empty partition window");
        assert!(groups.len() >= 2, "a partition needs at least two islands");
        assert!(
            groups.iter().all(|g| !g.is_empty()),
            "empty partition island"
        );
        let mut seen = std::collections::BTreeSet::new();
        for g in &groups {
            for &n in g {
                assert!(seen.insert(n), "node {n} listed in two islands");
            }
        }
        self.partitions.push(PartitionWindow {
            groups,
            from,
            until,
        });
        self
    }

    /// Slow every node in `nodes` by `factor ×` over `[from, until)`: a
    /// gray failure. Messages touching a slowed endpoint are still
    /// delivered (never dropped), but their model latency is multiplied,
    /// and each such delivery is counted in the `slowed` ledger column.
    ///
    /// # Panics
    /// Panics unless `from < until`, `nodes` is non-empty, and
    /// `factor ≥ 2` (a factor of 1 would be an invisible no-op).
    pub fn with_slow(
        mut self,
        nodes: Vec<usize>,
        factor: u64,
        from: SimTime,
        until: SimTime,
    ) -> FaultPlan {
        assert!(from < until, "empty slow window");
        assert!(!nodes.is_empty(), "empty slow node set");
        assert!(factor >= 2, "slow factor must be at least 2");
        self.slow.push(SlowWindow {
            nodes,
            factor,
            from,
            until,
        });
        self
    }

    /// Declare the storage-fault surface crash-restart runs execute on
    /// their simulated disks: `torn_write_p` per-crash torn tail writes,
    /// `bit_flip_p` per-crash tail bit flips. Un-synced suffixes are
    /// always lost on crash regardless of these probabilities.
    ///
    /// # Panics
    /// Panics unless both probabilities are in `[0, 1]`.
    pub fn with_storage_faults(mut self, torn_write_p: f64, bit_flip_p: f64) -> FaultPlan {
        check_p(torn_write_p);
        check_p(bit_flip_p);
        self.torn_write_p = torn_write_p;
        self.bit_flip_p = bit_flip_p;
        self
    }

    /// True if this plan declares any storage fault (consumed by the
    /// durable-store layer; [`Self::is_benign`] stays transport-only).
    pub fn has_storage_faults(&self) -> bool {
        self.torn_write_p > 0.0 || self.bit_flip_p > 0.0
    }

    fn drop_p_for(&self, from: usize, to: usize) -> f64 {
        self.link_drop
            .iter()
            .rev() // last override wins
            .find(|&&(f, t, _)| f == from && t == to)
            .map(|&(_, _, p)| p)
            .unwrap_or(self.drop_p)
    }
}

/// What the injector decided for one sent message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// The message is gone (loss, or an endpoint is crashed).
    Drop,
    /// The message crossed an open partition boundary and is gone —
    /// accounted in its own `partitioned` ledger column, not `dropped`.
    Partitioned,
    /// Deliver one copy per entry; each entry is the *extra* delay (beyond
    /// the latency model) to add to that copy. `vec![0]` is a clean send.
    Deliver(Vec<SimTime>),
}

impl FaultAction {
    /// Number of copies this action schedules (0 when dropped).
    pub fn copies(&self) -> usize {
        match self {
            FaultAction::Drop | FaultAction::Partitioned => 0,
            FaultAction::Deliver(extra) => extra.len(),
        }
    }
}

/// Executes a [`FaultPlan`] deterministically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: DetRng,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
    partitioned: u64,
    slowed: u64,
}

impl FaultInjector {
    /// An injector running `plan` with randomness seeded by `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> FaultInjector {
        FaultInjector {
            plan,
            rng: DetRng::new(seed),
            dropped: 0,
            duplicated: 0,
            delayed: 0,
            partitioned: 0,
            slowed: 0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Messages the injector has dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages the injector has duplicated.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Messages the injector has delayed (beyond the latency model).
    pub fn delayed(&self) -> u64 {
        self.delayed
    }

    /// Messages lost to an open partition window.
    pub fn partitioned(&self) -> u64 {
        self.partitioned
    }

    /// Deliveries inflated by an open slow window (gray failures).
    pub fn slowed(&self) -> u64 {
        self.slowed
    }

    /// True if `node` has crashed at or before `now`.
    pub fn is_crashed(&self, node: usize, now: SimTime) -> bool {
        self.plan
            .crashes
            .iter()
            .any(|c| c.node == node && now >= c.at)
    }

    /// Extra delay a message arriving at `to` around `now` suffers from an
    /// active pause window (0 when none).
    fn pause_delay(&self, to: usize, now: SimTime) -> SimTime {
        self.plan
            .pauses
            .iter()
            .filter(|p| p.node == to && now >= p.from && now < p.until)
            .map(|p| p.until - now)
            .max()
            .unwrap_or(0)
    }

    /// True if an open partition window severs the link `from → to` at
    /// `now` (used at send time here, and at arrival time by the
    /// simulator for messages in flight when a window opens).
    pub fn is_partitioned(&self, from: usize, to: usize, now: SimTime) -> bool {
        self.plan.partitions.iter().any(|w| w.severs(from, to, now))
    }

    /// Record a partition loss detected outside `on_send` (a message
    /// already in flight when the window opened, lost on arrival).
    pub fn note_partitioned(&mut self) {
        self.partitioned += 1;
    }

    /// Latency multiplier for a message `from → to` at `now`: the maximum
    /// factor over every open slow window touching either endpoint, 1 when
    /// none. Like the crash and partition checks this consumes no
    /// randomness, so adding slow windows to a plan never perturbs the
    /// drop/duplicate/delay stream (see `slow_consumes_no_randomness`).
    pub fn slow_factor(&self, from: usize, to: usize, now: SimTime) -> u64 {
        self.plan
            .slow
            .iter()
            .filter(|w| w.slows(from, now) || w.slows(to, now))
            .map(|w| w.factor)
            .max()
            .unwrap_or(1)
    }

    /// Record a delivery whose latency was inflated by a slow window (the
    /// runtimes call this once per delivered copy they scaled).
    pub fn note_slowed(&mut self) {
        self.slowed += 1;
    }

    /// Decide the fate of one message sent `from → to` at virtual time
    /// `now`. Consumes randomness in a fixed order (drop, duplicate,
    /// per-copy delay) so runs replay identically; crash and partition
    /// checks consume none, so plans replay bit-identically outside their
    /// windows.
    pub fn on_send(&mut self, from: usize, to: usize, now: SimTime) -> FaultAction {
        if self.is_crashed(from, now) || self.is_crashed(to, now) {
            self.dropped += 1;
            return FaultAction::Drop;
        }
        if self.is_partitioned(from, to, now) {
            self.partitioned += 1;
            return FaultAction::Partitioned;
        }
        let p = self.plan.drop_p_for(from, to);
        if p > 0.0 && self.rng.gen_bool(p) {
            self.dropped += 1;
            return FaultAction::Drop;
        }
        let copies = if self.plan.duplicate_p > 0.0 && self.rng.gen_bool(self.plan.duplicate_p) {
            self.duplicated += 1;
            2
        } else {
            1
        };
        let pause = self.pause_delay(to, now);
        let mut extra = Vec::with_capacity(copies);
        for _ in 0..copies {
            let mut d = pause;
            if self.plan.delay_p > 0.0 && self.rng.gen_bool(self.plan.delay_p) {
                let (lo, hi) = self.plan.delay_range;
                d += lo + self.rng.gen_range_u64(hi - lo + 1);
                self.delayed += 1;
            }
            extra.push(d);
        }
        FaultAction::Deliver(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_plan_delivers_one_clean_copy() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 1);
        assert!(inj.plan().is_benign());
        for t in [0, 10, 1000] {
            assert_eq!(inj.on_send(0, 1, t), FaultAction::Deliver(vec![0]));
        }
        assert_eq!(inj.dropped(), 0);
    }

    #[test]
    fn full_drop_loses_everything() {
        let mut inj = FaultInjector::new(FaultPlan::none().with_drop(1.0), 7);
        for _ in 0..20 {
            assert_eq!(inj.on_send(0, 1, 0), FaultAction::Drop);
        }
        assert_eq!(inj.dropped(), 20);
    }

    #[test]
    fn duplication_schedules_two_copies() {
        let mut inj = FaultInjector::new(FaultPlan::none().with_duplicate(1.0), 3);
        let act = inj.on_send(0, 1, 0);
        assert_eq!(act.copies(), 2);
        assert_eq!(inj.duplicated(), 1);
    }

    #[test]
    fn crash_blackholes_both_directions() {
        let plan = FaultPlan::none().with_crash(2, 100);
        let mut inj = FaultInjector::new(plan, 1);
        // Before the crash: fine.
        assert_eq!(inj.on_send(2, 0, 99).copies(), 1);
        assert_eq!(inj.on_send(0, 2, 99).copies(), 1);
        // From the crash instant on: dropped, either direction.
        assert_eq!(inj.on_send(2, 0, 100), FaultAction::Drop);
        assert_eq!(inj.on_send(0, 2, 5000), FaultAction::Drop);
        assert_eq!(inj.on_send(0, 1, 5000).copies(), 1);
    }

    #[test]
    fn pause_defers_to_window_end() {
        let plan = FaultPlan::none().with_pause(1, 50, 80);
        let mut inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.on_send(0, 1, 40), FaultAction::Deliver(vec![0]));
        assert_eq!(inj.on_send(0, 1, 60), FaultAction::Deliver(vec![20]));
        assert_eq!(inj.on_send(0, 1, 80), FaultAction::Deliver(vec![0]));
    }

    #[test]
    fn link_override_beats_global() {
        let plan = FaultPlan::none().with_drop(0.0).with_link_drop(3, 4, 1.0);
        let mut inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.on_send(3, 4, 0), FaultAction::Drop);
        assert_eq!(inj.on_send(4, 3, 0).copies(), 1); // directed
        assert_eq!(inj.on_send(0, 1, 0).copies(), 1);
    }

    #[test]
    fn delay_window_respected_and_deterministic() {
        let plan = FaultPlan::none().with_delay(1.0, 10, 30);
        let mut a = FaultInjector::new(plan.clone(), 9);
        let mut b = FaultInjector::new(plan, 9);
        for _ in 0..50 {
            let (x, y) = (a.on_send(0, 1, 0), b.on_send(0, 1, 0));
            assert_eq!(x, y);
            let FaultAction::Deliver(extra) = x else {
                panic!("delay plan never drops");
            };
            assert!((10..=30).contains(&extra[0]), "delay {} off", extra[0]);
        }
        assert_eq!(a.delayed(), 50);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_probability_rejected() {
        let _ = FaultPlan::none().with_drop(1.5);
    }

    #[test]
    #[should_panic(expected = "empty pause window")]
    fn bad_pause_rejected() {
        let _ = FaultPlan::none().with_pause(0, 10, 10);
    }

    #[test]
    fn partition_drops_cross_island_only_while_open() {
        let plan = FaultPlan::none().with_partition(vec![vec![0, 1], vec![2, 3]], 100, 200);
        assert!(!plan.is_benign(), "a partition plan is not benign");
        let mut inj = FaultInjector::new(plan, 1);
        // Before the window: everything flows.
        assert_eq!(inj.on_send(0, 2, 99).copies(), 1);
        // Open window: cross-island severed both ways, intra-island fine.
        assert_eq!(inj.on_send(0, 2, 100), FaultAction::Partitioned);
        assert_eq!(inj.on_send(3, 1, 150), FaultAction::Partitioned);
        assert_eq!(inj.on_send(0, 1, 150).copies(), 1);
        assert_eq!(inj.on_send(2, 3, 150).copies(), 1);
        // Healed: flows again.
        assert_eq!(inj.on_send(0, 2, 200).copies(), 1);
        assert_eq!(inj.partitioned(), 2);
        assert_eq!(inj.dropped(), 0, "partition losses have their own column");
    }

    #[test]
    fn unlisted_nodes_join_island_zero() {
        // Only the minority island is enumerated; node 7 is unlisted and
        // therefore sits with island 0.
        let plan = FaultPlan::none().with_partition(vec![vec![0], vec![5, 6]], 0, 10);
        let mut inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.on_send(7, 0, 5).copies(), 1);
        assert_eq!(inj.on_send(7, 5, 5), FaultAction::Partitioned);
    }

    #[test]
    fn partition_consumes_no_randomness() {
        // Identical drop-plans with and without a partition window must
        // make identical drop decisions outside the window.
        let base = FaultPlan::none().with_drop(0.5);
        let with_part = base
            .clone()
            .with_partition(vec![vec![0], vec![1]], 10_000, 10_001);
        let mut a = FaultInjector::new(base, 42);
        let mut b = FaultInjector::new(with_part, 42);
        for t in 0..200 {
            assert_eq!(a.on_send(0, 1, t), b.on_send(0, 1, t));
        }
    }

    #[test]
    fn slow_window_scales_only_inside_window() {
        let plan = FaultPlan::none().with_slow(vec![2], 10, 100, 200);
        assert!(!plan.is_benign(), "a slow plan is not benign");
        let mut inj = FaultInjector::new(plan, 1);
        // Outside the window: unit factor.
        assert_eq!(inj.slow_factor(0, 2, 99), 1);
        assert_eq!(inj.slow_factor(0, 2, 200), 1);
        // Inside: either direction, both endpoints checked.
        assert_eq!(inj.slow_factor(0, 2, 100), 10);
        assert_eq!(inj.slow_factor(2, 0, 150), 10);
        // A link not touching the slow node is unaffected.
        assert_eq!(inj.slow_factor(0, 1, 150), 1);
        // Slowness never drops: the send decision is a clean delivery.
        assert_eq!(inj.on_send(0, 2, 150), FaultAction::Deliver(vec![0]));
    }

    #[test]
    fn overlapping_slow_windows_take_max_factor() {
        let plan =
            FaultPlan::none()
                .with_slow(vec![1], 4, 0, 100)
                .with_slow(vec![1, 2], 10, 50, 100);
        let inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.slow_factor(0, 1, 10), 4);
        assert_eq!(inj.slow_factor(0, 1, 60), 10, "max of open windows");
        assert_eq!(inj.slow_factor(0, 2, 10), 1);
    }

    #[test]
    fn slow_consumes_no_randomness() {
        // Identical drop-plans with and without slow windows must make
        // identical drop decisions — the gray-fault check is RNG-free.
        let base = FaultPlan::none().with_drop(0.5);
        let with_slow = base.clone().with_slow(vec![0, 1], 10, 0, 1_000);
        let mut a = FaultInjector::new(base, 42);
        let mut b = FaultInjector::new(with_slow, 42);
        for t in 0..200 {
            assert_eq!(a.on_send(0, 1, t), b.on_send(0, 1, t));
        }
    }

    #[test]
    #[should_panic(expected = "slow factor must be at least 2")]
    fn unit_slow_factor_rejected() {
        let _ = FaultPlan::none().with_slow(vec![0], 1, 0, 10);
    }

    #[test]
    #[should_panic(expected = "empty slow window")]
    fn empty_slow_window_rejected() {
        let _ = FaultPlan::none().with_slow(vec![0], 2, 10, 10);
    }

    #[test]
    #[should_panic(expected = "two islands")]
    fn single_island_partition_rejected() {
        let _ = FaultPlan::none().with_partition(vec![vec![0, 1]], 0, 10);
    }

    #[test]
    #[should_panic(expected = "listed in two islands")]
    fn overlapping_islands_rejected() {
        let _ = FaultPlan::none().with_partition(vec![vec![0, 1], vec![1, 2]], 0, 10);
    }

    #[test]
    fn storage_faults_declared_but_transport_benign() {
        let plan = FaultPlan::none().with_storage_faults(0.4, 0.1);
        assert!(plan.has_storage_faults());
        assert!(
            plan.is_benign(),
            "storage faults never touch the transport injector"
        );
        assert!(!FaultPlan::none().has_storage_faults());
        let mut inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.on_send(0, 1, 0), FaultAction::Deliver(vec![0]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_storage_probability_rejected() {
        let _ = FaultPlan::none().with_storage_faults(0.0, 1.1);
    }
}
