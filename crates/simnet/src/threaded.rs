//! Threaded runtime: every peer is an OS thread, messages travel over
//! crossbeam channels.
//!
//! The same [`crate::sim::Node`] implementations that run under the
//! deterministic simulator run here concurrently, which is how the
//! repository demonstrates the protocol is not an artifact of simulation
//! ordering. Peers receive envelopes; a stop control message shuts a peer
//! down. Delivery counts are tracked with `parking_lot`-guarded state so a
//! test can assert quiescence.

use crate::sim::{Node, NodeCtx};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What a peer thread receives.
#[derive(Debug)]
enum Envelope<M> {
    /// A protocol message from `from`.
    Msg { from: usize, msg: M },
    /// Shut the peer down; the node state is sent back through the channel.
    Stop,
}

/// Shared counters for quiescence detection.
#[derive(Debug, Default)]
struct NetCounters {
    sent: AtomicU64,
    delivered: AtomicU64,
}

/// A running threaded network.
pub struct ThreadedNet<M: Send + 'static> {
    senders: Vec<Sender<Envelope<M>>>,
    handles: Vec<JoinHandle<Box<dyn Node<M> + Send>>>,
    counters: Arc<NetCounters>,
}

impl<M: Send + 'static> ThreadedNet<M> {
    /// Spawn one thread per node. Each thread loops on its mailbox,
    /// dispatching messages to the node's `on_message` with a context whose
    /// sends go straight into the other peers' mailboxes.
    pub fn spawn(nodes: Vec<Box<dyn Node<M> + Send>>) -> ThreadedNet<M> {
        let n = nodes.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Envelope<M>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let counters = Arc::new(NetCounters::default());
        // Logical clock for NodeCtx::now under threads: a coarse global
        // delivery counter (virtual time has no wall meaning here).
        let clock = Arc::new(AtomicU64::new(0));
        let handles = nodes
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(me, (mut node, rx))| {
                let senders = senders.clone();
                let counters = counters.clone();
                let clock = clock.clone();
                std::thread::Builder::new()
                    .name(format!("peer-{me}"))
                    .spawn(move || {
                        while let Ok(env) = rx.recv() {
                            match env {
                                Envelope::Stop => break,
                                Envelope::Msg { from, msg } => {
                                    counters.delivered.fetch_add(1, Ordering::Relaxed);
                                    let now = clock.fetch_add(1, Ordering::Relaxed);
                                    let mut outbox = Vec::new();
                                    {
                                        let mut ctx = NodeCtx::for_runtime(me, now, &mut outbox);
                                        node.on_message(&mut ctx, from, msg);
                                    }
                                    for (to, m) in outbox {
                                        counters.sent.fetch_add(1, Ordering::Relaxed);
                                        // A send can only fail if the peer
                                        // already stopped; drop the message
                                        // like a dead TCP connection would.
                                        let _ =
                                            senders[to].send(Envelope::Msg { from: me, msg: m });
                                    }
                                }
                            }
                        }
                        node
                    })
                    .expect("failed to spawn peer thread")
            })
            .collect();
        ThreadedNet {
            senders,
            handles,
            counters,
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Inject a message from the outside world.
    ///
    /// # Panics
    /// Panics if `to` is out of range.
    pub fn inject(&self, from: usize, to: usize, msg: M) {
        self.counters.sent.fetch_add(1, Ordering::Relaxed);
        self.senders[to]
            .send(Envelope::Msg { from, msg })
            .expect("peer thread exited before shutdown");
    }

    /// Block until every sent message has been delivered and no handler is
    /// mid-flight (counters equal and stable). Returns false on timeout.
    pub fn await_quiescence(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut last = (u64::MAX, u64::MAX);
        loop {
            let sent = self.counters.sent.load(Ordering::SeqCst);
            let delivered = self.counters.delivered.load(Ordering::SeqCst);
            if sent == delivered && (sent, delivered) == last {
                return true;
            }
            last = (sent, delivered);
            if std::time::Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Stop all peers and return their node states.
    pub fn shutdown(self) -> Vec<Box<dyn Node<M> + Send>> {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Stop);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("peer thread panicked"))
            .collect()
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.counters.delivered.load(Ordering::Relaxed)
    }
}

/// Guard: keep `Mutex` in the dependency graph for shared result sinks used
/// by downstream crates' threaded tests.
pub type SharedSink<T> = Arc<Mutex<Vec<T>>>;

#[cfg(test)]
mod tests {
    use super::*;

    struct Accumulator {
        seen: Vec<u32>,
        n: usize,
    }

    impl Node<u32> for Accumulator {
        fn on_message(&mut self, ctx: &mut NodeCtx<'_, u32>, _from: usize, msg: u32) {
            self.seen.push(msg);
            if msg > 0 {
                ctx.send((ctx.me + 1) % self.n, msg - 1);
            }
        }
    }

    fn boxed(n: usize) -> Vec<Box<dyn Node<u32> + Send>> {
        (0..n)
            .map(|_| {
                Box::new(Accumulator {
                    seen: Vec::new(),
                    n,
                }) as Box<dyn Node<u32> + Send>
            })
            .collect()
    }

    #[test]
    fn relay_across_threads() {
        let net = ThreadedNet::spawn(boxed(4));
        net.inject(0, 0, 11);
        assert!(net.await_quiescence(std::time::Duration::from_secs(5)));
        assert_eq!(net.delivered(), 12);
        let _nodes = net.shutdown();
    }

    #[test]
    fn parallel_injections_all_delivered() {
        let net = ThreadedNet::spawn(boxed(8));
        for i in 0..50u32 {
            net.inject(0, (i % 8) as usize, 3);
        }
        assert!(net.await_quiescence(std::time::Duration::from_secs(5)));
        // 50 injected chains × 4 messages each.
        assert_eq!(net.delivered(), 200);
        net.shutdown();
    }

    #[test]
    fn shutdown_returns_states() {
        let net = ThreadedNet::spawn(boxed(2));
        net.inject(0, 0, 0);
        assert!(net.await_quiescence(std::time::Duration::from_secs(5)));
        let nodes = net.shutdown();
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn len_reports_peers() {
        let net = ThreadedNet::spawn(boxed(3));
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
        net.shutdown();
    }
}
