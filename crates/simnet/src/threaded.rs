//! Threaded runtime: every peer is an OS thread, messages travel over
//! crossbeam channels.
//!
//! The same [`crate::sim::Node`] implementations that run under the
//! deterministic simulator run here concurrently, which is how the
//! repository demonstrates the protocol is not an artifact of simulation
//! ordering. Peers receive envelopes; a stop control message shuts a peer
//! down. Delivery counts are tracked with `parking_lot`-guarded state so a
//! test can assert quiescence.

use crate::fault::{FaultAction, FaultInjector, FaultPlan};
use crate::sim::{Node, NodeCtx};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What a peer thread receives.
#[derive(Debug)]
enum Envelope<M> {
    /// A protocol message from `from`.
    Msg { from: usize, msg: M },
    /// Shut the peer down; the node state is sent back through the channel.
    Stop,
}

/// Shared counters for quiescence detection.
#[derive(Debug, Default)]
struct NetCounters {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    partitioned: AtomicU64,
    /// Copies that touched a slowed endpoint (gray failures). Informational
    /// — slowed copies are still delivered, so this never enters the
    /// quiescence identity.
    slowed: AtomicU64,
}

/// A running threaded network.
pub struct ThreadedNet<M: Send + 'static> {
    senders: Vec<Sender<Envelope<M>>>,
    handles: Vec<JoinHandle<Box<dyn Node<M> + Send>>>,
    counters: Arc<NetCounters>,
    faults: Option<Arc<Mutex<FaultInjector>>>,
}

/// Pass one send attempt through the (optional, shared) fault layer and
/// push the surviving copies into the destination mailbox. Every attempt
/// is accounted exactly once: `sent == delivered + dropped + partitioned`
/// at quiescence.
fn faulty_send<M: Clone + Send>(
    senders: &[Sender<Envelope<M>>],
    counters: &NetCounters,
    faults: &Option<Arc<Mutex<FaultInjector>>>,
    now: u64,
    from: usize,
    to: usize,
    msg: M,
) {
    let action = match faults {
        Some(inj) => inj.lock().on_send(from, to, now),
        None => FaultAction::Deliver(vec![0]),
    };
    match action {
        FaultAction::Drop => {
            counters.sent.fetch_add(1, Ordering::Relaxed);
            counters.dropped.fetch_add(1, Ordering::Relaxed);
        }
        FaultAction::Partitioned => {
            counters.sent.fetch_add(1, Ordering::Relaxed);
            counters.partitioned.fetch_add(1, Ordering::Relaxed);
        }
        FaultAction::Deliver(extras) => {
            // Extra delay has no wall-clock meaning here; each entry still
            // yields one copy, so duplication behaves identically to the
            // simulator. Slow windows likewise cannot stretch wall time,
            // but slowed copies are still counted so ledgers line up with
            // the simulator's.
            let factor = match faults {
                Some(inj) => inj.lock().slow_factor(from, to, now),
                None => 1,
            };
            for _ in extras {
                counters.sent.fetch_add(1, Ordering::Relaxed);
                if factor > 1 {
                    counters.slowed.fetch_add(1, Ordering::Relaxed);
                    if let Some(inj) = faults {
                        inj.lock().note_slowed();
                    }
                }
                // A send can only fail if the peer already stopped; drop
                // the message like a dead TCP connection would.
                if senders[to]
                    .send(Envelope::Msg {
                        from,
                        msg: msg.clone(),
                    })
                    .is_err()
                {
                    counters.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

impl<M: Clone + Send + 'static> ThreadedNet<M> {
    /// Spawn one thread per node. Each thread loops on its mailbox,
    /// dispatching messages to the node's `on_message` with a context whose
    /// sends go straight into the other peers' mailboxes.
    pub fn spawn(nodes: Vec<Box<dyn Node<M> + Send>>) -> ThreadedNet<M> {
        Self::spawn_inner(nodes, None)
    }

    /// Like [`Self::spawn`], but every send passes through a shared
    /// [`FaultInjector`] running `plan` — the same plans the deterministic
    /// simulator takes via [`crate::sim::SimNet::set_faults`]. Times in
    /// crash/pause windows are interpreted against the runtime's logical
    /// clock (one tick per delivery).
    pub fn spawn_with_faults(
        nodes: Vec<Box<dyn Node<M> + Send>>,
        plan: FaultPlan,
        seed: u64,
    ) -> ThreadedNet<M> {
        let injector = if plan.is_benign() {
            None
        } else {
            Some(Arc::new(Mutex::new(FaultInjector::new(plan, seed))))
        };
        Self::spawn_inner(nodes, injector)
    }

    fn spawn_inner(
        nodes: Vec<Box<dyn Node<M> + Send>>,
        faults: Option<Arc<Mutex<FaultInjector>>>,
    ) -> ThreadedNet<M> {
        let n = nodes.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Envelope<M>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let counters = Arc::new(NetCounters::default());
        // Logical clock for NodeCtx::now under threads: a coarse global
        // delivery counter (virtual time has no wall meaning here).
        let clock = Arc::new(AtomicU64::new(0));
        let handles = nodes
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(me, (mut node, rx))| {
                let senders = senders.clone();
                let counters = counters.clone();
                let clock = clock.clone();
                let faults = faults.clone();
                std::thread::Builder::new()
                    .name(format!("peer-{me}"))
                    .spawn(move || {
                        while let Ok(env) = rx.recv() {
                            match env {
                                Envelope::Stop => break,
                                Envelope::Msg { from, msg } => {
                                    let now = clock.fetch_add(1, Ordering::Relaxed);
                                    // A crashed node stops processing; its
                                    // backlog is lost, not handled.
                                    if let Some(inj) = &faults {
                                        if inj.lock().is_crashed(me, now) {
                                            counters.dropped.fetch_add(1, Ordering::Relaxed);
                                            continue;
                                        }
                                    }
                                    counters.delivered.fetch_add(1, Ordering::Relaxed);
                                    let mut outbox = Vec::new();
                                    {
                                        let mut ctx = NodeCtx::for_runtime(me, now, &mut outbox);
                                        node.on_message(&mut ctx, from, msg);
                                    }
                                    for (to, m) in outbox {
                                        faulty_send(&senders, &counters, &faults, now, me, to, m);
                                    }
                                }
                            }
                        }
                        node
                    })
                    .expect("failed to spawn peer thread")
            })
            .collect();
        ThreadedNet {
            senders,
            handles,
            counters,
            faults,
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Inject a message from the outside world.
    ///
    /// # Panics
    /// Panics if `to` is out of range.
    pub fn inject(&self, from: usize, to: usize, msg: M) {
        faulty_send(
            &self.senders,
            &self.counters,
            &self.faults,
            0,
            from,
            to,
            msg,
        );
    }

    /// Block until every sent message is accounted for — delivered or
    /// dropped by the fault layer — and no handler is mid-flight (counters
    /// balanced and stable). Returns false on timeout.
    pub fn await_quiescence(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut last = (u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        loop {
            let sent = self.counters.sent.load(Ordering::SeqCst);
            let delivered = self.counters.delivered.load(Ordering::SeqCst);
            let dropped = self.counters.dropped.load(Ordering::SeqCst);
            let partitioned = self.counters.partitioned.load(Ordering::SeqCst);
            if sent == delivered + dropped + partitioned
                && (sent, delivered, dropped, partitioned) == last
            {
                return true;
            }
            last = (sent, delivered, dropped, partitioned);
            if std::time::Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Stop all peers and return their node states.
    pub fn shutdown(self) -> Vec<Box<dyn Node<M> + Send>> {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Stop);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("peer thread panicked"))
            .collect()
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.counters.delivered.load(Ordering::Relaxed)
    }

    /// Messages dropped by the fault layer so far.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped.load(Ordering::Relaxed)
    }

    /// Messages lost to an open partition window so far.
    pub fn partitioned(&self) -> u64 {
        self.counters.partitioned.load(Ordering::Relaxed)
    }

    /// Copies that touched a slowed endpoint so far (delivered, not lost).
    pub fn slowed(&self) -> u64 {
        self.counters.slowed.load(Ordering::Relaxed)
    }

    /// Send attempts so far (delivered + dropped + partitioned at
    /// quiescence).
    pub fn sent(&self) -> u64 {
        self.counters.sent.load(Ordering::Relaxed)
    }
}

/// Guard: keep `Mutex` in the dependency graph for shared result sinks used
/// by downstream crates' threaded tests.
pub type SharedSink<T> = Arc<Mutex<Vec<T>>>;

#[cfg(test)]
mod tests {
    use super::*;

    struct Accumulator {
        seen: Vec<u32>,
        n: usize,
    }

    impl Node<u32> for Accumulator {
        fn on_message(&mut self, ctx: &mut NodeCtx<'_, u32>, _from: usize, msg: u32) {
            self.seen.push(msg);
            if msg > 0 {
                ctx.send((ctx.me + 1) % self.n, msg - 1);
            }
        }
    }

    fn boxed(n: usize) -> Vec<Box<dyn Node<u32> + Send>> {
        (0..n)
            .map(|_| {
                Box::new(Accumulator {
                    seen: Vec::new(),
                    n,
                }) as Box<dyn Node<u32> + Send>
            })
            .collect()
    }

    #[test]
    fn relay_across_threads() {
        let net = ThreadedNet::spawn(boxed(4));
        net.inject(0, 0, 11);
        assert!(net.await_quiescence(std::time::Duration::from_secs(5)));
        assert_eq!(net.delivered(), 12);
        let _nodes = net.shutdown();
    }

    #[test]
    fn parallel_injections_all_delivered() {
        let net = ThreadedNet::spawn(boxed(8));
        for i in 0..50u32 {
            net.inject(0, (i % 8) as usize, 3);
        }
        assert!(net.await_quiescence(std::time::Duration::from_secs(5)));
        // 50 injected chains × 4 messages each.
        assert_eq!(net.delivered(), 200);
        net.shutdown();
    }

    #[test]
    fn shutdown_returns_states() {
        let net = ThreadedNet::spawn(boxed(2));
        net.inject(0, 0, 0);
        assert!(net.await_quiescence(std::time::Duration::from_secs(5)));
        let nodes = net.shutdown();
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn len_reports_peers() {
        let net = ThreadedNet::spawn(boxed(3));
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
        net.shutdown();
    }

    #[test]
    fn quiescence_terminates_under_drops() {
        let net = ThreadedNet::spawn_with_faults(boxed(4), FaultPlan::none().with_drop(0.5), 11);
        for i in 0..40u32 {
            net.inject(0, (i % 4) as usize, 20);
        }
        assert!(
            net.await_quiescence(std::time::Duration::from_secs(10)),
            "drops must not wedge quiescence detection"
        );
        assert!(net.dropped() > 0, "50% loss must fire");
        assert_eq!(net.sent(), net.delivered() + net.dropped());
        net.shutdown();
    }

    #[test]
    fn full_drop_delivers_nothing() {
        let net = ThreadedNet::spawn_with_faults(boxed(2), FaultPlan::none().with_drop(1.0), 1);
        for _ in 0..10 {
            net.inject(0, 1, 5);
        }
        assert!(net.await_quiescence(std::time::Duration::from_secs(5)));
        assert_eq!(net.delivered(), 0);
        assert_eq!(net.dropped(), 10);
        net.shutdown();
    }

    #[test]
    fn partition_blocks_cross_island_traffic() {
        // The threaded runtime's logical clock starts at 0, so a window
        // over [0, u64::MAX) is open for the whole run.
        let plan = FaultPlan::none().with_partition(vec![vec![0], vec![1]], 0, u64::MAX);
        let net = ThreadedNet::spawn_with_faults(boxed(2), plan, 1);
        for _ in 0..10 {
            net.inject(0, 1, 0); // cross-island: all lost
        }
        net.inject(0, 0, 0); // island-internal: delivered
        assert!(net.await_quiescence(std::time::Duration::from_secs(5)));
        assert_eq!(net.partitioned(), 10);
        assert_eq!(net.delivered(), 1);
        assert_eq!(
            net.sent(),
            net.delivered() + net.dropped() + net.partitioned()
        );
        net.shutdown();
    }

    #[test]
    fn slow_window_counts_but_never_loses() {
        // Logical clock starts at 0: a window over [0, u64::MAX) covers
        // the run. Slowness cannot stretch wall time here; the ledger
        // column is what carries across runtimes.
        let plan = FaultPlan::none().with_slow(vec![1], 10, 0, u64::MAX);
        let net = ThreadedNet::spawn_with_faults(boxed(2), plan, 1);
        for _ in 0..10 {
            net.inject(0, 1, 0); // touches the slowed peer
        }
        net.inject(0, 0, 0); // does not
        assert!(net.await_quiescence(std::time::Duration::from_secs(5)));
        assert_eq!(net.delivered(), 11, "slow is not loss");
        assert_eq!(net.slowed(), 10);
        assert_eq!(
            net.sent(),
            net.delivered() + net.dropped() + net.partitioned(),
            "slowed never enters the conservation identity"
        );
        net.shutdown();
    }

    #[test]
    fn duplication_inflates_delivery_count() {
        let net =
            ThreadedNet::spawn_with_faults(boxed(2), FaultPlan::none().with_duplicate(1.0), 2);
        net.inject(0, 1, 0); // terminal payload: no relays
        assert!(net.await_quiescence(std::time::Duration::from_secs(5)));
        assert_eq!(net.delivered(), 2);
        net.shutdown();
    }
}
