//! Range sets: the set-of-integer-values view of a selection range.
//!
//! The paper treats a selection `30 ≤ age ≤ 50` as the set
//! `{30, 31, …, 50}` (§4). A [`RangeSet`] represents such a set as sorted,
//! disjoint, non-adjacent inclusive intervals, so similarity measures over
//! *huge* ranges are computed in closed form from interval overlaps instead
//! of materializing the values. Padded queries (§5.2) and multi-interval
//! sets (e.g. the union of two cached partitions) are supported uniformly.

use std::fmt;

/// A set of `u32` values stored as sorted, disjoint, non-adjacent inclusive
/// intervals.
///
/// Invariants (maintained by all constructors):
/// * intervals are sorted by start;
/// * for consecutive intervals `(a₀, a₁)`, `(b₀, b₁)`: `a₁ + 1 < b₀`
///   (disjoint and non-adjacent, so the representation is canonical);
/// * each interval satisfies `lo ≤ hi`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RangeSet {
    intervals: Vec<(u32, u32)>,
}

impl fmt::Debug for RangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RangeSet{{")?;
        for (i, (lo, hi)) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{lo},{hi}]")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for RangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl RangeSet {
    /// The empty set.
    pub fn empty() -> RangeSet {
        RangeSet {
            intervals: Vec::new(),
        }
    }

    /// A single contiguous inclusive interval `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn interval(lo: u32, hi: u32) -> RangeSet {
        assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        RangeSet {
            intervals: vec![(lo, hi)],
        }
    }

    /// Build from arbitrary (possibly overlapping, unsorted) intervals,
    /// normalizing to the canonical representation.
    pub fn from_intervals<I: IntoIterator<Item = (u32, u32)>>(intervals: I) -> RangeSet {
        let mut v: Vec<(u32, u32)> = intervals
            .into_iter()
            .inspect(|&(lo, hi)| assert!(lo <= hi, "invalid interval [{lo}, {hi}]"))
            .collect();
        v.sort_unstable();
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(v.len());
        for (lo, hi) in v {
            match out.last_mut() {
                // Merge overlapping or adjacent intervals.
                Some(last) if lo <= last.1.saturating_add(1) => {
                    last.1 = last.1.max(hi);
                }
                _ => out.push((lo, hi)),
            }
        }
        RangeSet { intervals: out }
    }

    /// Build from individual values.
    pub fn from_values<I: IntoIterator<Item = u32>>(values: I) -> RangeSet {
        RangeSet::from_intervals(values.into_iter().map(|v| (v, v)))
    }

    /// The canonical interval list.
    pub fn intervals(&self) -> &[(u32, u32)] {
        &self.intervals
    }

    /// Number of values in the set (cardinality).
    pub fn len(&self) -> u64 {
        self.intervals
            .iter()
            .map(|&(lo, hi)| (hi - lo) as u64 + 1)
            .sum()
    }

    /// True if the set contains no values.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Smallest value, if non-empty.
    pub fn min_value(&self) -> Option<u32> {
        self.intervals.first().map(|&(lo, _)| lo)
    }

    /// Largest value, if non-empty.
    pub fn max_value(&self) -> Option<u32> {
        self.intervals.last().map(|&(_, hi)| hi)
    }

    /// Membership test (binary search over intervals).
    pub fn contains(&self, v: u32) -> bool {
        self.intervals
            .binary_search_by(|&(lo, hi)| {
                if v < lo {
                    std::cmp::Ordering::Greater
                } else if v > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Iterate all values in ascending order.
    ///
    /// Beware: this materializes each value — use the closed-form similarity
    /// methods for large sets.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.intervals.iter().flat_map(|&(lo, hi)| lo..=hi)
    }

    /// Cardinality of the intersection with `other`, in closed form.
    pub fn intersection_len(&self, other: &RangeSet) -> u64 {
        // Merge-scan over two sorted interval lists.
        let (mut i, mut j) = (0, 0);
        let mut total = 0u64;
        while i < self.intervals.len() && j < other.intervals.len() {
            let (a0, a1) = self.intervals[i];
            let (b0, b1) = other.intervals[j];
            let lo = a0.max(b0);
            let hi = a1.min(b1);
            if lo <= hi {
                total += (hi - lo) as u64 + 1;
            }
            if a1 < b1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        total
    }

    /// Cardinality of the union with `other`.
    pub fn union_len(&self, other: &RangeSet) -> u64 {
        self.len() + other.len() - self.intersection_len(other)
    }

    /// The intersection as a new `RangeSet`.
    pub fn intersection(&self, other: &RangeSet) -> RangeSet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.intervals.len() && j < other.intervals.len() {
            let (a0, a1) = self.intervals[i];
            let (b0, b1) = other.intervals[j];
            let lo = a0.max(b0);
            let hi = a1.min(b1);
            if lo <= hi {
                out.push((lo, hi));
            }
            if a1 < b1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Intersection of canonical sets is already canonical.
        RangeSet { intervals: out }
    }

    /// The union as a new `RangeSet`.
    pub fn union(&self, other: &RangeSet) -> RangeSet {
        RangeSet::from_intervals(self.intervals.iter().chain(other.intervals.iter()).copied())
    }

    /// Jaccard set similarity `|A∩B| / |A∪B|` (the measure the paper's LSH
    /// families are locality-sensitive for). Two empty sets have similarity 1.
    pub fn jaccard(&self, other: &RangeSet) -> f64 {
        let union = self.union_len(other);
        if union == 0 {
            return 1.0;
        }
        self.intersection_len(other) as f64 / union as f64
    }

    /// Containment similarity `|Q∩R| / |Q|` where `Q = self` is the query.
    ///
    /// This is the paper's §3.2 containment measure: it has no LSH family
    /// (its distance violates the triangle inequality) but is the better
    /// *matching* criterion once a bucket has been located (§5.2, Fig. 9).
    /// An empty query is fully contained by definition.
    pub fn containment_in(&self, r: &RangeSet) -> f64 {
        let q_len = self.len();
        if q_len == 0 {
            return 1.0;
        }
        self.intersection_len(r) as f64 / q_len as f64
    }

    /// Expand every interval by `frac` of its width on each edge (the
    /// paper's §5.2 *query padding*; the paper evaluates `frac = 0.2`).
    ///
    /// The expansion is clamped to the `u32` domain and computed per
    /// interval; overlapping expansions are re-normalized.
    pub fn pad(&self, frac: f64) -> RangeSet {
        assert!(frac >= 0.0, "padding fraction must be non-negative");
        if frac == 0.0 {
            return self.clone();
        }
        RangeSet::from_intervals(self.intervals.iter().map(|&(lo, hi)| {
            let width = (hi - lo) as u64 + 1;
            let pad = (width as f64 * frac).round() as u64;
            let new_lo = (lo as u64).saturating_sub(pad) as u32;
            let new_hi = ((hi as u64 + pad).min(u32::MAX as u64)) as u32;
            (new_lo, new_hi)
        }))
    }

    /// Contract every interval by `frac` of its width on each edge — the
    /// inward counterpart of [`RangeSet::pad`], used by multi-probe
    /// candidate generation to re-evaluate the min-hashes on slightly
    /// perturbed boundaries. Intervals that would vanish are dropped; the
    /// result may be empty.
    pub fn shrink(&self, frac: f64) -> RangeSet {
        assert!(frac >= 0.0, "shrink fraction must be non-negative");
        if frac == 0.0 {
            return self.clone();
        }
        RangeSet::from_intervals(self.intervals.iter().filter_map(|&(lo, hi)| {
            let width = (hi - lo) as u64 + 1;
            let cut = (width as f64 * frac).round() as u64;
            let new_lo = (lo as u64).saturating_add(cut);
            let new_hi = (hi as u64).saturating_sub(cut);
            (new_lo <= new_hi && new_hi <= u32::MAX as u64)
                .then_some((new_lo as u32, new_hi as u32))
        }))
    }

    /// True if every value of `self` is contained in `other`.
    pub fn is_subset_of(&self, other: &RangeSet) -> bool {
        self.intersection_len(other) == self.len()
    }

    /// The set difference `self \ other` — the part of a query a partial
    /// match does *not* answer (used by residual fetching: serve the
    /// overlap from the cache, fetch only this remainder from the source).
    pub fn difference(&self, other: &RangeSet) -> RangeSet {
        let mut out: Vec<(u32, u32)> = Vec::new();
        let mut j = 0;
        for &(lo, hi) in &self.intervals {
            let mut cur = lo;
            // Walk other's intervals overlapping [lo, hi].
            while j < other.intervals.len() && other.intervals[j].1 < lo {
                j += 1;
            }
            let mut k = j;
            let mut exhausted = false;
            while k < other.intervals.len() && other.intervals[k].0 <= hi {
                let (olo, ohi) = other.intervals[k];
                if olo > cur {
                    out.push((cur, olo - 1));
                }
                if ohi >= hi {
                    exhausted = true;
                    break;
                }
                cur = cur.max(ohi.saturating_add(1));
                k += 1;
            }
            if !exhausted && cur <= hi {
                out.push((cur.max(lo), hi));
            }
        }
        // Pieces are already sorted and disjoint, but adjacent pieces can
        // touch across source intervals; normalize for the canonical form.
        RangeSet::from_intervals(out)
    }
}

impl From<std::ops::RangeInclusive<u32>> for RangeSet {
    fn from(r: std::ops::RangeInclusive<u32>) -> RangeSet {
        RangeSet::interval(*r.start(), *r.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let r = RangeSet::interval(30, 50);
        assert_eq!(r.len(), 21);
        assert!(!r.is_empty());
        assert!(r.contains(30));
        assert!(r.contains(50));
        assert!(!r.contains(29));
        assert!(!r.contains(51));
        assert_eq!(r.min_value(), Some(30));
        assert_eq!(r.max_value(), Some(50));
    }

    #[test]
    fn empty_set() {
        let e = RangeSet::empty();
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        assert!(!e.contains(0));
        assert_eq!(e.min_value(), None);
        assert_eq!(e.jaccard(&e), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn reversed_interval_panics() {
        RangeSet::interval(5, 4);
    }

    #[test]
    fn from_intervals_normalizes() {
        let r = RangeSet::from_intervals([(10, 20), (15, 25), (26, 30), (40, 41)]);
        // 10-20 and 15-25 overlap; 26 is adjacent to 25 so merges too.
        assert_eq!(r.intervals(), &[(10, 30), (40, 41)]);
        assert_eq!(r.len(), 23);
    }

    #[test]
    fn from_values_collapses_runs() {
        let r = RangeSet::from_values([5, 3, 4, 9, 7]);
        assert_eq!(r.intervals(), &[(3, 5), (7, 7), (9, 9)]);
    }

    #[test]
    fn iter_yields_sorted_values() {
        let r = RangeSet::from_intervals([(1, 3), (7, 8)]);
        let vals: Vec<u32> = r.iter().collect();
        assert_eq!(vals, vec![1, 2, 3, 7, 8]);
    }

    #[test]
    fn paper_example_overlap() {
        // Query [30,49] vs cached [30,50]: answer fully contained.
        let q = RangeSet::interval(30, 49);
        let r = RangeSet::interval(30, 50);
        assert_eq!(q.intersection_len(&r), 20);
        assert_eq!(q.union_len(&r), 21);
        assert!((q.jaccard(&r) - 20.0 / 21.0).abs() < 1e-12);
        assert_eq!(q.containment_in(&r), 1.0);
        assert!(q.is_subset_of(&r));
        assert!(!r.is_subset_of(&q));
    }

    #[test]
    fn disjoint_similarity_zero() {
        let a = RangeSet::interval(0, 10);
        let b = RangeSet::interval(20, 30);
        assert_eq!(a.jaccard(&b), 0.0);
        assert_eq!(a.containment_in(&b), 0.0);
        assert_eq!(a.intersection_len(&b), 0);
        assert!(a.intersection(&b).is_empty());
    }

    #[test]
    fn identical_similarity_one() {
        let a = RangeSet::interval(5, 99);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(a.containment_in(&a), 1.0);
    }

    #[test]
    fn multi_interval_intersection() {
        let a = RangeSet::from_intervals([(0, 10), (20, 30), (40, 50)]);
        let b = RangeSet::from_intervals([(5, 25), (45, 60)]);
        // overlaps: [5,10] (6), [20,25] (6), [45,50] (6)
        assert_eq!(a.intersection_len(&b), 18);
        assert_eq!(
            a.intersection(&b).intervals(),
            &[(5, 10), (20, 25), (45, 50)]
        );
        assert_eq!(b.intersection_len(&a), 18, "intersection is symmetric");
    }

    #[test]
    fn union_merges() {
        let a = RangeSet::interval(0, 5);
        let b = RangeSet::interval(6, 10);
        assert_eq!(a.union(&b).intervals(), &[(0, 10)]);
        assert_eq!(a.union_len(&b), 11);
    }

    #[test]
    fn pad_expands_by_fraction() {
        // [100, 199]: width 100, 20% pad = 20 on each side.
        let q = RangeSet::interval(100, 199);
        let padded = q.pad(0.2);
        assert_eq!(padded.intervals(), &[(80, 219)]);
    }

    #[test]
    fn pad_clamps_at_domain_edges() {
        let q = RangeSet::interval(0, 9);
        let padded = q.pad(0.5);
        assert_eq!(padded.intervals(), &[(0, 14)]);
        let q_hi = RangeSet::interval(u32::MAX - 9, u32::MAX);
        let padded_hi = q_hi.pad(0.5);
        assert_eq!(padded_hi.intervals(), &[(u32::MAX - 14, u32::MAX)]);
    }

    #[test]
    fn pad_zero_is_identity() {
        let q = RangeSet::interval(10, 20);
        assert_eq!(q.pad(0.0), q);
    }

    #[test]
    fn pad_merges_expanded_intervals() {
        let q = RangeSet::from_intervals([(0, 9), (15, 24)]);
        // width 10 each, 50% pad = 5: [0,14] and [10,29] overlap → [0,29]
        assert_eq!(q.pad(0.5).intervals(), &[(0, 29)]);
    }

    #[test]
    fn display_format() {
        let r = RangeSet::from_intervals([(1, 2), (5, 5)]);
        assert_eq!(format!("{r}"), "RangeSet{[1,2], [5,5]}");
    }

    #[test]
    fn from_range_inclusive() {
        let r: RangeSet = (3..=7).into();
        assert_eq!(r.intervals(), &[(3, 7)]);
    }

    #[test]
    fn containment_not_symmetric() {
        let q = RangeSet::interval(0, 9); // 10 values
        let r = RangeSet::interval(0, 99); // 100 values
        assert_eq!(q.containment_in(&r), 1.0);
        assert!((r.containment_in(&q) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn difference_basic() {
        let a = RangeSet::interval(0, 10);
        let b = RangeSet::interval(3, 6);
        assert_eq!(a.difference(&b).intervals(), &[(0, 2), (7, 10)]);
        // Difference with a disjoint set is identity.
        assert_eq!(a.difference(&RangeSet::interval(20, 30)), a);
        // Difference with a superset is empty.
        assert!(a.difference(&RangeSet::interval(0, 100)).is_empty());
        // Self-difference is empty.
        assert!(a.difference(&a).is_empty());
        // Difference with empty is identity.
        assert_eq!(a.difference(&RangeSet::empty()), a);
    }

    #[test]
    fn difference_multi_interval() {
        let a = RangeSet::from_intervals([(0, 10), (20, 30)]);
        let b = RangeSet::from_intervals([(5, 25)]);
        assert_eq!(a.difference(&b).intervals(), &[(0, 4), (26, 30)]);
        // One hole spanning two source intervals.
        let c = RangeSet::from_intervals([(8, 9), (22, 23)]);
        assert_eq!(
            a.difference(&c).intervals(),
            &[(0, 7), (10, 10), (20, 21), (24, 30)]
        );
    }

    #[test]
    fn difference_brute_force_sweep() {
        use std::collections::BTreeSet;
        // Dense small-domain sweep against set subtraction.
        let cases = [
            (vec![(0u32, 5u32), (8, 12)], vec![(3u32, 9u32)]),
            (vec![(0, 20)], vec![(0, 0), (5, 5), (20, 20)]),
            (vec![(2, 4)], vec![(0, 10)]),
            (vec![(0, 3), (5, 8), (10, 13)], vec![(1, 11)]),
        ];
        for (ai, bi) in cases {
            let a = RangeSet::from_intervals(ai.iter().copied());
            let b = RangeSet::from_intervals(bi.iter().copied());
            let sa: BTreeSet<u32> = a.iter().collect();
            let sb: BTreeSet<u32> = b.iter().collect();
            let expect: Vec<u32> = sa.difference(&sb).copied().collect();
            let got: Vec<u32> = a.difference(&b).iter().collect();
            assert_eq!(got, expect, "a={a} b={b}");
        }
    }

    #[test]
    fn boundary_u32_max() {
        let r = RangeSet::interval(u32::MAX - 1, u32::MAX);
        assert_eq!(r.len(), 2);
        assert!(r.contains(u32::MAX));
        let m = RangeSet::from_intervals([(u32::MAX, u32::MAX), (0, 0)]);
        assert_eq!(m.len(), 2);
    }
}
