//! Multi-probe candidate generation: extra group identifiers from the
//! least-stable min-hash coordinates.
//!
//! A query whose range differs slightly from a stored partition's range
//! usually disagrees on only a few of a group's `k` min-hashes — the
//! coordinates whose minimum sits close to a range boundary. Re-hashing
//! the query on a ladder of *perturbed* boundaries (each interval shrunk
//! or expanded by a small fraction) reveals exactly those coordinates:
//! whenever a perturbed evaluation flips coordinate `f` of group `g` from
//! `m` to `m'`, the identifier `base_g ^ m ^ m'` is the identifier the
//! query *would* have had if that one min had landed the other way — a
//! high-probability candidate bucket for near-identical stored ranges.
//!
//! Candidates are ranked by the perturbation rung that first produced
//! them (smaller perturbation → less-stable coordinate → higher collision
//! probability, the multi-probe LSH ranking principle), with whole-group
//! perturbed identifiers (several coordinates flipped at once) ranked
//! after single-coordinate flips at the same rung. Generation is
//! deterministic and budget-independent: `probe_candidates(q, b)` is
//! always the first `b` entries of the full ranked sequence, so candidate
//! sets at increasing budgets are nested (asserted by proptests).
//!
//! The fused SoA kernels ([`crate::fused::CompiledGroup`]) make each
//! perturbed re-hash a single decomposition walk, so a full ladder costs
//! a small constant factor over the base evaluation — cheap against the
//! Chord lookups it saves.

use crate::group::HashGroups;
use crate::range::RangeSet;

/// The perturbation ladder: each interval edge is moved by this fraction
/// of the interval width, both inward ([`RangeSet::shrink`]) and outward
/// ([`RangeSet::pad`]). Rungs are ordered by increasing perturbation, so
/// rung index doubles as the instability rank of the coordinates it
/// flips.
pub const PROBE_DELTAS: [f64; 4] = [0.015625, 0.0625, 0.25, 0.5];

/// One extra candidate bucket identifier, ranked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeCandidate {
    /// The group whose identifier was perturbed.
    pub group: usize,
    /// The candidate bucket identifier.
    pub identifier: u32,
    /// Rank key: lower = higher estimated collision probability. Encodes
    /// `(ladder rung, coordinates flipped)` lexicographically.
    pub rank: u32,
}

impl HashGroups {
    /// The ranked multi-probe candidates of `q`, at most `budget` of
    /// them, excluding the base identifiers themselves.
    ///
    /// The returned sequence is a prefix of the full deterministic
    /// ranking: for budgets `a ≤ b`, `probe_candidates(q, a)` is exactly
    /// the first `a` entries of `probe_candidates(q, b)` (the superset
    /// property multi-probe recall monotonicity rests on).
    ///
    /// # Panics
    /// Panics if `q` is empty.
    pub fn probe_candidates(&self, q: &RangeSet, budget: usize) -> Vec<ProbeCandidate> {
        assert!(!q.is_empty(), "cannot probe an empty range");
        if budget == 0 {
            return Vec::new();
        }
        let fused = self.fused_groups();
        let base_mins: Vec<Vec<u32>> = fused.iter().map(|g| g.mins(q)).collect();
        let base_ids: Vec<u32> = base_mins
            .iter()
            .map(|m| m.iter().fold(0u32, |acc, &x| acc ^ x))
            .collect();

        // Ranked candidate accumulation: first rung that produces an
        // identifier wins; insertion order breaks rank ties, so the
        // sequence is budget-independent.
        let mut out: Vec<ProbeCandidate> = Vec::new();
        let push = |out: &mut Vec<ProbeCandidate>, group: usize, identifier: u32, rank: u32| {
            if base_ids.contains(&identifier) {
                return;
            }
            if out
                .iter()
                .any(|c| c.identifier == identifier && c.group == group)
            {
                return;
            }
            out.push(ProbeCandidate {
                group,
                identifier,
                rank,
            });
        };

        for (rung, &delta) in PROBE_DELTAS.iter().enumerate() {
            let perturbed = [q.shrink(delta), q.pad(delta)];
            for p in perturbed.iter().filter(|p| !p.is_empty()) {
                for (g, group) in fused.iter().enumerate() {
                    let mins = group.mins(p);
                    let mut flipped = 0usize;
                    let mut perturbed_id = base_ids[g];
                    for (&m, &m0) in mins.iter().zip(&base_mins[g]) {
                        if m != m0 {
                            flipped += 1;
                            perturbed_id ^= m0 ^ m;
                            // Single-coordinate flip: the strongest
                            // candidate this rung offers.
                            push(&mut out, g, base_ids[g] ^ m0 ^ m, (rung as u32) << 8);
                        }
                    }
                    if flipped > 1 {
                        // The fully perturbed identifier: all flipped
                        // coordinates at once, ranked below the singles
                        // of the same rung.
                        push(
                            &mut out,
                            g,
                            perturbed_id,
                            ((rung as u32) << 8) | (flipped.min(255) as u32),
                        );
                    }
                }
            }
        }
        // Stable sort: rank, then insertion order (preserved by
        // `sort_by_key`'s stability) — deterministic and prefix-closed.
        out.sort_by_key(|c| c.rank);
        out.truncate(budget);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::LshFamilyKind;
    use ars_common::DetRng;

    fn groups(seed: u64) -> HashGroups {
        let mut rng = DetRng::new(seed);
        HashGroups::generate(LshFamilyKind::ApproxMinWise, 20, 5, &mut rng)
    }

    #[test]
    fn candidates_exclude_base_identifiers() {
        let g = groups(1);
        let q = RangeSet::interval(1_000, 2_000);
        let base = g.identifiers(&q);
        for c in g.probe_candidates(&q, 64) {
            assert!(!base.contains(&c.identifier));
            assert!(c.group < g.l());
        }
    }

    #[test]
    fn candidates_are_prefix_closed_across_budgets() {
        let g = groups(2);
        for q in [
            RangeSet::interval(30, 50),
            RangeSet::interval(0, 100_000),
            RangeSet::from_intervals([(10, 90), (5_000, 9_000)]),
        ] {
            let full = g.probe_candidates(&q, 1_000);
            for budget in [0usize, 1, 3, 8, 17, 64] {
                let some = g.probe_candidates(&q, budget);
                assert_eq!(
                    some,
                    full[..budget.min(full.len())].to_vec(),
                    "budget {budget} is not a prefix of the full ranking"
                );
            }
        }
    }

    #[test]
    fn ranks_are_non_decreasing() {
        let g = groups(3);
        let q = RangeSet::interval(500, 900);
        let cands = g.probe_candidates(&q, 128);
        assert!(cands.windows(2).all(|w| w[0].rank <= w[1].rank));
    }

    #[test]
    fn probes_recover_jittered_neighbor_identifiers() {
        // The whole point: a stored range's identifier that a slightly
        // jittered query *misses* on the base evaluation is frequently
        // among the query's probe candidates.
        let mut direct = 0usize;
        let mut with_probes = 0usize;
        let trials = 40;
        for seed in 0..trials {
            let g = groups(100 + seed);
            let stored = RangeSet::interval(10_000, 20_000);
            let query = RangeSet::interval(10_050, 19_930); // J ≈ 0.987
            let stored_ids = g.identifiers(&stored);
            let query_ids = g.identifiers(&query);
            let hit_direct = query_ids.iter().any(|id| stored_ids.contains(id));
            let probed = g.probe_candidates(&query, 32);
            let hit_probed =
                hit_direct || probed.iter().any(|c| stored_ids.contains(&c.identifier));
            direct += hit_direct as usize;
            with_probes += hit_probed as usize;
        }
        assert!(
            with_probes >= direct,
            "probing lost matches: {with_probes} < {direct}"
        );
        assert!(
            with_probes > direct,
            "probing never recovered a missed neighbor in {trials} trials \
             (direct {direct}, probed {with_probes})"
        );
    }

    #[test]
    fn zero_budget_is_empty() {
        let g = groups(4);
        assert!(g.probe_candidates(&RangeSet::interval(0, 10), 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        groups(5).probe_candidates(&RangeSet::empty(), 4);
    }

    #[test]
    fn shrink_is_inverse_leaning_of_pad() {
        let q = RangeSet::interval(1_000, 2_000);
        let s = q.shrink(0.25);
        assert!(s.is_subset_of(&q));
        assert!(!s.is_empty());
        let tiny = RangeSet::interval(5, 6);
        assert!(tiny.shrink(0.5).len() <= tiny.len());
        assert!(RangeSet::interval(5, 5).shrink(0.9).is_empty());
        assert_eq!(q.shrink(0.0), q);
    }
}
