//! Range-aware min-hash evaluation for bit-position permutations.
//!
//! Every GRP network (one level or five) maps each input bit position to a
//! fixed output bit position. For such permutations the interval minimum
//! `min { π(x) : x ∈ [lo, hi] }` does not require enumerating the interval:
//! decide the output bits most-significant first, greedily trying to force
//! each one to 0, with an exact feasibility check per decision. Each check
//! is `O(32)` ([`min_matching_ge`]), so an interval of *any* width costs
//! `O(32²)` — the paper's Fig. 5 enumeration cost `O(|Q|·perm)` collapses
//! to a constant (see DESIGN.md §6 and the `bench_json` harness).
//!
//! Correctness sketch: process output bits 31 → 0, accumulating constraints
//! on *input* bits (output bit `j` is fed by exactly one input bit). At
//! each step ask "is there an `x ∈ [lo, hi]` whose constrained input bits
//! match the forced values, with the current bit forced to 0?" — if yes,
//! the minimum has 0 there (any assignment with 1 is numerically larger in
//! the output, since all higher output bits are already fixed); if no, every
//! feasible `x` has a 1 there. Feasibility is decided exactly: the smallest
//! `x ≥ lo` matching a partial bit assignment exists in closed form, and it
//! is in range iff it is `≤ hi`. After 32 decisions the constraints pin a
//! unique witness, and the accumulated output bits are its image — the true
//! minimum. Multi-interval [`RangeSet`]s take the min over intervals, with
//! tiny intervals enumerated directly (cheaper than 32 feasibility rounds).

use crate::range::RangeSet;

/// Intervals at most this wide are enumerated instead of running the greedy
/// descent: enumeration costs ~1 permute per value (≈32 ops via
/// [`RangeAwareBitPerm::permute`]) while the descent costs ~32×32 ops
/// regardless of width, so the crossover sits near 32 values.
pub const ENUMERATE_WIDTH_MAX: u64 = 32;

/// Smallest `x ≥ lo` with `x & mask == forced`, or `None` if every such `x`
/// overflows 32 bits.
///
/// `forced` must be a subset of `mask` (`forced & !mask == 0`). `O(32)`.
///
/// The search keeps `x` bit-equal to `lo` from the top down ("tight") for
/// as long as the constraints allow; at the first constrained bit that
/// disagrees with `lo` it either diverges upward immediately (forced 1 over
/// a 0 in `lo` — everything below can then be minimal) or must *bump*: set
/// the lowest unconstrained bit above the disagreement where `lo` has a 0,
/// which is the smallest way to exceed `lo`'s prefix.
pub fn min_matching_ge(lo: u32, mask: u32, forced: u32) -> Option<u32> {
    debug_assert_eq!(forced & !mask, 0, "forced bits outside mask");
    let mut x = 0u32;
    for i in (0..32).rev() {
        let b = 1u32 << i;
        let lo_bit = lo & b;
        if mask & b != 0 {
            let f_bit = forced & b;
            if f_bit == lo_bit {
                x |= f_bit;
                continue; // still tight
            }
            if f_bit > lo_bit {
                // Prefix now exceeds lo: finish minimally (free bits 0).
                return Some(x | f_bit | (forced & (b - 1)));
            }
            // Constrained to 0 where lo has 1: the tight path is dead.
            // Bump the lowest free zero-bit of lo above position i; bits in
            // the tight prefix that are constrained already equal lo there,
            // so only free bits are candidates.
            for j in (i + 1)..32 {
                let bj = 1u32 << j;
                if mask & bj == 0 && lo & bj == 0 {
                    let above = !(((bj as u64) << 1).wrapping_sub(1) as u32);
                    return Some((lo & above) | bj | (forced & (bj - 1)));
                }
            }
            return None;
        }
        // Free bit: follow lo to stay tight (the minimal choice).
        x |= lo_bit;
    }
    Some(x) // fully tight: x == lo and lo matches the constraints
}

/// A bit-position permutation of 32-bit values compiled for range-aware
/// min-hash evaluation.
///
/// Stores the image of each input unit bit plus the inverse map (which
/// input bit feeds each output bit). Construction costs 32 evaluations of
/// the source permutation; after that every interval min-hash is `O(32²)`
/// independent of interval width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeAwareBitPerm {
    /// `bit_image[i]` = permutation image of `1 << i` (a single bit).
    bit_image: [u32; 32],
    /// `out_src[j]` = input bit position feeding output bit `j`.
    out_src: [u8; 32],
}

impl RangeAwareBitPerm {
    /// Compile from a closure that must be a bit-position permutation:
    /// `f(x ^ y) == f(x) ^ f(y)` and unit bits map to unit bits (true for
    /// any GRP network). Checked like [`crate::grp::BitPerm::compile`].
    ///
    /// # Panics
    /// Panics if `f` is not a bit-position permutation.
    pub fn compile(f: impl Fn(u32) -> u32) -> RangeAwareBitPerm {
        let mut bit_image = [0u32; 32];
        let mut out_src = [0u8; 32];
        let mut seen: u32 = 0;
        for (i, image) in bit_image.iter_mut().enumerate() {
            let y = f(1u32 << i);
            assert_eq!(y.count_ones(), 1, "f does not permute bit positions");
            assert_eq!(seen & y, 0, "f maps two bits to the same position");
            seen |= y;
            *image = y;
            out_src[y.trailing_zeros() as usize] = i as u8;
        }
        RangeAwareBitPerm { bit_image, out_src }
    }

    /// Apply the permutation (bitwise OR of set-bit images).
    #[inline]
    pub fn permute(&self, x: u32) -> u32 {
        let mut v = x;
        let mut out = 0;
        while v != 0 {
            out |= self.bit_image[v.trailing_zeros() as usize];
            v &= v - 1;
        }
        out
    }

    /// Exact `min { π(x) : x ∈ [lo, hi] }` by greedy MSB-first descent,
    /// `O(32²)` regardless of `hi - lo`.
    pub fn min_interval(&self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        let mut mask = 0u32; // input bits already decided
        let mut forced = 0u32; // their values
        let mut out = 0u32;
        for j in (0..32).rev() {
            let b = 1u32 << self.out_src[j];
            // Try output bit j = 0, i.e. input bit `b` = 0.
            match min_matching_ge(lo, mask | b, forced) {
                Some(x) if x <= hi => {}
                // 0 is infeasible; some x in range matches the constraints
                // so far (loop invariant), hence bit `b` = 1 is feasible.
                _ => {
                    forced |= b;
                    out |= 1 << j;
                }
            }
            mask |= b;
        }
        debug_assert!((lo..=hi).contains(&forced));
        debug_assert_eq!(self.permute(forced), out);
        out
    }

    /// Min-hash of a range set: the minimum over its intervals, enumerating
    /// intervals narrower than [`ENUMERATE_WIDTH_MAX`] and running the
    /// greedy descent on the rest.
    ///
    /// # Panics
    /// Panics if `q` is empty.
    pub fn min_hash(&self, q: &RangeSet) -> u32 {
        assert!(!q.is_empty(), "min-hash of an empty range set");
        q.intervals()
            .iter()
            .map(|&(lo, hi)| {
                if ((hi - lo) as u64) < ENUMERATE_WIDTH_MAX {
                    (lo..=hi).map(|v| self.permute(v)).min().unwrap()
                } else {
                    self.min_interval(lo, hi)
                }
            })
            .min()
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::ApproxMinWisePerm;
    use crate::minwise::MinWisePerm;
    use ars_common::DetRng;
    use proptest::prelude::*;

    fn full(seed: u64) -> RangeAwareBitPerm {
        let mut rng = DetRng::new(seed);
        let p = MinWisePerm::random(&mut rng);
        RangeAwareBitPerm::compile(|x| p.permute(x))
    }

    #[test]
    fn min_matching_ge_exhaustive_8bit() {
        // Compare against brute force over an 8-bit slice of the domain.
        for mask in [0u32, 0b1010_1010, 0b0000_1111, 0xFF] {
            for forced_bits in 0u32..=0xFF {
                let forced = forced_bits & mask;
                for lo in (0u32..=0xFF).step_by(7) {
                    // With mask ⊆ 0xFF, a match above the 8-bit space always
                    // exists; the smallest is 0x100 | forced.
                    let brute = (lo..=0xFF)
                        .find(|x| x & mask == forced)
                        .unwrap_or(0x100 | forced);
                    assert_eq!(
                        min_matching_ge(lo, mask, forced),
                        Some(brute),
                        "lo={lo:#b} mask={mask:#b} forced={forced:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn min_matching_ge_high_bits() {
        // Constraint forcing the top bit to 0 with lo in the top half: no
        // solution.
        assert_eq!(min_matching_ge(1 << 31, 1 << 31, 0), None);
        // Forcing it to 1 from anywhere: the bottom of the top half.
        assert_eq!(min_matching_ge(5, 1 << 31, 1 << 31), Some(1 << 31));
        // Unconstrained: identity.
        assert_eq!(min_matching_ge(12345, 0, 0), Some(12345));
        // Everything constrained below lo: None.
        assert_eq!(min_matching_ge(u32::MAX, u32::MAX, 0), None);
        assert_eq!(
            min_matching_ge(u32::MAX, u32::MAX, u32::MAX),
            Some(u32::MAX)
        );
    }

    #[test]
    fn min_interval_matches_enumeration_small() {
        let p = full(1);
        for (lo, hi) in [(0u32, 0u32), (0, 255), (100, 612), (4090, 4100)] {
            let brute = (lo..=hi).map(|v| p.permute(v)).min().unwrap();
            assert_eq!(p.min_interval(lo, hi), brute, "[{lo},{hi}]");
        }
    }

    #[test]
    fn min_interval_wide_intervals() {
        // Widths far beyond anything enumerable still return the exact min:
        // checked against the enumeration of an equivalent small problem by
        // noting min over [0, 2^k-1] of a bit permutation is 0.
        let p = full(2);
        assert_eq!(p.min_interval(0, u32::MAX), 0);
        assert_eq!(p.min_interval(0, 1 << 20), 0);
        // Single-point interval is just the permuted value.
        assert_eq!(p.min_interval(777, 777), p.permute(777));
    }

    #[test]
    fn approx_family_kernel_agrees() {
        let mut rng = DetRng::new(3);
        for _ in 0..10 {
            let a = ApproxMinWisePerm::random(&mut rng);
            let k = RangeAwareBitPerm::compile(|x| a.permute(x));
            for (lo, hi) in [(0u32, 1000u32), (30, 50), (65_000, 70_000)] {
                let brute = (lo..=hi).map(|v| a.permute(v)).min().unwrap();
                assert_eq!(k.min_interval(lo, hi), brute);
            }
        }
    }

    #[test]
    fn multi_interval_range_sets() {
        let p = full(4);
        let q = RangeSet::from_intervals([(10u32, 40u32), (1000, 3000), (50_000, 50_005)]);
        let brute = q.iter().map(|v| p.permute(v)).min().unwrap();
        assert_eq!(p.min_hash(&q), brute);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_range_set_panics() {
        full(5).min_hash(&RangeSet::empty());
    }

    #[test]
    #[should_panic(expected = "permute bit positions")]
    fn non_bit_permutation_rejected() {
        RangeAwareBitPerm::compile(|x| x.wrapping_add(1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn kernel_equals_enumeration(
            seed in any::<u64>(),
            lo in 0u32..100_000,
            w in 0u32..5_000,
        ) {
            let p = full(seed);
            let hi = lo + w;
            let brute = (lo..=hi).map(|v| p.permute(v)).min().unwrap();
            prop_assert_eq!(p.min_interval(lo, hi), brute);
        }

        #[test]
        fn min_matching_ge_is_minimal_and_matching(
            lo in any::<u32>(), mask in any::<u32>(), raw in any::<u32>(),
        ) {
            let forced = raw & mask;
            if let Some(x) = min_matching_ge(lo, mask, forced) {
                prop_assert!(x >= lo);
                prop_assert_eq!(x & mask, forced);
                // Minimality: nothing matching in [lo, x).
                if x > lo {
                    // Spot-check the value just below x and lo itself.
                    prop_assert!(lo & mask != forced);
                    prop_assert!((x - 1) < lo || (x - 1) & mask != forced);
                }
            } else {
                // No match anywhere ≥ lo: in particular not at lo or MAX.
                prop_assert!(lo & mask != forced);
                prop_assert!(mask != forced); // x = u32::MAX gives x & mask == mask
            }
        }
    }
}
