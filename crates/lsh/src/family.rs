//! Unified interface over the three LSH families evaluated in the paper.
//!
//! Hot loops hash thousands of ranges through `k·l = 100` functions, so the
//! dispatch is a plain enum rather than trait objects — the compiler keeps
//! everything inlined and there is one allocation-free call per function.

use crate::approx::ApproxMinWisePerm;
use crate::linear::LinearPerm;
use crate::minwise::MinWisePerm;
use crate::range::RangeSet;
use crate::rangeaware::RangeAwareBitPerm;
use ars_common::DetRng;

/// Which hash family to use (the paper's three candidates, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LshFamilyKind {
    /// Full min-wise independent permutations (5-level GRP network).
    MinWise,
    /// First iteration only (single 32-bit key).
    ApproxMinWise,
    /// `π(x) = a·x + b mod p` evaluated by enumeration (as the paper times it).
    Linear,
    /// `π(x) = a·x + b mod p` with the closed-form `O(log p)` interval
    /// minimum — our extension (DESIGN.md §6.2); hash values are identical
    /// to [`LshFamilyKind::Linear`].
    LinearClosedForm,
    /// `π(x) = a·x + b mod p` with `p = 1009`, a permutation of the §5.1
    /// *attribute domain* rather than the 32-bit space. Identifiers then
    /// occupy ~10 bits, so dissimilar ranges frequently share buckets —
    /// the "loose matching" behaviour the paper reports for its linear
    /// permutations (see EXPERIMENTS.md).
    LinearDomain,
}

impl LshFamilyKind {
    /// All paper families (excludes our closed-form variant, which is
    /// value-identical to `Linear`).
    pub const PAPER_FAMILIES: [LshFamilyKind; 3] = [
        LshFamilyKind::MinWise,
        LshFamilyKind::ApproxMinWise,
        LshFamilyKind::Linear,
    ];

    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            LshFamilyKind::MinWise => "min-wise independent",
            LshFamilyKind::ApproxMinWise => "approx. min-wise independent",
            LshFamilyKind::Linear => "linear",
            LshFamilyKind::LinearClosedForm => "linear (closed form)",
            LshFamilyKind::LinearDomain => "linear (domain modulus)",
        }
    }
}

impl std::fmt::Display for LshFamilyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One hash function drawn from a family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LshFunction {
    /// Full min-wise permutation.
    MinWise(MinWisePerm),
    /// Approximate (one-iteration) permutation.
    Approx(ApproxMinWisePerm),
    /// Linear permutation, enumerated evaluation.
    Linear(LinearPerm),
    /// Linear permutation, closed-form evaluation.
    LinearClosedForm(LinearPerm),
    /// Linear permutation of the small attribute domain.
    LinearDomain(LinearPerm),
}

impl LshFunction {
    /// Draw a random function from `kind`'s family.
    pub fn random(kind: LshFamilyKind, rng: &mut DetRng) -> LshFunction {
        match kind {
            LshFamilyKind::MinWise => LshFunction::MinWise(MinWisePerm::random(rng)),
            LshFamilyKind::ApproxMinWise => LshFunction::Approx(ApproxMinWisePerm::random(rng)),
            LshFamilyKind::Linear => LshFunction::Linear(LinearPerm::random(rng)),
            LshFamilyKind::LinearClosedForm => {
                LshFunction::LinearClosedForm(LinearPerm::random(rng))
            }
            LshFamilyKind::LinearDomain => LshFunction::LinearDomain(
                LinearPerm::random_with_modulus(rng, crate::linear::DOMAIN_MODULUS),
            ),
        }
    }

    /// The family this function belongs to.
    pub fn kind(&self) -> LshFamilyKind {
        match self {
            LshFunction::MinWise(_) => LshFamilyKind::MinWise,
            LshFunction::Approx(_) => LshFamilyKind::ApproxMinWise,
            LshFunction::Linear(_) => LshFamilyKind::Linear,
            LshFunction::LinearClosedForm(_) => LshFamilyKind::LinearClosedForm,
            LshFunction::LinearDomain(_) => LshFamilyKind::LinearDomain,
        }
    }

    /// Min-hash of a range set, via each family's fastest value-identical
    /// evaluator: the range-aware greedy descent for the GRP families
    /// (small sets still enumerate — see `rangeaware::ENUMERATE_WIDTH_MAX`)
    /// and the closed-form interval minimum for the linear families.
    /// Bit-for-bit equal to [`LshFunction::min_hash_enumerate`]
    /// (property-tested in `tests/property_invariants.rs`).
    #[inline]
    pub fn min_hash(&self, q: &RangeSet) -> u32 {
        match self {
            LshFunction::MinWise(p) => p.min_hash(q),
            LshFunction::Approx(p) => p.min_hash(q),
            LshFunction::Linear(p)
            | LshFunction::LinearClosedForm(p)
            | LshFunction::LinearDomain(p) => p.min_hash(q),
        }
    }

    /// Min-hash by enumerating every value of the set — the evaluation the
    /// paper's Fig. 5 times, kept as the oracle for [`LshFunction::min_hash`].
    #[inline]
    pub fn min_hash_enumerate(&self, q: &RangeSet) -> u32 {
        match self {
            LshFunction::MinWise(p) => p.min_hash_enumerate(q),
            LshFunction::Approx(p) => p.min_hash_enumerate(q),
            LshFunction::Linear(p)
            | LshFunction::LinearClosedForm(p)
            | LshFunction::LinearDomain(p) => p.min_hash_enumerate(q),
        }
    }

    /// Apply the underlying permutation to a single value.
    #[inline]
    pub fn permute(&self, x: u32) -> u32 {
        match self {
            LshFunction::MinWise(p) => p.permute(x),
            LshFunction::Approx(p) => p.permute(x),
            LshFunction::Linear(p)
            | LshFunction::LinearClosedForm(p)
            | LshFunction::LinearDomain(p) => p.permute(x),
        }
    }

    /// Compile into the fastest value-identical evaluator: table-driven
    /// bit permutation for the GRP families, closed-form interval minimum
    /// for the linear families.
    pub fn compile(&self) -> CompiledLshFunction {
        match self {
            LshFunction::MinWise(p) => CompiledLshFunction::Bit {
                tables: p.compile(),
                kernel: RangeAwareBitPerm::compile(|x| p.permute(x)),
            },
            LshFunction::Approx(p) => CompiledLshFunction::Bit {
                tables: p.compile(),
                kernel: RangeAwareBitPerm::compile(|x| p.permute(x)),
            },
            LshFunction::Linear(p)
            | LshFunction::LinearClosedForm(p)
            | LshFunction::LinearDomain(p) => CompiledLshFunction::Linear(*p),
        }
    }
}

/// An evaluation-optimized LSH function (see [`LshFunction::compile`]).
/// Hash values are bit-identical to the source function's; only the cost
/// changes. The `hash_ablation` bench quantifies the difference.
#[derive(Debug, Clone)]
pub enum CompiledLshFunction {
    /// Fixed bit permutation (min-wise / approx families): byte tables for
    /// enumerating narrow intervals plus the range-aware kernel for wide
    /// ones.
    Bit {
        /// Table-driven evaluator — fastest per single value.
        tables: crate::grp::BitPerm,
        /// Greedy-descent evaluator — `O(32²)` per interval of any width.
        kernel: RangeAwareBitPerm,
    },
    /// Linear permutation evaluated with the closed-form interval minimum.
    Linear(LinearPerm),
}

/// Compiled bit-permutation intervals at most this wide are enumerated
/// through the byte tables (≈4 lookups per value) instead of running the
/// `O(32²)` greedy descent; the crossover sits near 128 values.
pub const COMPILED_ENUMERATE_WIDTH_MAX: u64 = 128;

impl CompiledLshFunction {
    /// Min-hash of a range set. Value-identical to the source function's
    /// [`LshFunction::min_hash`]; per-interval the bit families pick table
    /// enumeration or the range-aware kernel by width.
    #[inline]
    pub fn min_hash(&self, q: &RangeSet) -> u32 {
        match self {
            CompiledLshFunction::Bit { tables, kernel } => {
                assert!(!q.is_empty(), "min-hash of an empty range set");
                q.intervals()
                    .iter()
                    .map(|&(lo, hi)| {
                        if ((hi - lo) as u64) < COMPILED_ENUMERATE_WIDTH_MAX {
                            (lo..=hi).map(|v| tables.permute(v)).min().unwrap()
                        } else {
                            kernel.min_interval(lo, hi)
                        }
                    })
                    .min()
                    .unwrap()
            }
            CompiledLshFunction::Linear(p) => p.min_hash(q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_function_matches_kind() {
        let mut rng = DetRng::new(1);
        for kind in [
            LshFamilyKind::MinWise,
            LshFamilyKind::ApproxMinWise,
            LshFamilyKind::Linear,
            LshFamilyKind::LinearClosedForm,
            LshFamilyKind::LinearDomain,
        ] {
            let f = LshFunction::random(kind, &mut rng);
            assert_eq!(f.kind(), kind);
        }
    }

    #[test]
    fn linear_and_closed_form_hash_identically() {
        // Same RNG seed → same coefficients → identical hash values.
        let mut r1 = DetRng::new(9);
        let mut r2 = DetRng::new(9);
        let f_enum = LshFunction::random(LshFamilyKind::Linear, &mut r1);
        let f_cf = LshFunction::random(LshFamilyKind::LinearClosedForm, &mut r2);
        for (lo, hi) in [(0u32, 10u32), (30, 50), (100, 1500), (999, 999)] {
            let q = RangeSet::interval(lo, hi);
            assert_eq!(f_enum.min_hash(&q), f_cf.min_hash(&q));
        }
    }

    #[test]
    fn min_hash_is_min_of_permuted_values() {
        let mut rng = DetRng::new(5);
        let q = RangeSet::interval(100, 120);
        for kind in LshFamilyKind::PAPER_FAMILIES {
            let f = LshFunction::random(kind, &mut rng);
            let expect = q.iter().map(|v| f.permute(v)).min().unwrap();
            assert_eq!(f.min_hash(&q), expect, "kind {kind}");
        }
    }

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<&str> = [
            LshFamilyKind::MinWise,
            LshFamilyKind::ApproxMinWise,
            LshFamilyKind::Linear,
            LshFamilyKind::LinearClosedForm,
            LshFamilyKind::LinearDomain,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn domain_family_hashes_stay_small() {
        let mut rng = DetRng::new(4);
        let f = LshFunction::random(LshFamilyKind::LinearDomain, &mut rng);
        let q = RangeSet::interval(30, 50);
        assert!(f.min_hash(&q) < crate::linear::DOMAIN_MODULUS as u32);
        // Compiled path agrees.
        assert_eq!(f.compile().min_hash(&q), f.min_hash(&q));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", LshFamilyKind::Linear), "linear");
    }
}
