//! Locality sensitive hashing for range selection queries.
//!
//! This crate implements the hashing machinery of *Approximate Range
//! Selection Queries in Peer-to-Peer Systems* (Gupta, Agrawal, El Abbadi —
//! CIDR 2003):
//!
//! * [`RangeSet`] — the set-of-integers view of a selection range, with
//!   closed-form Jaccard and containment similarity;
//! * three min-hash families over that domain:
//!   * [`minwise::MinWisePerm`] — full min-wise independent permutations
//!     built from a log₂(b)-level bit-shuffle network (the paper's Fig. 3);
//!   * [`approx::ApproxMinWisePerm`] — only the first iteration of the
//!     network (one 32-bit key), the paper's cheap approximation;
//!   * [`linear::LinearPerm`] — `π(x) = a·x + b mod p`, with both the
//!     enumerate-every-value evaluation the paper measures and a closed-form
//!     `O(log p)` minimum over a contiguous interval;
//! * [`rangeaware::RangeAwareBitPerm`] — exact interval min-hash for the
//!   bit-shuffle families in `O(32²)` per interval regardless of width,
//!   replacing the enumeration the paper times in Fig. 5;
//! * [`group::HashGroups`] — the `l` groups × `k` functions amplification
//!   that turns per-function collision probability `p` into
//!   `1 − (1 − pᵏ)ˡ`, a step-like curve (the paper uses `k = 20`, `l = 5`).
//!
//! # Quick example
//!
//! ```
//! use ars_common::DetRng;
//! use ars_lsh::{HashGroups, LshFamilyKind, RangeSet};
//!
//! let mut rng = DetRng::new(42);
//! let groups = HashGroups::generate(LshFamilyKind::ApproxMinWise, 20, 5, &mut rng);
//!
//! let q = RangeSet::interval(30, 50);
//! let r = RangeSet::interval(30, 49);
//! // Similar ranges agree on at least one group identifier with high probability.
//! let ids_q = groups.identifiers(&q);
//! let ids_r = groups.identifiers(&r);
//! assert_eq!(ids_q.len(), 5);
//! assert!(q.jaccard(&r) > 0.9);
//! ```

#![warn(missing_docs)]

pub mod approx;
pub mod family;
pub mod fused;
pub mod group;
pub mod grp;
pub mod linear;
pub mod minwise;
pub mod probe;
pub mod range;
pub mod rangeaware;

pub use approx::ApproxMinWisePerm;
pub use family::{CompiledLshFunction, LshFamilyKind, LshFunction};
pub use fused::CompiledGroup;
pub use group::{match_probability, HashGroups};
pub use linear::LinearPerm;
pub use minwise::MinWisePerm;
pub use probe::ProbeCandidate;
pub use range::RangeSet;
pub use rangeaware::RangeAwareBitPerm;
