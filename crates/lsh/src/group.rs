//! Hash-function groups: the `l × k` amplification of §4.
//!
//! A *group* `g = {h₁ … h_k}` of functions drawn uniformly from the family
//! hashes a range set to the XOR of its `k` min-hashes (the paper's
//! pseudocode accumulates with `identifier[l] ^= h[i](Q)`). Two sets agree
//! on a group only if (up to a 2⁻³² accident) they agree on all `k`
//! functions — probability `pᵏ` — and agree on *at least one* of `l` groups
//! with probability `1 − (1 − pᵏ)ˡ`. With the paper's `k = 20`, `l = 5`
//! that curve approximates a step at similarity ≈ 0.9.

use crate::family::{CompiledLshFunction, LshFamilyKind, LshFunction};
use crate::fused::CompiledGroup;
use crate::range::RangeSet;
use ars_common::DetRng;

/// `l` groups of `k` hash functions over one family.
#[derive(Debug, Clone)]
pub struct HashGroups {
    kind: LshFamilyKind,
    groups: Vec<Vec<LshFunction>>,
    /// Value-identical fast evaluators — kept for the per-function
    /// ablation path ([`HashGroups::identifiers_per_function`]).
    compiled: Vec<Vec<CompiledLshFunction>>,
    /// Fused structure-of-arrays evaluators, used by
    /// [`HashGroups::identifiers`] (the reference path remains available
    /// for the ablation bench).
    fused: Vec<CompiledGroup>,
}

impl HashGroups {
    /// Draw `l` groups × `k` functions uniformly at random from `kind`.
    ///
    /// The paper's experiments use `k = 20`, `l = 5`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `l == 0`.
    pub fn generate(kind: LshFamilyKind, k: usize, l: usize, rng: &mut DetRng) -> HashGroups {
        assert!(k > 0 && l > 0, "k and l must be positive");
        let groups: Vec<Vec<LshFunction>> = (0..l)
            .map(|_| (0..k).map(|_| LshFunction::random(kind, rng)).collect())
            .collect();
        let compiled: Vec<Vec<CompiledLshFunction>> = groups
            .iter()
            .map(|g| g.iter().map(LshFunction::compile).collect())
            .collect();
        let fused = compiled.iter().map(|g| CompiledGroup::new(g)).collect();
        HashGroups {
            kind,
            groups,
            compiled,
            fused,
        }
    }

    /// The family the functions are drawn from.
    pub fn kind(&self) -> LshFamilyKind {
        self.kind
    }

    /// Functions per group (`k`).
    pub fn k(&self) -> usize {
        self.groups[0].len()
    }

    /// Number of groups (`l`).
    pub fn l(&self) -> usize {
        self.groups.len()
    }

    /// Total number of hash function evaluations per identifier computation
    /// (`k·l`; 100 for the paper's parameters).
    pub fn total_functions(&self) -> usize {
        self.k() * self.l()
    }

    /// Compute the `l` group identifiers for a range set: each is the XOR
    /// of the group's `k` min-hashes. This is the paper's querying-peer
    /// procedure (§4). Evaluated through the fused group kernels (values
    /// identical to [`HashGroups::identifiers_reference`]).
    pub fn identifiers(&self, q: &RangeSet) -> Vec<u32> {
        let mut out = vec![0u32; self.l()];
        self.identifiers_into(q, &mut out);
        out
    }

    /// Like [`HashGroups::identifiers`] but writing into a caller-provided
    /// buffer of length `l` — the steady-state query path allocates
    /// nothing on the heap (for groups up to
    /// [`crate::fused::FUSED_MAX_K`] functions).
    ///
    /// # Panics
    /// Panics if `out.len() != l` or `q` is empty.
    pub fn identifiers_into(&self, q: &RangeSet, out: &mut [u32]) {
        assert_eq!(out.len(), self.l(), "output buffer must have length l");
        for (o, g) in out.iter_mut().zip(&self.fused) {
            *o = g.identifier(q);
        }
    }

    /// Identifier computation through the per-function compiled loop —
    /// the pre-fusion fast path, kept as the ablation baseline the
    /// throughput bench compares against. Values identical to
    /// [`HashGroups::identifiers`].
    pub fn identifiers_per_function(&self, q: &RangeSet) -> Vec<u32> {
        self.compiled
            .iter()
            .map(|g| g.iter().fold(0u32, |acc, h| acc ^ h.min_hash(q)))
            .collect()
    }

    /// Reference identifier computation by full enumeration — the
    /// evaluation the paper's Fig. 5 times. Used by the ablation bench and
    /// as the oracle the fast paths are tested against.
    pub fn identifiers_reference(&self, q: &RangeSet) -> Vec<u32> {
        self.groups
            .iter()
            .map(|g| g.iter().fold(0u32, |acc, h| acc ^ h.min_hash_enumerate(q)))
            .collect()
    }

    /// Identifier of a single group `i` (0-based). Evaluated through the
    /// same fused kernel as [`HashGroups::identifiers`], so
    /// `group_identifier(i, q) == identifiers(q)[i]` always holds (it
    /// previously went through the uncompiled functions, which are
    /// value-identical but much slower).
    pub fn group_identifier(&self, i: usize, q: &RangeSet) -> u32 {
        self.fused[i].identifier(q)
    }

    /// Access the raw functions (used by ablation benches).
    pub fn groups(&self) -> &[Vec<LshFunction>] {
        &self.groups
    }

    /// Access the fused group evaluators (used by ablation benches).
    pub fn fused_groups(&self) -> &[CompiledGroup] {
        &self.fused
    }
}

/// `Pr[Q and R share at least one group identifier]` given per-function
/// collision probability `p` (the Jaccard similarity): `1 − (1 − pᵏ)ˡ`.
pub fn match_probability(p: f64, k: usize, l: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    1.0 - (1.0 - p.powi(k as i32)).powi(l as i32)
}

/// The similarity at which the amplified curve crosses 0.5 — a "step
/// location" diagnostic. Solved analytically: `p* = (1 − 2^(−1/l))^(1/k)`.
pub fn step_location(k: usize, l: usize) -> f64 {
    (1.0 - 0.5f64.powf(1.0 / l as f64)).powf(1.0 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let mut rng = DetRng::new(1);
        let g = HashGroups::generate(LshFamilyKind::ApproxMinWise, 20, 5, &mut rng);
        assert_eq!(g.k(), 20);
        assert_eq!(g.l(), 5);
        assert_eq!(g.total_functions(), 100);
        assert_eq!(g.kind(), LshFamilyKind::ApproxMinWise);
        let ids = g.identifiers(&RangeSet::interval(0, 10));
        assert_eq!(ids.len(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_rejected() {
        let mut rng = DetRng::new(1);
        HashGroups::generate(LshFamilyKind::Linear, 0, 5, &mut rng);
    }

    #[test]
    fn compiled_identifiers_equal_reference() {
        let mut rng = DetRng::new(77);
        for kind in LshFamilyKind::PAPER_FAMILIES {
            let g = HashGroups::generate(kind, 6, 3, &mut rng);
            for (lo, hi) in [(0u32, 10u32), (30, 50), (100, 400), (999, 1000)] {
                let q = RangeSet::interval(lo, hi);
                assert_eq!(
                    g.identifiers(&q),
                    g.identifiers_reference(&q),
                    "kind {kind} range [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn identifiers_deterministic() {
        let mut rng = DetRng::new(2);
        let g = HashGroups::generate(LshFamilyKind::Linear, 4, 3, &mut rng);
        let q = RangeSet::interval(30, 50);
        assert_eq!(g.identifiers(&q), g.identifiers(&q));
    }

    #[test]
    fn identical_ranges_share_all_identifiers() {
        let mut rng = DetRng::new(3);
        let g = HashGroups::generate(LshFamilyKind::MinWise, 5, 4, &mut rng);
        let q = RangeSet::interval(100, 200);
        let r = RangeSet::interval(100, 200);
        assert_eq!(g.identifiers(&q), g.identifiers(&r));
    }

    #[test]
    fn group_identifier_matches_identifiers() {
        // Pins the bugfix: group_identifier used to evaluate through the
        // *uncompiled* functions while identifiers used the compiled set;
        // both now share the fused kernels, for every paper family.
        let mut rng = DetRng::new(4);
        for kind in LshFamilyKind::PAPER_FAMILIES {
            let g = HashGroups::generate(kind, 3, 4, &mut rng);
            for q in [
                RangeSet::interval(5, 25),
                RangeSet::interval(0, 1000),
                RangeSet::from_intervals([(10, 40), (500, 700)]),
            ] {
                let ids = g.identifiers(&q);
                for (i, &id) in ids.iter().enumerate() {
                    assert_eq!(id, g.group_identifier(i, &q), "kind {kind} group {i}");
                }
            }
        }
    }

    #[test]
    fn fused_identifiers_match_per_function_loop() {
        let mut rng = DetRng::new(8);
        for kind in LshFamilyKind::PAPER_FAMILIES {
            let g = HashGroups::generate(kind, 6, 3, &mut rng);
            for q in [
                RangeSet::interval(30, 50),
                RangeSet::interval(200, 300),
                RangeSet::interval(0, 100_000), // wide: kernel fallback
                RangeSet::from_intervals([(0, 90), (250, 270), (5_000, 9_000)]),
            ] {
                assert_eq!(
                    g.identifiers(&q),
                    g.identifiers_per_function(&q),
                    "kind {kind} query {q}"
                );
            }
        }
    }

    #[test]
    fn identifiers_into_writes_caller_buffer() {
        let mut rng = DetRng::new(10);
        let g = HashGroups::generate(LshFamilyKind::MinWise, 4, 5, &mut rng);
        let q = RangeSet::interval(30, 50);
        let mut buf = [0u32; 5];
        g.identifiers_into(&q, &mut buf);
        assert_eq!(buf.to_vec(), g.identifiers(&q));
    }

    #[test]
    #[should_panic(expected = "length l")]
    fn identifiers_into_rejects_wrong_length() {
        let mut rng = DetRng::new(10);
        let g = HashGroups::generate(LshFamilyKind::Linear, 4, 5, &mut rng);
        let mut buf = [0u32; 4];
        g.identifiers_into(&RangeSet::interval(0, 10), &mut buf);
    }

    #[test]
    fn dissimilar_ranges_rarely_collide() {
        let mut rng = DetRng::new(5);
        let g = HashGroups::generate(LshFamilyKind::ApproxMinWise, 20, 5, &mut rng);
        let q = RangeSet::interval(0, 100);
        let r = RangeSet::interval(500, 600); // similarity 0
        let ids_q = g.identifiers(&q);
        let ids_r = g.identifiers(&r);
        let shared = ids_q.iter().zip(&ids_r).filter(|(a, b)| a == b).count();
        assert_eq!(shared, 0);
    }

    #[test]
    fn very_similar_ranges_usually_collide() {
        // J = 100/101 ≈ 0.99; p^20 ≈ 0.82; 1-(1-p^20)^5 ≈ 0.9998.
        let mut rng = DetRng::new(6);
        let mut hits = 0;
        let trials = 40;
        for _ in 0..trials {
            let g = HashGroups::generate(LshFamilyKind::MinWise, 20, 5, &mut rng);
            let q = RangeSet::interval(0, 100);
            let r = RangeSet::interval(0, 99);
            let ids_q = g.identifiers(&q);
            let ids_r = g.identifiers(&r);
            if ids_q.iter().zip(&ids_r).any(|(a, b)| a == b) {
                hits += 1;
            }
        }
        assert!(hits >= trials * 8 / 10, "only {hits}/{trials} collided");
    }

    #[test]
    fn match_probability_curve() {
        // k=20, l=5 approximates a step at ~0.9 (the paper's §5.1 choice).
        assert!(match_probability(0.5, 20, 5) < 0.001);
        assert!(match_probability(0.8, 20, 5) < 0.06);
        assert!(match_probability(0.95, 20, 5) > 0.85);
        assert!(match_probability(1.0, 20, 5) == 1.0);
        assert!(match_probability(0.0, 20, 5) == 0.0);
    }

    #[test]
    fn step_location_near_point_nine() {
        let s = step_location(20, 5);
        assert!(
            (0.85..0.93).contains(&s),
            "step at {s:.3}, expected ≈ 0.9 for k=20, l=5"
        );
        // Sanity: the match probability at the step is 0.5 by construction.
        assert!((match_probability(s, 20, 5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn match_probability_monotone_in_p() {
        let mut last = 0.0;
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            let mp = match_probability(p, 20, 5);
            assert!(mp >= last);
            last = mp;
        }
    }
}
