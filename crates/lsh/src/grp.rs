//! The bit-shuffle ("sheep-and-goats") permutation step of the paper's
//! min-wise permutation network (Fig. 3).
//!
//! One step takes a `b`-bit block and a `b`-bit key with exactly `b/2` bits
//! set. Bits of the block at positions where the key is 1 move — order
//! preserved — to the upper half of the block; the remaining bits move to
//! the lower half. This is the classic GRP (group) operation; with a
//! balanced key it is a bijection on `b`-bit values, and composing
//! `log₂(b)` levels of it (block sizes `b, b/2, …, 2`, the same sub-key
//! replicated across all blocks of a level) yields the paper's
//! approximately min-wise independent permutation family.

use ars_common::DetRng;

/// Apply one GRP step to a single `b`-bit block (`b ≤ 32`).
///
/// Bits where `key` is 1 gather into the upper part of the block in their
/// original order; bits where `key` is 0 gather into the lower part.
/// `x` and `key` must fit in `b` bits.
#[inline]
pub fn grp_one(x: u32, key: u32, b: u32) -> u32 {
    debug_assert!((1..=32).contains(&b));
    debug_assert!(b == 32 || x < (1 << b));
    debug_assert!(b == 32 || key < (1 << b));
    let mut hi: u32 = 0;
    let mut lo: u32 = 0;
    let mut n_lo: u32 = 0;
    // Scan from the most significant bit down so order is preserved.
    for i in (0..b).rev() {
        let bit = (x >> i) & 1;
        if (key >> i) & 1 == 1 {
            hi = (hi << 1) | bit;
        } else {
            lo = (lo << 1) | bit;
            n_lo += 1;
        }
    }
    if n_lo == 32 {
        // key == 0 (degenerate, only possible for unbalanced keys): identity.
        lo
    } else {
        (hi << n_lo) | lo
    }
}

/// Inverse of [`grp_one`]: scatter the gathered bits back to their original
/// positions. Used to verify bijectivity.
#[inline]
pub fn ungrp_one(y: u32, key: u32, b: u32) -> u32 {
    debug_assert!((1..=32).contains(&b));
    let ones = key.count_ones().min(b);
    let n_lo = b - ones;
    let mut x: u32 = 0;
    // Position just above the top of the low group, counting down as we
    // consume "hi" bits; low bits are consumed upward from bit 0.
    let mut hi_next = b; // next hi source bit is y >> (hi_next-1) after decrement
    let mut lo_next = n_lo; // next lo source bit is y >> (lo_next-1) after decrement
    for i in (0..b).rev() {
        let bit = if (key >> i) & 1 == 1 {
            hi_next -= 1;
            (y >> hi_next) & 1
        } else {
            lo_next -= 1;
            (y >> lo_next) & 1
        };
        x |= bit << i;
    }
    x
}

/// Apply the same `block_bits`-wide GRP sub-key to every block of a 32-bit
/// word. `key` must already be replicated across blocks (see
/// [`replicate_key`]).
#[inline]
pub fn grp_blocks(x: u32, key: u32, block_bits: u32) -> u32 {
    debug_assert!(block_bits.is_power_of_two() && (2..=32).contains(&block_bits));
    if block_bits == 32 {
        return grp_one(x, key, 32);
    }
    let mask: u32 = (1u32 << block_bits) - 1;
    let mut out: u32 = 0;
    let mut shift = 0;
    while shift < 32 {
        let xb = (x >> shift) & mask;
        let kb = (key >> shift) & mask;
        out |= grp_one(xb, kb, block_bits) << shift;
        shift += block_bits;
    }
    out
}

/// Replicate a `block_bits`-wide sub-key across a 32-bit word.
#[inline]
pub fn replicate_key(sub_key: u32, block_bits: u32) -> u32 {
    debug_assert!(block_bits.is_power_of_two() && (2..=32).contains(&block_bits));
    if block_bits == 32 {
        return sub_key;
    }
    debug_assert!(sub_key < (1 << block_bits));
    let mut out = 0u32;
    let mut shift = 0;
    while shift < 32 {
        out |= sub_key << shift;
        shift += block_bits;
    }
    out
}

/// A compiled fixed bit-position permutation of 32-bit values.
///
/// Every GRP network (any number of levels, any keys) moves bits to fixed
/// positions, so the whole network can be evaluated as four byte-indexed
/// table lookups instead of per-bit loops — a large constant-factor win
/// the hashing ablation bench quantifies. Built from any linear-over-XOR
/// bit permutation via [`BitPerm::compile`].
#[derive(Clone)]
pub struct BitPerm {
    /// `tables[i][b]` = image of byte `b` placed at byte position `i`.
    tables: Box<[[u32; 256]; 4]>,
}

impl std::fmt::Debug for BitPerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitPerm").finish_non_exhaustive()
    }
}

impl BitPerm {
    /// Compile a bit-position permutation given as a closure. The closure
    /// must satisfy `f(x ^ y) == f(x) ^ f(y)` and map single-bit values to
    /// single-bit values (true for any GRP network); this is checked.
    ///
    /// # Panics
    /// Panics if `f` is not a bit-position permutation.
    pub fn compile(f: impl Fn(u32) -> u32) -> BitPerm {
        // Images of the 32 unit bits.
        let mut bit_image = [0u32; 32];
        let mut seen: u32 = 0;
        for (i, img) in bit_image.iter_mut().enumerate() {
            let y = f(1u32 << i);
            assert_eq!(y.count_ones(), 1, "f does not permute bit positions");
            assert_eq!(seen & y, 0, "f maps two bits to the same position");
            seen |= y;
            *img = y;
        }
        assert_eq!(f(0), 0, "f(0) must be 0 for a bit permutation");
        let mut tables = Box::new([[0u32; 256]; 4]);
        for byte_pos in 0..4 {
            for b in 0..256u32 {
                let mut out = 0;
                for bit in 0..8 {
                    if (b >> bit) & 1 == 1 {
                        out |= bit_image[byte_pos * 8 + bit];
                    }
                }
                tables[byte_pos][b as usize] = out;
            }
        }
        BitPerm { tables }
    }

    /// Apply the permutation: four table lookups.
    #[inline]
    pub fn permute(&self, x: u32) -> u32 {
        self.tables[0][(x & 0xFF) as usize]
            | self.tables[1][((x >> 8) & 0xFF) as usize]
            | self.tables[2][((x >> 16) & 0xFF) as usize]
            | self.tables[3][(x >> 24) as usize]
    }
}

/// Draw a balanced `b`-bit key: exactly `b/2` bits set, uniformly at random.
pub fn random_balanced_key(rng: &mut DetRng, b: u32) -> u32 {
    debug_assert!((2..=32).contains(&b) && b.is_multiple_of(2));
    let positions = rng.sample_indices(b as usize, (b / 2) as usize);
    positions.into_iter().fold(0u32, |k, p| k | (1 << p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_figure_3a_example() {
        // The structure of Fig. 3(a): an 8-bit key with 4 ones gathers the
        // selected bits high. key = 0b0110_1010 selects bits 6,5,3,1 (MSB
        // numbering as drawn); with x = 0b1010_0010:
        //   selected (key=1) bits of x, MSB→LSB order: bits 6,5,3,1 = 0,1,0,1
        //   unselected bits 7,4,2,0 = 1,0,0,0
        // result = 0101_1000
        let x = 0b1010_0010;
        let key = 0b0110_1010;
        assert_eq!(grp_one(x, key, 8), 0b0101_1000);
    }

    #[test]
    fn grp_identity_cases() {
        // Key selecting the top half leaves a value whose set bits are
        // already partitioned untouched.
        let key = 0b1111_0000u32;
        assert_eq!(grp_one(0b1011_0101, key, 8), 0b1011_0101);
        // Zero key: everything goes to "low" in order — identity.
        assert_eq!(grp_one(0xAB, 0, 8), 0xAB);
        // All-ones key: everything goes to "high" in order — identity.
        assert_eq!(grp_one(0xAB, 0xFF, 8), 0xAB);
    }

    #[test]
    fn grp_is_bijection_on_8_bits() {
        let mut rng = DetRng::new(1);
        for _ in 0..20 {
            let key = random_balanced_key(&mut rng, 8);
            let mut seen = [false; 256];
            for x in 0u32..256 {
                let y = grp_one(x, key, 8) as usize;
                assert!(!seen[y], "collision at key {key:#010b}");
                seen[y] = true;
            }
        }
    }

    #[test]
    fn ungrp_inverts_grp_exhaustive_8bit() {
        let mut rng = DetRng::new(2);
        for _ in 0..10 {
            let key = random_balanced_key(&mut rng, 8);
            for x in 0u32..256 {
                let y = grp_one(x, key, 8);
                assert_eq!(ungrp_one(y, key, 8), x);
            }
        }
    }

    #[test]
    fn grp_blocks_applies_per_block() {
        // Two independent 4-bit blocks with the same sub-key.
        let sub = 0b1010u32; // gathers bits 3,1 high
        let key = replicate_key(sub, 4);
        assert_eq!(key & 0xFF, 0b1010_1010);
        let x = 0x0000_00F0u32; // block1 = 0xF, block0 = 0x0
        let y = grp_blocks(x, key, 4);
        // 0xF stays 0xF under any permutation of its bits, 0x0 stays 0x0.
        assert_eq!(y, x);
        // A mixed block: x = 0b0110 with key 0b1010 → hi bits (3,1)=(0,1),
        // lo bits (2,0)=(1,0) → 01_10 = 0b0110.
        assert_eq!(grp_blocks(0b0110, key, 4), 0b0110);
        // x = 0b0010 → hi=(0,1) lo=(0,0) → 0b0100
        assert_eq!(grp_blocks(0b0010, key, 4), 0b0100);
    }

    #[test]
    fn replicate_key_patterns() {
        assert_eq!(replicate_key(0b10, 2), 0xAAAA_AAAA);
        assert_eq!(replicate_key(0b1100, 4), 0xCCCC_CCCC);
        assert_eq!(replicate_key(0x0F, 8), 0x0F0F_0F0F);
        assert_eq!(replicate_key(0xFF, 8), 0xFFFF_FFFF);
        assert_eq!(replicate_key(0xDEAD_BEEF, 32), 0xDEAD_BEEF);
    }

    #[test]
    fn random_balanced_key_has_half_ones() {
        let mut rng = DetRng::new(3);
        for b in [2u32, 4, 8, 16, 32] {
            for _ in 0..50 {
                let k = random_balanced_key(&mut rng, b);
                assert_eq!(k.count_ones(), b / 2, "b={b} key={k:#b}");
                if b < 32 {
                    assert!(k < (1 << b));
                }
            }
        }
    }

    #[test]
    fn random_balanced_keys_vary() {
        let mut rng = DetRng::new(4);
        let keys: std::collections::HashSet<u32> = (0..100)
            .map(|_| random_balanced_key(&mut rng, 32))
            .collect();
        assert!(keys.len() > 90, "keys barely vary: {}", keys.len());
    }

    proptest! {
        #[test]
        fn grp32_roundtrip(x in any::<u32>(), seed in any::<u64>()) {
            let mut rng = DetRng::new(seed);
            let key = random_balanced_key(&mut rng, 32);
            let y = grp_one(x, key, 32);
            prop_assert_eq!(ungrp_one(y, key, 32), x);
        }

        #[test]
        fn grp_preserves_popcount(x in any::<u32>(), seed in any::<u64>()) {
            let mut rng = DetRng::new(seed);
            let key = random_balanced_key(&mut rng, 32);
            prop_assert_eq!(grp_one(x, key, 32).count_ones(), x.count_ones());
        }

        #[test]
        fn grp_blocks_roundtrip_via_injectivity(
            a in any::<u32>(), b in any::<u32>(), seed in any::<u64>(), bits in prop::sample::select(vec![2u32,4,8,16])
        ) {
            let mut rng = DetRng::new(seed);
            let key = replicate_key(random_balanced_key(&mut rng, bits), bits);
            let ya = grp_blocks(a, key, bits);
            let yb = grp_blocks(b, key, bits);
            prop_assert_eq!(a == b, ya == yb);
        }
    }
}
