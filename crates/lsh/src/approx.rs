//! Approximate min-wise independent permutations: only the *first*
//! iteration of the permutation network (the paper's §5.1).
//!
//! A single balanced 32-bit key drives one GRP step over the whole word.
//! The family is representable with a single 32-bit integer and is
//! correspondingly cheaper to evaluate than the full 5-level network, at
//! some cost in min-wise independence quality — exactly the trade-off the
//! paper's Figs. 5–8 evaluate.

use crate::grp::{grp_one, random_balanced_key, BitPerm};
use crate::range::RangeSet;
use crate::rangeaware::RangeAwareBitPerm;
use ars_common::DetRng;

/// An approximate min-wise permutation: one GRP step with a balanced
/// 32-bit key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxMinWisePerm {
    key: u32,
}

impl ApproxMinWisePerm {
    /// Draw a random balanced key.
    pub fn random(rng: &mut DetRng) -> ApproxMinWisePerm {
        ApproxMinWisePerm {
            key: random_balanced_key(rng, 32),
        }
    }

    /// Build from an explicit key.
    ///
    /// # Panics
    /// Panics if the key is not balanced (exactly 16 bits set).
    pub fn from_key(key: u32) -> ApproxMinWisePerm {
        assert_eq!(key.count_ones(), 16, "key {key:#x} is not balanced");
        ApproxMinWisePerm { key }
    }

    /// The single 32-bit key.
    pub fn key(&self) -> u32 {
        self.key
    }

    /// Apply the one-step permutation.
    #[inline]
    pub fn permute(&self, x: u32) -> u32 {
        grp_one(x, self.key, 32)
    }

    /// Min-hash of a range set. Small sets are enumerated; larger ones go
    /// through a [`RangeAwareBitPerm`] built on the fly. Values are
    /// identical to [`ApproxMinWisePerm::min_hash_enumerate`].
    pub fn min_hash(&self, q: &RangeSet) -> u32 {
        assert!(!q.is_empty(), "min-hash of an empty range set");
        if q.len() <= crate::rangeaware::ENUMERATE_WIDTH_MAX {
            q.iter().map(|v| self.permute(v)).min().unwrap()
        } else {
            RangeAwareBitPerm::compile(|x| self.permute(x)).min_hash(q)
        }
    }

    /// Min-hash by enumerating every value of the set — the paper's Fig. 5
    /// evaluation, kept as the oracle for the range-aware path.
    pub fn min_hash_enumerate(&self, q: &RangeSet) -> u32 {
        assert!(!q.is_empty(), "min-hash of an empty range set");
        q.iter().map(|v| self.permute(v)).min().unwrap()
    }

    /// Compile into a table-driven [`BitPerm`] (identical outputs).
    pub fn compile(&self) -> BitPerm {
        BitPerm::compile(|x| self.permute(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minwise::MinWisePerm;
    use proptest::prelude::*;

    #[test]
    fn compiled_matches_naive() {
        let mut rng = DetRng::new(31);
        let p = ApproxMinWisePerm::random(&mut rng);
        let c = p.compile();
        for _ in 0..1000 {
            let x = rng.next_u32();
            assert_eq!(c.permute(x), p.permute(x));
        }
    }

    #[test]
    fn key_is_balanced() {
        let mut rng = DetRng::new(1);
        for _ in 0..50 {
            let p = ApproxMinWisePerm::random(&mut rng);
            assert_eq!(p.key().count_ones(), 16);
        }
    }

    #[test]
    #[should_panic(expected = "not balanced")]
    fn unbalanced_rejected() {
        ApproxMinWisePerm::from_key(0b111);
    }

    #[test]
    fn matches_first_level_of_full_network() {
        // The approximate family is by definition level 0 of the full
        // network: the same 32-bit key must produce the same output as a
        // MinWisePerm whose deeper levels are identity-like comparisons.
        let mut rng = DetRng::new(7);
        let approx = ApproxMinWisePerm::random(&mut rng);
        // Compare against grp_one directly (definitional).
        for x in [0u32, 1, 0xFFFF_FFFF, 0x1234_5678, 999] {
            assert_eq!(approx.permute(x), grp_one(x, approx.key(), 32));
        }
    }

    #[test]
    fn cheaper_but_same_interface_as_full() {
        let mut rng = DetRng::new(3);
        let full = MinWisePerm::random(&mut rng);
        let approx = ApproxMinWisePerm::random(&mut rng);
        let q = RangeSet::interval(10, 60);
        // Both produce a 32-bit identifier for the same input.
        let _ = full.min_hash(&q);
        let _ = approx.min_hash(&q);
    }

    #[test]
    fn collision_probability_is_locality_sensitive() {
        // Like the full network, a single GRP step permutes bit positions
        // (0 → 0, popcount preserved), so exact Jaccard tracking does not
        // hold; assert the monotone separation the system depends on.
        let rate = |r: &RangeSet, seed: u64| {
            let q = RangeSet::interval(100, 199);
            let mut rng = DetRng::new(seed);
            let trials = 2000;
            (0..trials)
                .filter(|_| {
                    let p = ApproxMinWisePerm::random(&mut rng);
                    p.min_hash(&q) == p.min_hash(r)
                })
                .count() as f64
                / trials as f64
        };
        let c_hi = rate(&RangeSet::interval(100, 189), 42); // J = 0.9
        let c_mid = rate(&RangeSet::interval(150, 249), 43); // J = 1/3
        let c_lo = rate(&RangeSet::interval(500, 599), 44); // J = 0
        assert!(c_hi > 0.5, "high-similarity collision rate {c_hi:.3}");
        assert!(c_hi > c_mid, "hi {c_hi:.3} vs mid {c_mid:.3}");
        // Popcount bias makes medium-similarity collisions vanishingly rare;
        // see the matching comment in minwise.rs.
        assert!(c_mid >= c_lo, "mid {c_mid:.3} vs disjoint {c_lo:.3}");
        assert!(c_lo < 0.05, "disjoint collision rate {c_lo:.3}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn permute_injective(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
            let mut rng = DetRng::new(seed);
            let p = ApproxMinWisePerm::random(&mut rng);
            prop_assert_eq!(a == b, p.permute(a) == p.permute(b));
        }

        #[test]
        fn min_hash_subset_dominates(seed in any::<u64>(), lo in 0u32..500, w in 1u32..200, extra in 1u32..200) {
            let mut rng = DetRng::new(seed);
            let p = ApproxMinWisePerm::random(&mut rng);
            let small = RangeSet::interval(lo, lo + w);
            let big = RangeSet::interval(lo, lo + w + extra);
            prop_assert!(p.min_hash(&big) <= p.min_hash(&small));
        }
    }
}
