//! Linear permutations `π(x) = a·x + b mod p` (the paper's §5.1, after
//! Broder et al.).
//!
//! The paper evaluates this family by enumerating every value of the range
//! set ([`LinearPerm::min_hash_enumerate`]); because an affine map is
//! monotone-with-wraparound over a contiguous interval, the minimum can
//! also be computed in `O(log p)` per interval without touching the values
//! ([`LinearPerm::min_hash`]) — an optimization we benchmark as an ablation
//! (DESIGN.md §6.2). Both must agree; a property test enforces it.

use crate::range::RangeSet;
use ars_common::DetRng;

/// The modulus: the largest prime below 2³², so identifiers stay in the
/// 32-bit identifier space. (2³² − 5 = 4294967291.)
pub const MODULUS: u64 = 4_294_967_291;

/// A small modulus just above the paper's §5.1 attribute domain
/// (`[0, 1000]`): permutations of the *domain* rather than of the 32-bit
/// space. Min-hashes then live in `[0, 1009)`, so group identifiers
/// (XORs of 20 of them) occupy only ~10 bits — dissimilar ranges collide
/// far more often, giving the "loose matching" behaviour the paper
/// describes for its linear permutations (poor Fig. 7 similarity but the
/// best Fig. 8 complete-answer rate).
pub const DOMAIN_MODULUS: u64 = 1009;

/// A linear (affine) permutation of `Z_p`, `p = `[`MODULUS`].
///
/// Values in `[p, 2³²)` (the top 5 values of the `u32` domain) alias values
/// in `[0, 5)`; the attribute domains used in the paper (e.g. ages,
/// dates-as-integers) are far below `p`, so this never matters in practice,
/// but callers mapping full 32-bit data through this family should be aware
/// the bijection holds on `[0, p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearPerm {
    a: u64,
    b: u64,
    m: u64,
}

impl LinearPerm {
    /// Draw random coefficients over the 32-bit modulus:
    /// `a ∈ [1, p)`, `b ∈ [0, p)`.
    pub fn random(rng: &mut DetRng) -> LinearPerm {
        LinearPerm::random_with_modulus(rng, MODULUS)
    }

    /// Draw random coefficients over an arbitrary prime modulus (e.g.
    /// [`DOMAIN_MODULUS`] for permutations of the attribute domain).
    pub fn random_with_modulus(rng: &mut DetRng, m: u64) -> LinearPerm {
        assert!((2..=MODULUS).contains(&m), "modulus out of range");
        let a = 1 + rng.gen_range_u64(m - 1);
        let b = rng.gen_range_u64(m);
        LinearPerm { a, b, m }
    }

    /// Build from explicit coefficients over the 32-bit modulus.
    ///
    /// # Panics
    /// Panics if `a == 0` (not a permutation) or a coefficient is ≥ p.
    pub fn new(a: u64, b: u64) -> LinearPerm {
        LinearPerm::with_modulus(a, b, MODULUS)
    }

    /// Build from explicit coefficients and modulus.
    ///
    /// # Panics
    /// Panics if `a == 0`, a coefficient is ≥ m, or m is out of range.
    pub fn with_modulus(a: u64, b: u64, m: u64) -> LinearPerm {
        assert!((2..=MODULUS).contains(&m), "modulus out of range");
        assert!(a != 0, "a = 0 is not a permutation");
        assert!(a < m && b < m, "coefficients must be < p");
        LinearPerm { a, b, m }
    }

    /// Coefficients `(a, b)`.
    pub fn coefficients(&self) -> (u64, u64) {
        (self.a, self.b)
    }

    /// The modulus `p`.
    pub fn modulus(&self) -> u64 {
        self.m
    }

    /// Apply the permutation to one value.
    #[inline]
    pub fn permute(&self, x: u32) -> u32 {
        ((self.a as u128 * x as u128 + self.b as u128) % self.m as u128) as u32
    }

    /// Min-hash by enumerating every value of the set — the evaluation the
    /// paper's Fig. 5 times. `O(|Q|)`.
    pub fn min_hash_enumerate(&self, q: &RangeSet) -> u32 {
        assert!(!q.is_empty(), "min-hash of an empty range set");
        q.iter().map(|v| self.permute(v)).min().unwrap()
    }

    /// Min-hash in closed form: `O(log p)` per interval of the set.
    pub fn min_hash(&self, q: &RangeSet) -> u32 {
        assert!(!q.is_empty(), "min-hash of an empty range set");
        q.intervals()
            .iter()
            .map(|&(lo, hi)| {
                // min over x in [lo, hi] of (a·x + b) mod p
                //   = min over i in [0, hi-lo] of (a·i + c) mod p,
                //     c = (a·lo + b) mod p.
                let c = ((self.a as u128 * lo as u128 + self.b as u128) % self.m as u128) as u64;
                min_affine_mod(self.a, c, self.m, (hi - lo) as u64) as u32
            })
            .min()
            .unwrap()
    }
}

/// Minimum of `(a·i + b) mod m` over `i ∈ [0, n]` (inclusive), in
/// `O(log m)` time.
///
/// Works by observing that between wraparounds the sequence is increasing,
/// so the minimum is the start of some "ramp"; ramp-start values themselves
/// form an affine-mod sequence with modulus `a`, giving a Euclid-style
/// recursion `(m, a) → (a, m mod a)`.
///
/// # Panics
/// Panics if `m == 0`.
pub fn min_affine_mod(a: u64, b: u64, m: u64, n: u64) -> u64 {
    assert!(m > 0, "modulus must be positive");
    let mut a = a % m;
    let mut b = b % m;
    let mut m = m;
    let mut n = n;
    let mut best = u64::MAX;
    loop {
        // The first ramp starts at i = 0 with value b.
        best = best.min(b);
        if n == 0 || a == 0 {
            return best;
        }
        // Number of wraparounds within i ∈ [0, n].
        let wraps = ((a as u128 * n as u128 + b as u128) / m as u128) as u64;
        if wraps == 0 {
            return best;
        }
        // Ramp j (j = 1..=wraps) starts at value v_j = (b − j·m) mod a,
        // i.e. an affine sequence in j with step c = (−m) mod a and first
        // element v_1 = (b mod a + c) mod a. Recurse over j − 1 ∈ [0, wraps−1].
        let c = (a - m % a) % a;
        let v1 = (b % a + c) % a;
        n = wraps - 1;
        b = v1;
        m = a;
        a = c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn modulus_is_prime() {
        // Trial division up to sqrt(2^32-5) ≈ 65536.
        let m = MODULUS;
        assert!(!m.is_multiple_of(2));
        let mut d = 3u64;
        while d * d <= m {
            assert!(!m.is_multiple_of(d), "MODULUS divisible by {d}");
            d += 2;
        }
    }

    #[test]
    fn permute_is_bijection_on_small_sample() {
        let mut rng = DetRng::new(1);
        let p = LinearPerm::random(&mut rng);
        let mut outs: Vec<u32> = (0u32..10_000).map(|x| p.permute(x)).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn zero_a_rejected() {
        LinearPerm::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "must be < p")]
    fn oversized_coefficient_rejected() {
        LinearPerm::new(MODULUS, 0);
    }

    #[test]
    fn identity_permutation() {
        let p = LinearPerm::new(1, 0);
        for x in [0u32, 1, 1000, 4_000_000_000] {
            assert_eq!(p.permute(x), x);
        }
        let q = RangeSet::interval(30, 50);
        assert_eq!(p.min_hash(&q), 30);
        assert_eq!(p.min_hash_enumerate(&q), 30);
    }

    #[test]
    fn min_affine_mod_worked_examples() {
        // a=3, b=1, m=10, i in 0..=4 → 1,4,7,0,3 → 0
        assert_eq!(min_affine_mod(3, 1, 10, 4), 0);
        // a=5, b=3, m=7, i in 0..=5 → 3,1,6,4,2,0 → 0
        assert_eq!(min_affine_mod(5, 3, 7, 5), 0);
        // a=2, b=0, m=7, i in 0..=3 → 0,2,4,6 → 0 (no wrap)
        assert_eq!(min_affine_mod(2, 0, 7, 3), 0);
        // a=4, b=5, m=9, i in 0..=2 → 5, 0, 4 → 0
        assert_eq!(min_affine_mod(4, 5, 9, 2), 0);
        // single point
        assert_eq!(min_affine_mod(123, 456, 1000, 0), 456);
    }

    #[test]
    fn min_affine_mod_matches_brute_force_grid() {
        for m in [2u64, 3, 7, 10, 16, 97] {
            for a in 0..m.min(20) {
                for b in 0..m.min(20) {
                    for n in 0..30u64 {
                        let brute = (0..=n).map(|i| (a * i + b) % m).min().unwrap();
                        assert_eq!(min_affine_mod(a, b, m, n), brute, "a={a} b={b} m={m} n={n}");
                    }
                }
            }
        }
    }

    #[test]
    fn closed_form_matches_enumeration() {
        let mut rng = DetRng::new(5);
        for _ in 0..50 {
            let p = LinearPerm::random(&mut rng);
            let lo = rng.gen_inclusive_u32(0, 5000);
            let hi = lo + rng.gen_inclusive_u32(0, 2000);
            let q = RangeSet::interval(lo, hi);
            assert_eq!(p.min_hash(&q), p.min_hash_enumerate(&q));
        }
    }

    #[test]
    fn closed_form_matches_enumeration_multi_interval() {
        let mut rng = DetRng::new(6);
        for _ in 0..30 {
            let p = LinearPerm::random(&mut rng);
            let q = RangeSet::from_intervals([(10, 50), (100, 130), (1000, 1001)]);
            assert_eq!(p.min_hash(&q), p.min_hash_enumerate(&q));
            let _ = rng.next_u64();
        }
    }

    #[test]
    fn closed_form_handles_huge_ranges() {
        // Enumeration would take ~2³² steps; the closed form is instant.
        let mut rng = DetRng::new(7);
        let p = LinearPerm::random(&mut rng);
        let q = RangeSet::interval(0, MODULUS as u32 - 1);
        // A permutation of [0, p) over the whole domain attains 0.
        assert_eq!(p.min_hash(&q), 0);
    }

    #[test]
    fn domain_modulus_permutes_small_domain() {
        let mut rng = DetRng::new(12);
        let p = LinearPerm::random_with_modulus(&mut rng, DOMAIN_MODULUS);
        assert_eq!(p.modulus(), DOMAIN_MODULUS);
        // Bijection on [0, 1009).
        let mut outs: Vec<u32> = (0..DOMAIN_MODULUS as u32).map(|x| p.permute(x)).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), DOMAIN_MODULUS as usize);
        assert!(outs.iter().all(|&v| v < DOMAIN_MODULUS as u32));
        // Closed form matches enumeration on the small modulus too.
        for (lo, hi) in [(0u32, 50u32), (30, 50), (900, 1000)] {
            let q = RangeSet::interval(lo, hi);
            assert_eq!(p.min_hash(&q), p.min_hash_enumerate(&q));
        }
    }

    #[test]
    fn collision_probability_tracks_jaccard() {
        let q = RangeSet::interval(0, 99);
        let r = RangeSet::interval(50, 149); // J = 1/3
        let mut rng = DetRng::new(42);
        let trials = 4000;
        let hits = (0..trials)
            .filter(|_| {
                let p = LinearPerm::random(&mut rng);
                p.min_hash(&q) == p.min_hash(&r)
            })
            .count();
        let est = hits as f64 / trials as f64;
        // Linear permutations are known to be only approximately min-wise;
        // pairwise independence gives expectation close to Jaccard for
        // interval sets.
        assert!(
            (est - 1.0 / 3.0).abs() < 0.1,
            "estimated {est:.3} too far from 1/3"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn min_affine_mod_matches_brute_force(
            a in 0u64..10_000,
            b in 0u64..10_000,
            m in 1u64..10_000,
            n in 0u64..2_000,
        ) {
            let brute = (0..=n).map(|i| (a % m * i % m + b % m) % m).min().unwrap();
            prop_assert_eq!(min_affine_mod(a, b, m, n), brute);
        }

        #[test]
        fn closed_form_equals_enumeration(
            seed in any::<u64>(),
            lo in 0u32..100_000,
            w in 0u32..3_000,
        ) {
            let mut rng = DetRng::new(seed);
            let p = LinearPerm::random(&mut rng);
            let q = RangeSet::interval(lo, lo + w);
            prop_assert_eq!(p.min_hash(&q), p.min_hash_enumerate(&q));
        }

        #[test]
        fn permute_injective(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
            let mut rng = DetRng::new(seed);
            let p = LinearPerm::random(&mut rng);
            // Bijection holds on [0, MODULUS); clamp test inputs there.
            let a = a % MODULUS as u32;
            let b = b % MODULUS as u32;
            prop_assert_eq!(a == b, p.permute(a) == p.permute(b));
        }
    }
}
