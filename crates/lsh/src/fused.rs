//! Fused structure-of-arrays evaluation of one hash group (DESIGN.md §6b).
//!
//! [`crate::HashGroups::identifiers`] needs the XOR of `k` min-hashes per
//! group. Evaluated function-by-function, every function re-walks the
//! query's interval decomposition and — for the bit-shuffle families —
//! re-enumerates every value of every narrow interval through its byte
//! tables (`≈ 4·width` lookups per function). [`CompiledGroup`] turns the
//! loop inside out: the decomposition is walked **once**, and for each
//! piece of it all `k` functions are advanced while the piece is hot in
//! cache.
//!
//! The bit families get an additional algorithmic win. A bit-position
//! permutation maps the low input byte and the high three input bytes to
//! *disjoint* output bit positions, so over a 256-aligned segment
//! `{base | b : b ∈ [b0, b1]}` (constant high bytes):
//!
//! ```text
//! min π(base | b) = π(base) | min t0[b]      (t0 = low-byte table)
//! ```
//!
//! and `min t0[b]` over any byte range is O(1) via a precomputed sparse
//! range-minimum table (9 levels × 256 entries per function). An interval
//! of any width ≤ [`FUSED_SEGMENT_MAX`]·256 therefore costs a handful of
//! table lookups per function instead of `4·width` — and wider intervals
//! fall back to the `O(32²)` greedy descent kernel, which is cheaper than
//! walking that many segments. Both paths are exact, so fused identifiers
//! are bit-identical to [`crate::HashGroups::identifiers_reference`]
//! (property-tested in `tests/property_invariants.rs`).
//!
//! The linear families already evaluate per interval in closed form; the
//! fused layout batches the `k` closed forms per interval and shares the
//! decomposition walk.

use crate::family::CompiledLshFunction;
use crate::grp::BitPerm;
use crate::linear::{min_affine_mod, LinearPerm};
use crate::range::RangeSet;
use crate::rangeaware::RangeAwareBitPerm;

/// Groups up to this many functions evaluate with a stack-allocated
/// scratch buffer — the steady-state query path performs zero heap
/// allocations (the paper's `k = 20` is well inside). Larger groups still
/// work; they spill the scratch to the heap.
pub const FUSED_MAX_K: usize = 64;

/// Intervals spanning at most this many 256-aligned segments run the
/// fused segment walk (O(1) per segment per function); wider ones use the
/// `O(32²)` greedy-descent kernel instead. Both are exact, so the
/// threshold affects cost only, never values.
pub const FUSED_SEGMENT_MAX: u32 = 64;

/// One bit-shuffle function laid out for fused segment evaluation.
#[derive(Debug, Clone)]
struct FusedBitFn {
    /// Byte-table evaluator (shared with the per-function compiled path).
    tables: BitPerm,
    /// Greedy-descent evaluator for intervals too wide to walk by segment.
    kernel: RangeAwareBitPerm,
    /// Sparse range-minimum table over the low-byte table:
    /// `low_min[j][i] = min tables.permute(b) for b in [i, i + 2^j)`.
    low_min: Box<[[u32; 256]; 9]>,
}

impl FusedBitFn {
    fn build(tables: &BitPerm, kernel: &RangeAwareBitPerm) -> FusedBitFn {
        let mut low_min = Box::new([[0u32; 256]; 9]);
        for b in 0..256usize {
            // For b < 256 the three high-byte tables contribute nothing,
            // so permute(b) *is* the low-byte table entry t0[b].
            low_min[0][b] = tables.permute(b as u32);
        }
        for j in 1..9 {
            let half = 1usize << (j - 1);
            for i in 0..256usize {
                low_min[j][i] = if i + half < 256 {
                    low_min[j - 1][i].min(low_min[j - 1][i + half])
                } else {
                    low_min[j - 1][i]
                };
            }
        }
        FusedBitFn {
            tables: tables.clone(),
            kernel: kernel.clone(),
            low_min,
        }
    }

    /// `min t0[b] for b in [b0, b1]` (inclusive), O(1).
    #[inline]
    fn low_range_min(&self, b0: usize, b1: usize) -> u32 {
        debug_assert!(b0 <= b1 && b1 < 256);
        let len = b1 - b0 + 1;
        let j = (usize::BITS - 1 - len.leading_zeros()) as usize;
        self.low_min[j][b0].min(self.low_min[j][b1 + 1 - (1usize << j)])
    }
}

/// The `k` functions of one group, fused (see module docs).
#[derive(Debug, Clone)]
enum FusedFns {
    /// Bit-shuffle families: segment walk over shared decomposition.
    Bit(Vec<FusedBitFn>),
    /// Linear families: batched closed forms over shared decomposition.
    Linear(Vec<LinearPerm>),
    /// Mixed-family groups (never produced by
    /// [`crate::HashGroups::generate`]): per-function evaluation.
    Mixed(Vec<CompiledLshFunction>),
}

/// One hash group compiled structure-of-arrays for single-pass
/// evaluation. Built by [`CompiledGroup::new`] from the group's compiled
/// functions; [`CompiledGroup::identifier`] is bit-identical to XORing
/// the functions' individual min-hashes.
#[derive(Debug, Clone)]
pub struct CompiledGroup {
    fns: FusedFns,
}

impl CompiledGroup {
    /// Fuse a group of compiled functions. Homogeneous groups (all
    /// bit-shuffle or all linear — the only kind
    /// [`crate::HashGroups::generate`] produces) get the fused fast
    /// paths; a mixed group falls back to per-function evaluation.
    ///
    /// # Panics
    /// Panics if the group is empty.
    pub fn new(group: &[CompiledLshFunction]) -> CompiledGroup {
        assert!(!group.is_empty(), "cannot fuse an empty group");
        let all_bit = group
            .iter()
            .all(|f| matches!(f, CompiledLshFunction::Bit { .. }));
        let all_linear = group
            .iter()
            .all(|f| matches!(f, CompiledLshFunction::Linear(_)));
        let fns = if all_bit {
            FusedFns::Bit(
                group
                    .iter()
                    .map(|f| match f {
                        CompiledLshFunction::Bit { tables, kernel } => {
                            FusedBitFn::build(tables, kernel)
                        }
                        CompiledLshFunction::Linear(_) => unreachable!(),
                    })
                    .collect(),
            )
        } else if all_linear {
            FusedFns::Linear(
                group
                    .iter()
                    .map(|f| match f {
                        CompiledLshFunction::Linear(p) => *p,
                        CompiledLshFunction::Bit { .. } => unreachable!(),
                    })
                    .collect(),
            )
        } else {
            FusedFns::Mixed(group.to_vec())
        };
        CompiledGroup { fns }
    }

    /// Number of functions in the group (`k`).
    pub fn k(&self) -> usize {
        match &self.fns {
            FusedFns::Bit(v) => v.len(),
            FusedFns::Linear(v) => v.len(),
            FusedFns::Mixed(v) => v.len(),
        }
    }

    /// The group identifier of `q`: XOR of the `k` min-hashes, computed
    /// in a single pass over `q`'s interval decomposition. Bit-identical
    /// to the per-function evaluation.
    ///
    /// # Panics
    /// Panics if `q` is empty.
    pub fn identifier(&self, q: &RangeSet) -> u32 {
        assert!(!q.is_empty(), "identifier of an empty range set");
        let k = self.k();
        if k <= FUSED_MAX_K {
            let mut mins = [u32::MAX; FUSED_MAX_K];
            self.mins_into(q, &mut mins[..k]);
            mins[..k].iter().fold(0u32, |acc, &m| acc ^ m)
        } else {
            let mut mins = vec![u32::MAX; k];
            self.mins_into(q, &mut mins);
            mins.iter().fold(0u32, |acc, &m| acc ^ m)
        }
    }

    /// The per-function min-hash vector of `q` — the `k` coordinates whose
    /// XOR is [`CompiledGroup::identifier`]. Multi-probe candidate
    /// generation ([`crate::probe`]) compares these vectors across
    /// perturbed evaluations of the same range to find the least-stable
    /// coordinates.
    ///
    /// # Panics
    /// Panics if `q` is empty.
    pub fn mins(&self, q: &RangeSet) -> Vec<u32> {
        assert!(!q.is_empty(), "min-hashes of an empty range set");
        let mut mins = vec![u32::MAX; self.k()];
        self.mins_into(q, &mut mins);
        mins
    }

    /// Advance `mins[f] = min(mins[f], min-hash of fn f over q)` for all
    /// functions, walking the decomposition once.
    fn mins_into(&self, q: &RangeSet, mins: &mut [u32]) {
        match &self.fns {
            FusedFns::Bit(fns) => {
                for &(lo, hi) in q.intervals() {
                    let (seg_lo, seg_hi) = (lo >> 8, hi >> 8);
                    if seg_hi - seg_lo >= FUSED_SEGMENT_MAX {
                        for (f, m) in fns.iter().zip(mins.iter_mut()) {
                            *m = (*m).min(f.kernel.min_interval(lo, hi));
                        }
                        continue;
                    }
                    for seg in seg_lo..=seg_hi {
                        let base = seg << 8;
                        let b0 = if seg == seg_lo {
                            (lo & 0xFF) as usize
                        } else {
                            0
                        };
                        let b1 = if seg == seg_hi {
                            (hi & 0xFF) as usize
                        } else {
                            255
                        };
                        for (f, m) in fns.iter().zip(mins.iter_mut()) {
                            // permute(base) carries the high-byte
                            // contribution; the low byte's minimum over
                            // [b0, b1] ORs into disjoint bit positions.
                            let upper = f.tables.permute(base);
                            *m = (*m).min(upper | f.low_range_min(b0, b1));
                        }
                    }
                }
            }
            FusedFns::Linear(fns) => {
                for &(lo, hi) in q.intervals() {
                    let n = (hi - lo) as u64;
                    for (p, m) in fns.iter().zip(mins.iter_mut()) {
                        let (a, b) = p.coefficients();
                        let md = p.modulus();
                        let c = ((a as u128 * lo as u128 + b as u128) % md as u128) as u64;
                        *m = (*m).min(min_affine_mod(a, c, md, n) as u32);
                    }
                }
            }
            FusedFns::Mixed(fns) => {
                for (f, m) in fns.iter().zip(mins.iter_mut()) {
                    *m = (*m).min(f.min_hash(q));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{LshFamilyKind, LshFunction};
    use ars_common::DetRng;

    fn compiled_group(kind: LshFamilyKind, k: usize, seed: u64) -> Vec<CompiledLshFunction> {
        let mut rng = DetRng::new(seed);
        (0..k)
            .map(|_| LshFunction::random(kind, &mut rng).compile())
            .collect()
    }

    fn reference(group: &[CompiledLshFunction], q: &RangeSet) -> u32 {
        group.iter().fold(0u32, |acc, f| acc ^ f.min_hash(q))
    }

    fn queries() -> Vec<RangeSet> {
        vec![
            RangeSet::interval(0, 0),
            RangeSet::interval(30, 50),
            RangeSet::interval(250, 260),   // crosses a segment edge
            RangeSet::interval(0, 255),     // exactly one segment
            RangeSet::interval(256, 511),   // aligned segment
            RangeSet::interval(100, 5_000), // many segments
            RangeSet::interval(0, 100_000), // kernel fallback
            RangeSet::from_intervals([(10, 40), (1_000, 3_000), (50_000, 50_005)]),
            RangeSet::from_intervals([(0, 16_383), (20_000, 90_000)]),
            RangeSet::interval(u32::MAX - 10, u32::MAX),
        ]
    }

    #[test]
    fn fused_matches_per_function_all_families() {
        for kind in [
            LshFamilyKind::MinWise,
            LshFamilyKind::ApproxMinWise,
            LshFamilyKind::Linear,
            LshFamilyKind::LinearClosedForm,
            LshFamilyKind::LinearDomain,
        ] {
            let group = compiled_group(kind, 8, 11);
            let fused = CompiledGroup::new(&group);
            assert_eq!(fused.k(), 8);
            for q in queries() {
                assert_eq!(
                    fused.identifier(&q),
                    reference(&group, &q),
                    "kind {kind} query {q}"
                );
            }
        }
    }

    #[test]
    fn oversized_group_spills_but_stays_exact() {
        let group = compiled_group(LshFamilyKind::ApproxMinWise, FUSED_MAX_K + 7, 3);
        let fused = CompiledGroup::new(&group);
        for q in queries() {
            assert_eq!(fused.identifier(&q), reference(&group, &q));
        }
    }

    #[test]
    fn mixed_group_falls_back_per_function() {
        let mut group = compiled_group(LshFamilyKind::MinWise, 3, 5);
        group.extend(compiled_group(LshFamilyKind::Linear, 3, 6));
        let fused = CompiledGroup::new(&group);
        for q in queries() {
            assert_eq!(fused.identifier(&q), reference(&group, &q));
        }
    }

    #[test]
    fn low_range_min_matches_brute_force() {
        let group = compiled_group(LshFamilyKind::MinWise, 1, 9);
        let CompiledLshFunction::Bit { tables, kernel } = &group[0] else {
            panic!("minwise compiles to Bit");
        };
        let f = FusedBitFn::build(tables, kernel);
        for (b0, b1) in [
            (0usize, 0usize),
            (0, 255),
            (7, 7),
            (3, 200),
            (128, 255),
            (17, 18),
        ] {
            let brute = (b0..=b1).map(|b| tables.permute(b as u32)).min().unwrap();
            assert_eq!(f.low_range_min(b0, b1), brute, "[{b0},{b1}]");
        }
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_group_rejected() {
        CompiledGroup::new(&[]);
    }

    #[test]
    #[should_panic(expected = "empty range set")]
    fn empty_query_rejected() {
        let group = compiled_group(LshFamilyKind::Linear, 2, 1);
        CompiledGroup::new(&group).identifier(&RangeSet::empty());
    }
}
