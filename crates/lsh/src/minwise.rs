//! Full min-wise independent permutations (the paper's §3.3).
//!
//! A permutation of the 32-bit space is built from 5 levels of the GRP
//! bit-shuffle: one balanced 32-bit key, then a 16-bit sub-key applied to
//! both halves, an 8-bit sub-key to each quarter, and so on down to 2-bit
//! blocks. The hash of a range set is the minimum of the permuted values.
//! The paper notes the whole key material is representable as two 32-bit
//! integers (32 bits + 16+8+4+2 = 30 bits); [`MinWisePerm::compact_keys`]
//! exposes that representation.

use crate::grp::{grp_blocks, random_balanced_key, replicate_key, BitPerm};
use crate::range::RangeSet;
use crate::rangeaware::RangeAwareBitPerm;
use ars_common::DetRng;

/// Block widths of the 5 permutation levels for a 32-bit domain.
pub const LEVEL_BITS: [u32; 5] = [32, 16, 8, 4, 2];

/// A full min-wise independent permutation of the 32-bit space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinWisePerm {
    /// Raw (unreplicated) sub-key per level; `sub_keys[i]` has
    /// `LEVEL_BITS[i] / 2` bits set.
    sub_keys: [u32; 5],
    /// Sub-keys replicated across the 32-bit word, ready for [`grp_blocks`].
    replicated: [u32; 5],
}

impl MinWisePerm {
    /// Draw a random permutation: each level gets an independent balanced
    /// key.
    pub fn random(rng: &mut DetRng) -> MinWisePerm {
        let mut sub_keys = [0u32; 5];
        for (i, &bits) in LEVEL_BITS.iter().enumerate() {
            sub_keys[i] = random_balanced_key(rng, bits);
        }
        MinWisePerm::from_sub_keys(sub_keys)
    }

    /// Build from explicit per-level sub-keys.
    ///
    /// # Panics
    /// Panics if a sub-key is not balanced (exactly half its bits set) or
    /// does not fit its level width.
    pub fn from_sub_keys(sub_keys: [u32; 5]) -> MinWisePerm {
        let mut replicated = [0u32; 5];
        for (i, &bits) in LEVEL_BITS.iter().enumerate() {
            let k = sub_keys[i];
            assert!(
                bits == 32 || k < (1 << bits),
                "level {i} key {k:#x} exceeds {bits} bits"
            );
            assert_eq!(
                k.count_ones(),
                bits / 2,
                "level {i} key {k:#x} is not balanced for {bits} bits"
            );
            replicated[i] = replicate_key(k, bits);
        }
        MinWisePerm {
            sub_keys,
            replicated,
        }
    }

    /// The paper's compact two-integer key encoding:
    /// `(k32, k16 | k8 << 16 | k4 << 24 | k2 << 28)`.
    pub fn compact_keys(&self) -> (u32, u32) {
        let [k32, k16, k8, k4, k2] = self.sub_keys;
        (k32, k16 | (k8 << 16) | (k4 << 24) | (k2 << 28))
    }

    /// Rebuild a permutation from the compact encoding.
    pub fn from_compact_keys(k32: u32, packed: u32) -> MinWisePerm {
        let k16 = packed & 0xFFFF;
        let k8 = (packed >> 16) & 0xFF;
        let k4 = (packed >> 24) & 0xF;
        let k2 = (packed >> 28) & 0x3;
        MinWisePerm::from_sub_keys([k32, k16, k8, k4, k2])
    }

    /// Apply the full 5-level permutation to one value.
    #[inline]
    pub fn permute(&self, x: u32) -> u32 {
        let mut v = x;
        for (i, &bits) in LEVEL_BITS.iter().enumerate() {
            v = grp_blocks(v, self.replicated[i], bits);
        }
        v
    }

    /// Min-hash of a range set. Small sets are enumerated; larger ones go
    /// through a [`RangeAwareBitPerm`] built on the fly (32 permutations to
    /// compile, then `O(32²)` per interval regardless of width). Values are
    /// identical to [`MinWisePerm::min_hash_enumerate`]; only the cost
    /// differs.
    pub fn min_hash(&self, q: &RangeSet) -> u32 {
        assert!(!q.is_empty(), "min-hash of an empty range set");
        if q.len() <= crate::rangeaware::ENUMERATE_WIDTH_MAX {
            q.iter().map(|v| self.permute(v)).min().unwrap()
        } else {
            RangeAwareBitPerm::compile(|x| self.permute(x)).min_hash(q)
        }
    }

    /// Min-hash by enumerating every value of the set — the evaluation
    /// strategy whose cost the paper's Fig. 5 measures. Kept as the oracle
    /// the range-aware path is property-tested against.
    pub fn min_hash_enumerate(&self, q: &RangeSet) -> u32 {
        assert!(!q.is_empty(), "min-hash of an empty range set");
        q.iter().map(|v| self.permute(v)).min().unwrap()
    }

    /// Compile the whole 5-level network into a table-driven
    /// [`BitPerm`] (identical outputs, ≈200× faster — see the
    /// `hash_ablation` bench).
    pub fn compile(&self) -> BitPerm {
        BitPerm::compile(|x| self.permute(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn perm(seed: u64) -> MinWisePerm {
        let mut rng = DetRng::new(seed);
        MinWisePerm::random(&mut rng)
    }

    #[test]
    fn compiled_matches_naive() {
        let p = perm(21);
        let c = p.compile();
        for x in [0u32, 1, 2, 0xFFFF_FFFF, 0x1234_5678, 999, 1 << 31] {
            assert_eq!(c.permute(x), p.permute(x));
        }
        let mut rng = DetRng::new(5);
        for _ in 0..1000 {
            let x = rng.next_u32();
            assert_eq!(c.permute(x), p.permute(x));
        }
    }

    #[test]
    fn permute_is_deterministic() {
        let p = perm(1);
        assert_eq!(p.permute(12345), p.permute(12345));
    }

    #[test]
    fn distinct_permutations_differ() {
        let p1 = perm(1);
        let p2 = perm(2);
        let diffs = (0u32..100)
            .filter(|&x| p1.permute(x) != p2.permute(x))
            .count();
        assert!(diffs > 90, "only {diffs} of 100 values differed");
    }

    #[test]
    fn permute_injective_on_sample() {
        let p = perm(3);
        let mut outs: Vec<u32> = (0u32..10_000).map(|x| p.permute(x)).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn compact_keys_roundtrip() {
        for seed in 0..20 {
            let p = perm(seed);
            let (a, b) = p.compact_keys();
            let q = MinWisePerm::from_compact_keys(a, b);
            assert_eq!(p, q);
        }
    }

    #[test]
    #[should_panic(expected = "not balanced")]
    fn unbalanced_key_rejected() {
        MinWisePerm::from_sub_keys([u32::MAX, 0xFF00, 0xF0, 0xC, 0x2]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_key_rejected() {
        // level 4 key must fit in 2 bits
        MinWisePerm::from_sub_keys([0xFFFF_0000, 0xFF00, 0xF0, 0xC, 0x7]);
    }

    #[test]
    fn min_hash_of_singleton_is_permuted_value() {
        let p = perm(4);
        let q = RangeSet::interval(77, 77);
        assert_eq!(p.min_hash(&q), p.permute(77));
    }

    #[test]
    fn min_hash_subset_bound() {
        // min over a superset is ≤ min over the subset.
        let p = perm(5);
        let small = RangeSet::interval(100, 150);
        let big = RangeSet::interval(50, 200);
        assert!(p.min_hash(&big) <= p.min_hash(&small));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn min_hash_empty_panics() {
        perm(6).min_hash(&RangeSet::empty());
    }

    /// Collision rate of `h(q) == h(r)` over independently drawn
    /// permutations.
    fn collision_rate(q: &RangeSet, r: &RangeSet, trials: usize, seed: u64) -> f64 {
        let mut rng = DetRng::new(seed);
        let hits = (0..trials)
            .filter(|_| {
                let p = MinWisePerm::random(&mut rng);
                p.min_hash(q) == p.min_hash(r)
            })
            .count();
        hits as f64 / trials as f64
    }

    #[test]
    fn zero_is_a_fixed_point() {
        // A bit-shuffle network permutes bit *positions*, so 0 → 0 and
        // popcount is preserved. This is an inherent bias of the paper's
        // Fig. 3 construction: it is only approximately min-wise
        // independent. We pin the behaviour so it is documented, not
        // accidental.
        let p = perm(11);
        assert_eq!(p.permute(0), 0);
        assert_eq!(p.permute(u32::MAX), u32::MAX);
    }

    #[test]
    fn collision_probability_is_locality_sensitive() {
        // The property the P2P system needs: more-similar ranges collide
        // (much) more often. Exact Jaccard tracking does NOT hold for this
        // construction (see `zero_is_a_fixed_point`), so we assert strict
        // monotone separation between high/medium/low similarity pairs.
        let q = RangeSet::interval(100, 199);
        let hi = RangeSet::interval(100, 189); // J = 0.9
        let mid = RangeSet::interval(150, 249); // J = 1/3
        let lo = RangeSet::interval(500, 599); // J = 0
        let trials = 1500;
        let c_hi = collision_rate(&q, &hi, trials, 42);
        let c_mid = collision_rate(&q, &mid, trials, 43);
        let c_lo = collision_rate(&q, &lo, trials, 44);
        assert!(
            c_hi > 0.6,
            "high-similarity pair should usually collide, got {c_hi:.3}"
        );
        assert!(
            c_hi > c_mid + 0.1,
            "expected clear gap: hi {c_hi:.3} vs mid {c_mid:.3}"
        );
        // The construction's popcount bias makes medium-similarity collisions
        // extremely rare (even rarer than Jaccard would predict) — which is
        // why the paper layers k·l amplification on top. Only require that
        // mid does not fall below disjoint.
        assert!(
            c_mid >= c_lo,
            "expected mid {c_mid:.3} >= disjoint {c_lo:.3}"
        );
        assert!(
            c_lo < 0.05,
            "disjoint ranges almost never collide, got {c_lo:.3}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn permute_injective(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
            let p = perm(seed);
            prop_assert_eq!(a == b, p.permute(a) == p.permute(b));
        }

        #[test]
        fn permute_preserves_popcount(x in any::<u32>(), seed in any::<u64>()) {
            // The permutation only moves bits around.
            let p = perm(seed);
            prop_assert_eq!(p.permute(x).count_ones(), x.count_ones());
        }

        #[test]
        fn min_hash_monotone_under_union(seed in any::<u64>(), lo in 0u32..1000, w1 in 0u32..100, w2 in 0u32..100) {
            let p = perm(seed);
            let a = RangeSet::interval(lo, lo + w1);
            let b = RangeSet::interval(lo + w1, lo + w1 + w2);
            let u = a.union(&b);
            let m = p.min_hash(&u);
            prop_assert!(m == p.min_hash(&a) || m == p.min_hash(&b));
            prop_assert!(m <= p.min_hash(&a) && m <= p.min_hash(&b));
        }
    }
}
