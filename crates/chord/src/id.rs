//! 32-bit circular identifier arithmetic.
//!
//! Chord's correctness arguments are all phrased over intervals of the
//! identifier circle ("the first node whose id is in `(n, key]`"). Getting
//! wraparound right everywhere is the classic source of Chord
//! implementation bugs, so the interval predicates live here once, heavily
//! tested, and everything else uses them.

use crate::sha1::sha1_u32;
use std::fmt;

/// Number of bits in the identifier space (the paper uses a 32-bit space).
pub const ID_BITS: u32 = 32;

/// A point on the 32-bit identifier circle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Id(pub u32);

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl From<u32> for Id {
    fn from(v: u32) -> Id {
        Id(v)
    }
}

impl Id {
    /// Hash an arbitrary address (e.g. `"10.0.0.1:4432"`) onto the circle
    /// with SHA-1, as the paper prescribes.
    pub fn from_address(addr: &str) -> Id {
        Id(sha1_u32(addr.as_bytes()))
    }

    /// `self + 2^i` on the circle (finger start positions).
    #[inline]
    pub fn plus_pow2(self, i: u32) -> Id {
        debug_assert!(i < ID_BITS);
        Id(self.0.wrapping_add(1u32 << i))
    }

    /// `self + d` on the circle.
    #[inline]
    pub fn plus(self, d: u32) -> Id {
        Id(self.0.wrapping_add(d))
    }

    /// Clockwise distance from `self` to `other` (how far you travel
    /// forward to reach `other`).
    #[inline]
    pub fn distance_to(self, other: Id) -> u32 {
        other.0.wrapping_sub(self.0)
    }

    /// True if `self` lies in the *open* circular interval `(a, b)`.
    ///
    /// When `a == b` the interval is the whole circle minus the endpoint
    /// (Chord's convention for a ring of one node).
    #[inline]
    pub fn in_open(self, a: Id, b: Id) -> bool {
        if a == b {
            self != a
        } else {
            // Travel clockwise from a: self must come strictly before b.
            let d_self = a.distance_to(self);
            let d_b = a.distance_to(b);
            d_self > 0 && d_self < d_b
        }
    }

    /// True if `self` lies in the half-open circular interval `(a, b]`
    /// (successor ownership: key `k` is owned by the first node `n` with
    /// `k ∈ (pred(n), n]`).
    #[inline]
    pub fn in_open_closed(self, a: Id, b: Id) -> bool {
        if a == b {
            // Whole circle: every id is in (a, a] on a one-node ring.
            true
        } else {
            let d_self = a.distance_to(self);
            let d_b = a.distance_to(b);
            d_self > 0 && d_self <= d_b
        }
    }

    /// True if `self` lies in the half-open circular interval `[a, b)`.
    #[inline]
    pub fn in_closed_open(self, a: Id, b: Id) -> bool {
        if a == b {
            true
        } else {
            let d_self = a.distance_to(self);
            let d_b = a.distance_to(b);
            d_self < d_b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Id(0xDEADBEEF)), "0xdeadbeef");
    }

    #[test]
    fn plus_pow2_wraps() {
        assert_eq!(Id(u32::MAX).plus_pow2(0), Id(0));
        assert_eq!(Id(0).plus_pow2(31), Id(1 << 31));
        assert_eq!(Id(1 << 31).plus_pow2(31), Id(0));
    }

    #[test]
    fn distance_wraps() {
        assert_eq!(Id(10).distance_to(Id(20)), 10);
        assert_eq!(Id(20).distance_to(Id(10)), u32::MAX - 9);
        assert_eq!(Id(5).distance_to(Id(5)), 0);
    }

    #[test]
    fn open_interval_no_wrap() {
        assert!(Id(15).in_open(Id(10), Id(20)));
        assert!(!Id(10).in_open(Id(10), Id(20)));
        assert!(!Id(20).in_open(Id(10), Id(20)));
        assert!(!Id(25).in_open(Id(10), Id(20)));
    }

    #[test]
    fn open_interval_wrapping() {
        // (0xFFFF_FFF0, 0x10) crosses zero.
        let a = Id(0xFFFF_FFF0);
        let b = Id(0x10);
        assert!(Id(0xFFFF_FFFF).in_open(a, b));
        assert!(Id(0).in_open(a, b));
        assert!(Id(0xF).in_open(a, b));
        assert!(!Id(0x10).in_open(a, b));
        assert!(!Id(0xFFFF_FFF0).in_open(a, b));
        assert!(!Id(0x8000_0000).in_open(a, b));
    }

    #[test]
    fn degenerate_interval_is_whole_circle() {
        // (a, a) excludes only a; (a, a] includes everything.
        assert!(Id(5).in_open(Id(7), Id(7)));
        assert!(!Id(7).in_open(Id(7), Id(7)));
        assert!(Id(5).in_open_closed(Id(7), Id(7)));
        assert!(Id(7).in_open_closed(Id(7), Id(7)));
    }

    #[test]
    fn open_closed_includes_right_end() {
        assert!(Id(20).in_open_closed(Id(10), Id(20)));
        assert!(!Id(10).in_open_closed(Id(10), Id(20)));
        assert!(Id(20).in_open_closed(Id(0xFFFF_FF00), Id(20)));
    }

    #[test]
    fn closed_open_includes_left_end() {
        assert!(Id(10).in_closed_open(Id(10), Id(20)));
        assert!(!Id(20).in_closed_open(Id(10), Id(20)));
    }

    #[test]
    fn from_address_deterministic_and_spread() {
        let a = Id::from_address("10.0.0.1:4432");
        let b = Id::from_address("10.0.0.1:4432");
        let c = Id::from_address("10.0.0.2:4432");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #[test]
        fn interval_partition(x in any::<u32>(), a in any::<u32>(), b in any::<u32>()) {
            // For a != b, exactly one of: x == a, x in (a,b), x == b,
            // x in (b,a) — the circle partitions cleanly.
            prop_assume!(a != b);
            let (x, a, b) = (Id(x), Id(a), Id(b));
            let cases = [
                x == a,
                x.in_open(a, b),
                x == b && x != a,
                x.in_open(b, a),
            ];
            prop_assert_eq!(cases.iter().filter(|&&c| c).count(), 1);
        }

        #[test]
        fn open_closed_equiv(x in any::<u32>(), a in any::<u32>(), b in any::<u32>()) {
            prop_assume!(a != b);
            let (x, a, b) = (Id(x), Id(a), Id(b));
            prop_assert_eq!(x.in_open_closed(a, b), x.in_open(a, b) || x == b);
            prop_assert_eq!(x.in_closed_open(a, b), x.in_open(a, b) || x == a);
        }

        #[test]
        fn distance_roundtrip(a in any::<u32>(), d in any::<u32>()) {
            let a = Id(a);
            prop_assert_eq!(a.distance_to(a.plus(d)), d);
        }
    }
}
