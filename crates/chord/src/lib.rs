//! A Chord distributed hash table, simulated.
//!
//! The paper stores partition identifiers on a Chord ring (§4): peers hash
//! their address with SHA-1 into a 32-bit identifier space; each data
//! identifier is owned by its *successor* (the first peer clockwise); and
//! lookups route through finger tables in `O(log N)` hops. This crate
//! implements that substrate from scratch:
//!
//! * [`mod@sha1`] — FIPS 180-1 SHA-1 (used to hash peer addresses);
//! * [`id::Id`] — 32-bit circular identifier arithmetic;
//! * [`ring::Ring`] — static ring construction with full finger tables and
//!   iterative lookup with hop accounting (used by the scalability
//!   experiments, Figs. 11–12);
//! * [`dynamic::DynamicNetwork`] — the live protocol: join, graceful leave,
//!   abrupt failure, stabilization, finger repair, successor lists.
//!
//! ```
//! use ars_chord::ring::Ring;
//!
//! let ring = Ring::from_seed(100, 7);           // 100 peers
//! let (owner, hops) = ring.lookup(ring.node_ids()[0], 12345.into());
//! assert_eq!(owner, ring.successor_of(12345.into()));
//! assert!(hops <= 32);
//! ```

#![warn(missing_docs)]

pub mod dynamic;
pub mod finger;
pub mod id;
pub mod layered;
pub mod lookup;
pub mod ring;
pub mod sha1;
pub mod vnodes;

pub use dynamic::{DynamicNetwork, RingView, RouteCacheStats};
pub use id::Id;
pub use layered::{arc_base, layered_position, ARC_SPAN_BITS};
pub use ring::Ring;
pub use sha1::sha1;
pub use vnodes::VirtualRing;
