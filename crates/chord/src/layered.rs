//! Layered placement: ring positions that co-locate a query's buckets.
//!
//! Independent placement hashes every bucket identifier to an unrelated
//! ring position, so an `l`-group query spends `l` full Chord lookups.
//! Layered placement (after Bahmani–Goel–Shinde's layered re-hashing and
//! NearBucket-LSH's use of existing successor links) instead derives ring
//! positions from a per-query **anchor** — a coarse LSH sketch that
//! similar ranges share with high probability — and confines all of the
//! query's buckets to one small arc of the circle:
//!
//! ```text
//! position(anchor, ident) = arc_base(anchor) | offset(ident)
//! arc_base(anchor)        = SHA1("ars-arc" ‖ anchor)  &  ¬(2^S − 1)
//! offset(ident)           = SHA1("ars-pos" ‖ ident)   &   (2^S − 1)
//! ```
//!
//! with `S = `[`ARC_SPAN_BITS`]. One lookup reaches the arc's first
//! owner; the remaining buckets are at the next few successors, reachable
//! over the overlay's existing successor links
//! ([`crate::Ring::successors_window`]) — each step one message, no
//! routing. Distinct anchors still spread uniformly (the arc base is a
//! SHA-1 image), preserving the load balance of uniformized placement at
//! arc granularity.

use crate::id::Id;
use crate::sha1::sha1_u32;

/// Arc span in bits: all buckets of one anchor land within `2^S`
/// consecutive ring positions. At `S = 20` an arc is `2^-12` of the
/// circle, so even a multi-thousand-peer ring keeps a whole arc within a
/// handful of successors.
pub const ARC_SPAN_BITS: u32 = 20;

const ARC_MASK: u32 = (1u32 << ARC_SPAN_BITS) - 1;

/// The base ring position of an anchor's arc (low span bits zero).
pub fn arc_base(anchor: u32) -> Id {
    let mut bytes = [0u8; 11];
    bytes[..7].copy_from_slice(b"ars-arc");
    bytes[7..].copy_from_slice(&anchor.to_be_bytes());
    Id(sha1_u32(&bytes) & !ARC_MASK)
}

/// The layered ring position of bucket `ident` under `anchor`: the
/// anchor's arc base plus a per-identifier offset within the arc.
pub fn layered_position(anchor: u32, ident: u32) -> Id {
    let mut bytes = [0u8; 11];
    bytes[..7].copy_from_slice(b"ars-pos");
    bytes[7..].copy_from_slice(&ident.to_be_bytes());
    Id(arc_base(anchor).0 | (sha1_u32(&bytes) & ARC_MASK))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_stay_inside_the_anchor_arc() {
        for anchor in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            let base = arc_base(anchor);
            assert_eq!(base.0 & ARC_MASK, 0, "arc base has low bits clear");
            for ident in [0u32, 7, 12_345, 0xFFFF_FFFF] {
                let pos = layered_position(anchor, ident);
                assert_eq!(pos.0 & !ARC_MASK, base.0, "position left its arc");
            }
        }
    }

    #[test]
    fn same_anchor_colocates_different_identifiers() {
        let a = layered_position(42, 1_000);
        let b = layered_position(42, 2_000);
        assert!(a.0.abs_diff(b.0) <= ARC_MASK);
    }

    #[test]
    fn distinct_anchors_spread() {
        // Arc bases of consecutive anchors are SHA-1 images: no two of a
        // small sample share an arc.
        let mut bases: Vec<u32> = (0..64u32).map(|a| arc_base(a).0).collect();
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(bases.len(), 64, "64 anchors produced colliding arcs");
    }

    #[test]
    fn deterministic() {
        assert_eq!(layered_position(9, 9), layered_position(9, 9));
        assert_eq!(arc_base(3), arc_base(3));
    }
}
