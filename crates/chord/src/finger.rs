//! Finger tables.
//!
//! Node `n`'s `i`-th finger (0-based) is the first node that succeeds
//! `n + 2^i` on the circle. Routing greedily forwards to the closest
//! preceding finger, halving the remaining distance per hop — this is what
//! gives Chord its `O(log N)` path lengths (Fig. 12).

use crate::id::{Id, ID_BITS};

/// The finger table of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerTable {
    owner: Id,
    entries: [Id; ID_BITS as usize],
}

impl FingerTable {
    /// Build a finger table by resolving each start position with
    /// `successor_of` (typically [`crate::ring::Ring::successor_of`]).
    pub fn build(owner: Id, mut successor_of: impl FnMut(Id) -> Id) -> FingerTable {
        let mut entries = [Id(0); ID_BITS as usize];
        for (i, e) in entries.iter_mut().enumerate() {
            *e = successor_of(owner.plus_pow2(i as u32));
        }
        FingerTable { owner, entries }
    }

    /// The node this table belongs to.
    pub fn owner(&self) -> Id {
        self.owner
    }

    /// Finger `i` (the successor of `owner + 2^i`).
    pub fn entry(&self, i: usize) -> Id {
        self.entries[i]
    }

    /// All entries.
    pub fn entries(&self) -> &[Id] {
        &self.entries
    }

    /// The first finger (successor of `owner + 1`) — the node's immediate
    /// successor on the ring.
    pub fn successor(&self) -> Id {
        self.entries[0]
    }

    /// The closest finger strictly preceding `key` (Chord's
    /// `closest_preceding_finger`): scans from the farthest finger down,
    /// returning the first entry in the open interval `(owner, key)`.
    /// Returns `None` when no finger lies strictly between — the caller
    /// then falls through to the immediate successor.
    pub fn closest_preceding(&self, key: Id) -> Option<Id> {
        self.entries
            .iter()
            .rev()
            .find(|&&f| f.in_open(self.owner, key))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// successor_of over a fixed sorted id list.
    fn succ_fn(ids: &[u32]) -> impl FnMut(Id) -> Id + '_ {
        move |key: Id| {
            for &id in ids {
                if id >= key.0 {
                    return Id(id);
                }
            }
            Id(ids[0]) // wrap
        }
    }

    #[test]
    fn build_resolves_start_positions() {
        let ids = [0u32, 1 << 30, 2 << 30, 3 << 30];
        let t = FingerTable::build(Id(0), succ_fn(&ids));
        // Fingers 0..30 start at 1..2^29... all resolve to 2^30.
        assert_eq!(t.entry(0), Id(1 << 30));
        assert_eq!(t.entry(29), Id(1 << 30));
        assert_eq!(t.entry(30), Id(1 << 30)); // start exactly 2^30
        assert_eq!(t.entry(31), Id(2 << 30));
        assert_eq!(t.successor(), Id(1 << 30));
        assert_eq!(t.owner(), Id(0));
    }

    #[test]
    fn closest_preceding_picks_farthest_before_key() {
        let ids = [0u32, 1 << 30, 2 << 30, 3 << 30];
        let t = FingerTable::build(Id(0), succ_fn(&ids));
        // Node 0's fingers resolve to {2^30 (entries 0..=30), 2^31 (entry
        // 31)} — 3·2^30 is nobody's finger from 0. For a key just past
        // 3·2^30 the farthest preceding finger is therefore 2^31.
        assert_eq!(t.closest_preceding(Id((3 << 30) + 5)), Some(Id(2 << 30)));
        // Key = 2^30: fingers strictly inside (0, 2^30) — none (first live
        // node is exactly 2^30, which is not *strictly* before the key).
        assert_eq!(t.closest_preceding(Id(1 << 30)), None);
        // Key between successor and second node.
        assert_eq!(t.closest_preceding(Id((1 << 30) + 1)), Some(Id(1 << 30)));
    }

    #[test]
    fn closest_preceding_wraps() {
        let ids = [100u32, 200, 300];
        let t = FingerTable::build(Id(300), succ_fn(&ids));
        // From 300, key 150 (wrapping past 0): finger 100 precedes it.
        assert_eq!(t.closest_preceding(Id(150)), Some(Id(100)));
        // Key 100 exactly: nothing strictly inside (300, 100).
        assert_eq!(t.closest_preceding(Id(100)), None);
    }

    #[test]
    fn single_node_ring_has_self_fingers() {
        let ids = [42u32];
        let t = FingerTable::build(Id(42), succ_fn(&ids));
        assert!(t.entries().iter().all(|&e| e == Id(42)));
        assert_eq!(t.closest_preceding(Id(7)), None);
    }
}
