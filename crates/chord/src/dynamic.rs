//! The live Chord protocol: joins, departures, failures, stabilization.
//!
//! The static [`crate::ring::Ring`] gives the converged state the paper's
//! scalability figures measure; this module provides the machinery that
//! *reaches* that state: `join` via lookup, periodic `stabilize`/`notify`,
//! finger repair, successor lists for fault tolerance, and both graceful
//! (`leave`) and abrupt (`fail`) departures. The failure-injection
//! integration tests drive churn through here.

use crate::id::{Id, ID_BITS};
use ars_common::FxHashMap;
use ars_telemetry::Telemetry;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Mutex;

/// Errors surfaced by the dynamic protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChordError {
    /// The referenced node is not alive in the network.
    UnknownNode(Id),
    /// A node with this id already exists.
    DuplicateNode(Id),
    /// A lookup could not make progress (e.g. all successors dead before
    /// stabilization repaired them).
    RoutingFailed {
        /// Node the lookup started from.
        from: Id,
        /// Key being located.
        key: Id,
    },
    /// The last node cannot leave/fail (the network would be empty).
    LastNode,
    /// Stabilization did not reach a consistent ring within the round
    /// budget (returned by growth/recovery paths that require convergence).
    NotConverged {
        /// Rounds that were run before giving up.
        rounds: usize,
    },
}

impl std::fmt::Display for ChordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChordError::UnknownNode(id) => write!(f, "unknown node {id}"),
            ChordError::DuplicateNode(id) => write!(f, "duplicate node {id}"),
            ChordError::RoutingFailed { from, key } => {
                write!(f, "routing failed from {from} for key {key}")
            }
            ChordError::LastNode => write!(f, "cannot remove the last node"),
            ChordError::NotConverged { rounds } => {
                write!(f, "ring not consistent after {rounds} stabilization rounds")
            }
        }
    }
}

impl std::error::Error for ChordError {}

/// Per-node protocol state.
#[derive(Debug, Clone)]
struct NodeState {
    /// Ordered successor list (first = immediate successor candidate).
    successors: Vec<Id>,
    predecessor: Option<Id>,
    /// Finger table entries; `None` = not yet resolved.
    fingers: Vec<Option<Id>>,
    /// Round-robin pointer for incremental `fix_fingers`.
    next_finger: usize,
}

impl NodeState {
    fn new(succ_list_len: usize) -> NodeState {
        NodeState {
            successors: Vec::with_capacity(succ_list_len),
            predecessor: None,
            fingers: vec![None; ID_BITS as usize],
            next_finger: 0,
        }
    }
}

/// Cumulative counters of the [`DynamicNetwork`] route cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups answered straight from the cache (one hop).
    pub hits: u64,
    /// Lookups that went through finger descent while the cache was on.
    pub misses: u64,
    /// Routes recorded after successful lookups.
    pub insertions: u64,
    /// Entries dropped because the cache was full (FIFO order).
    pub evictions: u64,
    /// Entries dropped by churn/stabilization invalidation.
    pub invalidated: u64,
}

/// Bounded `(from, key) → (owner, hops)` route memo. Entries are recorded
/// on successful lookups and *fully cleared* by every ring mutation
/// (join/leave/fail and each node's stabilization step), so a cached route
/// is always one an uncached lookup over the current state would also
/// find — hit results differ from the uncached path only in hop count
/// (served routes cost one hop, modelling a direct connection to the
/// remembered owner).
///
/// Interior mutability keeps [`DynamicNetwork::lookup`] a `&self` method;
/// a `Mutex` (never contended — the dynamic network is single-threaded,
/// unlike the static [`crate::Ring`]) rather than `RefCell` so the network
/// stays `Sync`.
#[derive(Debug, Default)]
struct RouteCache {
    inner: Mutex<RouteCacheInner>,
}

#[derive(Debug, Default)]
struct RouteCacheInner {
    /// 0 = caching disabled (the default — opt in via
    /// [`DynamicNetwork::set_route_cache_capacity`]).
    capacity: usize,
    /// `(from, key) → (owner, hops of the recorded uncached lookup)`.
    map: FxHashMap<(u32, u32), (Id, usize)>,
    /// Insertion order, for deterministic FIFO eviction.
    fifo: VecDeque<(u32, u32)>,
    stats: RouteCacheStats,
}

impl Clone for RouteCache {
    fn clone(&self) -> RouteCache {
        let inner = self.inner.lock().expect("route cache poisoned");
        RouteCache {
            inner: Mutex::new(RouteCacheInner {
                capacity: inner.capacity,
                map: inner.map.clone(),
                fifo: inner.fifo.clone(),
                stats: inner.stats,
            }),
        }
    }
}

impl RouteCache {
    /// Cached owner for `(from, key)`, served only when the recorded
    /// uncached walk used at most `max_moves` forward moves (so a cached
    /// route never succeeds where a budgeted uncached walk would fail).
    /// Counts hit/miss; always `None` (and uncounted) while disabled.
    fn get(&self, from: Id, key: Id, max_moves: usize) -> Option<Id> {
        let mut inner = self.inner.lock().expect("route cache poisoned");
        if inner.capacity == 0 {
            return None;
        }
        match inner.map.get(&(from.0, key.0)).copied() {
            Some((owner, hops)) if hops.saturating_sub(1) <= max_moves => {
                inner.stats.hits += 1;
                Some(owner)
            }
            _ => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Record a successful lookup, evicting the oldest entry when full.
    fn insert(&self, from: Id, key: Id, owner: Id, hops: usize) {
        let mut inner = self.inner.lock().expect("route cache poisoned");
        if inner.capacity == 0 {
            return;
        }
        if inner.map.insert((from.0, key.0), (owner, hops)).is_none() {
            inner.fifo.push_back((from.0, key.0));
            if inner.map.len() > inner.capacity {
                let oldest = inner.fifo.pop_front().expect("fifo tracks map");
                inner.map.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
        inner.stats.insertions += 1;
    }

    /// Drop every entry (called on any ring mutation).
    fn invalidate(&self) {
        let mut inner = self.inner.lock().expect("route cache poisoned");
        let dropped = inner.map.len() as u64;
        inner.stats.invalidated += dropped;
        inner.map.clear();
        inner.fifo.clear();
    }

    fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock().expect("route cache poisoned");
        inner.capacity = capacity;
        inner.map.clear();
        inner.fifo.clear();
    }

    fn enabled(&self) -> bool {
        self.inner.lock().expect("route cache poisoned").capacity > 0
    }

    fn stats(&self) -> RouteCacheStats {
        self.inner.lock().expect("route cache poisoned").stats
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("route cache poisoned").map.len()
    }
}

/// A simulated Chord network under churn.
///
/// All "RPCs" are direct reads of the target node's state — the simulation
/// models *protocol state convergence*, not message latency (that is
/// `ars-simnet`'s job). Dead nodes simply disappear from the map; a peer
/// consulting a dead pointer observes the failure, as a timeout would.
#[derive(Debug, Clone)]
pub struct DynamicNetwork {
    nodes: FxHashMap<u32, NodeState>,
    /// Alive ids, sorted — the ground truth used for assertions and for
    /// efficient true-successor queries. Maintained on join/leave.
    alive: BTreeSet<u32>,
    succ_list_len: usize,
    /// Bounded successor/location cache consulted before finger descent
    /// (disabled by default; see
    /// [`DynamicNetwork::set_route_cache_capacity`]).
    route_cache: RouteCache,
    /// Instrumentation sink (defaults to no-op; see `ars-telemetry`).
    telemetry: Telemetry,
}

impl DynamicNetwork {
    /// Create a network with one bootstrap node. `succ_list_len` successor
    /// pointers are kept per node (Chord suggests `O(log N)`; 8 tolerates
    /// heavy churn at the scales simulated here).
    pub fn bootstrap(first: Id, succ_list_len: usize) -> DynamicNetwork {
        assert!(succ_list_len >= 1);
        let mut n = NodeState::new(succ_list_len);
        n.successors.push(first); // self-loop ring of one
        n.predecessor = Some(first);
        let mut nodes = FxHashMap::default();
        nodes.insert(first.0, n);
        let mut alive = BTreeSet::new();
        alive.insert(first.0);
        DynamicNetwork {
            nodes,
            alive,
            succ_list_len,
            route_cache: RouteCache::default(),
            telemetry: Telemetry::noop(),
        }
    }

    /// Enable (capacity ≥ 1) or disable (capacity 0, the default) the
    /// route cache: a bounded `(from, key) → owner` memo consulted by
    /// [`Self::lookup`] and [`Self::lookup_resilient`] before finger
    /// descent. Hits resolve in one hop with the same owner the uncached
    /// descent would return; every churn event and stabilization step
    /// clears the cache so routes never outlive the ring state they were
    /// observed on. Changing the capacity clears the cache.
    pub fn set_route_cache_capacity(&mut self, capacity: usize) {
        self.route_cache.set_capacity(capacity);
    }

    /// Cumulative route-cache counters (all zero while disabled).
    pub fn route_cache_stats(&self) -> RouteCacheStats {
        self.route_cache.stats()
    }

    /// Entries currently cached.
    pub fn route_cache_len(&self) -> usize {
        self.route_cache.len()
    }

    /// Install a telemetry sink (share the handle to aggregate across
    /// layers). Lookups emit `chord.*` counters and histograms; resilient
    /// lookups additionally emit one `chord.lookup_resilient` event each.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The installed telemetry handle (no-op by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// True if no nodes are alive (cannot occur through the public API).
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Sorted alive node ids.
    pub fn node_ids(&self) -> Vec<Id> {
        self.alive.iter().map(|&v| Id(v)).collect()
    }

    /// A fully converged static [`crate::Ring`] over the current alive
    /// membership — an immutable snapshot that concurrent workers can
    /// route against without taking the dynamic network's locks.
    /// Lookups on the snapshot reach the same owners as
    /// [`Self::true_owner`] at the moment it was taken.
    ///
    /// # Panics
    /// Panics if no node is alive.
    pub fn snapshot_ring(&self) -> crate::Ring {
        crate::Ring::new(self.node_ids())
    }

    /// True ground-truth owner of `key` given the current alive set.
    pub fn true_owner(&self, key: Id) -> Id {
        match self.alive.range(key.0..).next() {
            Some(&v) => Id(v),
            None => Id(*self.alive.iter().next().expect("network is empty")),
        }
    }

    /// Ground-truth first `count` alive nodes clockwise from `key` (the
    /// owner followed by its successors). Fewer are returned when the
    /// network is smaller than `count`. This is the replica placement used
    /// by the application layer's successor replication.
    pub fn true_successors(&self, key: Id, count: usize) -> Vec<Id> {
        let n = count.min(self.alive.len());
        self.alive
            .range(key.0..)
            .chain(self.alive.iter())
            .take(n)
            .map(|&v| Id(v))
            .collect()
    }

    fn node(&self, id: Id) -> Result<&NodeState, ChordError> {
        self.nodes.get(&id.0).ok_or(ChordError::UnknownNode(id))
    }

    fn is_alive(&self, id: Id) -> bool {
        self.alive.contains(&id.0)
    }

    /// First *alive* successor-list entry of `of`, if any.
    fn live_successor(&self, of: &NodeState) -> Option<Id> {
        of.successors.iter().copied().find(|&s| self.is_alive(s))
    }

    /// Join a new node, learning the ring through `via` (any alive node).
    /// The new node acquires its successor immediately; predecessors,
    /// successor lists and fingers converge through [`Self::stabilize_all`].
    pub fn join(&mut self, new: Id, via: Id) -> Result<(), ChordError> {
        if self.nodes.contains_key(&new.0) {
            return Err(ChordError::DuplicateNode(new));
        }
        self.node(via)?;
        let succ = self.lookup(via, new).map(|(owner, _)| owner)?;
        let mut state = NodeState::new(self.succ_list_len);
        state.successors.push(succ);
        self.nodes.insert(new.0, state);
        self.alive.insert(new.0);
        // The new node may own keys cached routes point elsewhere for.
        self.route_cache.invalidate();
        Ok(())
    }

    /// Graceful departure: hands its role to its neighbours before leaving.
    pub fn leave(&mut self, id: Id) -> Result<(), ChordError> {
        if self.len() == 1 {
            return Err(ChordError::LastNode);
        }
        let state = self.node(id)?.clone();
        self.alive.remove(&id.0);
        self.nodes.remove(&id.0);
        // Tell the predecessor to adopt our successor and vice versa.
        let succ = state.successors.iter().copied().find(|&s| self.is_alive(s));
        if let (Some(pred), Some(succ)) = (state.predecessor, succ) {
            if let Some(p) = self.nodes.get_mut(&pred.0) {
                p.successors.retain(|&s| s != id);
                p.successors.insert(0, succ);
                p.successors.dedup();
                p.successors.truncate(self.succ_list_len);
            }
            if let Some(s) = self.nodes.get_mut(&succ.0) {
                if s.predecessor == Some(id) {
                    s.predecessor = Some(pred);
                }
            }
        }
        self.route_cache.invalidate();
        Ok(())
    }

    /// Abrupt failure: the node vanishes; everyone else's pointers go stale
    /// until stabilization repairs them.
    pub fn fail(&mut self, id: Id) -> Result<(), ChordError> {
        if self.len() == 1 {
            return Err(ChordError::LastNode);
        }
        self.node(id)?;
        self.alive.remove(&id.0);
        self.nodes.remove(&id.0);
        self.route_cache.invalidate();
        Ok(())
    }

    /// One stabilization round over every node (ascending id order — the
    /// order is immaterial to convergence, fixed for determinism):
    /// prune dead successors, run Chord's `stabilize` + `notify`, refresh
    /// the successor list from the successor, and repair `fingers_per_round`
    /// finger entries.
    pub fn stabilize_all(&mut self, fingers_per_round: usize) {
        let ids: Vec<u32> = self.alive.iter().copied().collect();
        for id in ids {
            self.stabilize_one(Id(id), fingers_per_round);
        }
    }

    /// Run stabilization until every node's immediate successor matches the
    /// ground truth (or `max_rounds` is hit). Returns rounds used, or
    /// `None` on non-convergence.
    pub fn stabilize_until_consistent(&mut self, max_rounds: usize) -> Option<usize> {
        for round in 0..max_rounds {
            if self.is_ring_consistent() {
                return Some(round);
            }
            self.stabilize_all(ID_BITS as usize);
        }
        if self.is_ring_consistent() {
            Some(max_rounds)
        } else {
            None
        }
    }

    fn stabilize_one(&mut self, id: Id, fingers_per_round: usize) {
        let Some(state) = self.nodes.get(&id.0) else {
            return;
        };
        // Invalidate on entry so the fix-fingers lookups below never serve
        // routes observed before this round's successor/predecessor edits,
        // and again on exit because the final state write below is itself
        // a mutation. Stabilization therefore always runs — and leaves the
        // network — cache-cold, exactly like the uncached protocol.
        self.route_cache.invalidate();
        let mut successors = state.successors.clone();
        // 1. Prune dead successors.
        successors.retain(|&s| self.is_alive(s));
        if successors.is_empty() {
            // Lost every successor: fall back to any alive finger, else the
            // ground-truth emergency bootstrap (models out-of-band rejoin).
            let fallback = state
                .fingers
                .iter()
                .flatten()
                .copied()
                .find(|&f| self.is_alive(f) && f != id)
                .unwrap_or_else(|| self.true_owner(id.plus(1)));
            successors.push(fallback);
        }
        // 2. Stabilize: check successor's predecessor.
        let succ = successors[0];
        let succ_pred = self.nodes.get(&succ.0).and_then(|s| s.predecessor);
        if let Some(p) = succ_pred {
            if self.is_alive(p) && p.in_open(id, succ) {
                successors.insert(0, p);
            }
        }
        // 3. Refresh successor list from (possibly new) successor's list.
        let succ = successors[0];
        if let Some(s) = self.nodes.get(&succ.0) {
            let mut merged = vec![succ];
            merged.extend(s.successors.iter().copied().filter(|&x| x != id));
            merged.dedup();
            successors = merged;
        }
        successors.retain(|&s| self.is_alive(s));
        successors.truncate(self.succ_list_len);

        // 4. Notify the successor that we might be its predecessor.
        let succ = successors[0];
        if let Some(s) = self.nodes.get_mut(&succ.0) {
            let accept = match s.predecessor {
                Some(p) => !self.alive.contains(&p.0) || id.in_open(p, succ) || p == succ,
                None => true,
            };
            // Either we are a better predecessor for our successor, or the
            // successor is ourselves (one-node ring): adopt in both cases.
            if accept || succ == id {
                s.predecessor = Some(id);
            }
        }

        // 5. Fix fingers incrementally, resolving each start position by a
        //    best-effort lookup through the current (possibly stale) state.
        let state = self.nodes.get(&id.0).expect("node vanished mid-round");
        let mut next = state.next_finger;
        let mut finger_updates: Vec<(usize, Option<Id>)> = Vec::new();
        for _ in 0..fingers_per_round.min(ID_BITS as usize) {
            let start = id.plus_pow2(next as u32);
            let resolved = self.lookup(id, start).ok().map(|(owner, _)| owner);
            finger_updates.push((next, resolved));
            next = (next + 1) % ID_BITS as usize;
        }

        let state = self.nodes.get_mut(&id.0).expect("node vanished mid-round");
        state.successors = successors;
        for (i, f) in finger_updates {
            if f.is_some() {
                state.fingers[i] = f;
            }
        }
        state.next_finger = next;
        self.route_cache.invalidate();
    }

    /// Best-effort iterative lookup through current protocol state.
    /// Tolerates stale fingers by skipping dead next-hops; fails only if a
    /// node has no alive pointer toward the key.
    ///
    /// With the route cache enabled ([`Self::set_route_cache_capacity`])
    /// a remembered `(from, key)` route is served in one hop; the owner is
    /// the one finger descent over the current state would return, because
    /// every ring mutation clears the cache.
    pub fn lookup(&self, from: Id, key: Id) -> Result<(Id, usize), ChordError> {
        if let Some(owner) = self.route_cache.get(from, key, usize::MAX) {
            self.telemetry.counter_add("chord.lookups", 1);
            self.telemetry.counter_add("chord.route_cache.hits", 1);
            self.telemetry.counter_add("chord.hops", 1);
            self.telemetry.record("chord.lookup.hops", 1);
            return Ok((owner, 1));
        }
        if self.route_cache.enabled() {
            self.telemetry.counter_add("chord.route_cache.misses", 1);
        }
        let mut touches = 0usize;
        let result = self.lookup_impl(from, key, &mut touches);
        self.telemetry.counter_add("chord.lookups", 1);
        self.telemetry
            .counter_add("chord.finger_touches", touches as u64);
        match &result {
            Ok((owner, hops)) => {
                self.telemetry.counter_add("chord.hops", *hops as u64);
                self.telemetry.record("chord.lookup.hops", *hops as u64);
                self.route_cache.insert(from, key, *owner, *hops);
            }
            Err(_) => self.telemetry.counter_add("chord.lookup_failures", 1),
        }
        result
    }

    fn lookup_impl(
        &self,
        from: Id,
        key: Id,
        touches: &mut usize,
    ) -> Result<(Id, usize), ChordError> {
        let mut current = from;
        let mut hops = 0usize;
        let mut visited = 0usize;
        let budget = 2 * ID_BITS as usize + self.len();
        loop {
            let state = self.node(current)?;
            let succ = self
                .live_successor(state)
                .ok_or(ChordError::RoutingFailed { from, key })?;
            if succ == current || key.in_open_closed(current, succ) {
                return Ok((succ, hops + 1));
            }
            // Closest preceding *alive* pointer among fingers + successors.
            let mut next: Option<Id> = None;
            for f in state
                .fingers
                .iter()
                .flatten()
                .copied()
                .chain(state.successors.iter().copied())
            {
                *touches += 1;
                if self.is_alive(f) && f.in_open(current, key) {
                    // Farthest strictly-preceding pointer wins.
                    next = Some(match next {
                        Some(best) if f.in_open(best, key) => f,
                        Some(best) => best,
                        None => f,
                    });
                }
            }
            let next = next.unwrap_or(succ);
            if next == current {
                return Err(ChordError::RoutingFailed { from, key });
            }
            current = next;
            hops += 1;
            visited += 1;
            if visited > budget {
                return Err(ChordError::RoutingFailed { from, key });
            }
        }
    }

    /// Failure-aware lookup: like [`Self::lookup`], but backtracks through
    /// alternate pointers (the successor list as detour routes) instead of
    /// failing when the greedy path dead-ends on stale state, under a total
    /// budget of `hop_budget` forward moves.
    ///
    /// Greedy Chord forwarding fails mid-churn when a node's best pointer
    /// leads into a cluster of failed nodes with no alive pointer past the
    /// key. This variant treats routing as a depth-first search over alive
    /// pointers — each node's candidates are tried closest-to-key first,
    /// with the successor list appended as fallback detours — so a query
    /// only fails when *no* alive path reaches an owner within the budget.
    /// On a converged ring it follows exactly the greedy path and returns
    /// the same owner and hop count as [`Self::lookup`].
    pub fn lookup_resilient(
        &self,
        from: Id,
        key: Id,
        hop_budget: usize,
    ) -> Result<(Id, usize), ChordError> {
        // A cached route is served only when the recorded uncached walk
        // fits the caller's budget (`hops - 1` forward moves), so caching
        // never turns a would-be budget failure into a success.
        if let Some(owner) = self.route_cache.get(from, key, hop_budget) {
            self.telemetry.counter_add("chord.resilient.lookups", 1);
            self.telemetry.counter_add("chord.route_cache.hits", 1);
            self.telemetry.record("chord.resilient.lookup.hops", 1);
            self.telemetry.event(
                "chord.lookup_resilient",
                &[
                    ("hops", 1usize.into()),
                    ("backtracks", 0usize.into()),
                    ("ok", true.into()),
                ],
            );
            return Ok((owner, 1));
        }
        if self.route_cache.enabled() {
            self.telemetry.counter_add("chord.route_cache.misses", 1);
        }
        // NOTE: resilient successes are deliberately *not* recorded in the
        // cache. A backtrack-free DFS can still deviate from the greedy
        // path after a successor-list detour (it skips visited nodes where
        // greedy would cycle), so only greedy successes — whose path the
        // DFS provably retraces on unchanged state — populate entries.
        let mut backtracks = 0usize;
        let mut hops_used = 0usize;
        let result =
            self.lookup_resilient_impl(from, key, hop_budget, &mut hops_used, &mut backtracks);
        self.telemetry.counter_add("chord.resilient.lookups", 1);
        self.telemetry
            .counter_add("chord.resilient.hops", hops_used as u64);
        self.telemetry
            .counter_add("chord.resilient.backtracks", backtracks as u64);
        let (ok, hops) = match &result {
            Ok((_, hops)) => {
                self.telemetry
                    .record("chord.resilient.lookup.hops", *hops as u64);
                (true, *hops)
            }
            Err(_) => {
                self.telemetry.counter_add("chord.resilient.failures", 1);
                (false, hops_used)
            }
        };
        self.telemetry.event(
            "chord.lookup_resilient",
            &[
                ("hops", hops.into()),
                ("backtracks", backtracks.into()),
                ("ok", ok.into()),
            ],
        );
        result
    }

    fn lookup_resilient_impl(
        &self,
        from: Id,
        key: Id,
        hop_budget: usize,
        hops_used: &mut usize,
        backtracks: &mut usize,
    ) -> Result<(Id, usize), ChordError> {
        self.node(from)?;
        let mut visited: std::collections::HashSet<u32> = std::collections::HashSet::new();
        // DFS stack: (candidates out of a node, index of the next to try).
        let mut stack: Vec<(Vec<Id>, usize)> = Vec::new();
        let mut current = from;
        let mut hops = 0usize;
        loop {
            visited.insert(current.0);
            // Terminal test: current's first live successor owns the key.
            if let Ok(state) = self.node(current) {
                if let Some(succ) = self.live_successor(state) {
                    if succ == current || key.in_open_closed(current, succ) {
                        return Ok((succ, hops + 1));
                    }
                }
            }
            stack.push((self.route_candidates(current, key), 0));
            // Advance to the next unvisited candidate, backtracking through
            // exhausted frames.
            loop {
                let Some((cands, idx)) = stack.last_mut() else {
                    return Err(ChordError::RoutingFailed { from, key });
                };
                if let Some(&c) = cands.get(*idx) {
                    *idx += 1;
                    if visited.contains(&c.0) {
                        continue;
                    }
                    if hops >= hop_budget {
                        return Err(ChordError::RoutingFailed { from, key });
                    }
                    hops += 1;
                    *hops_used = hops;
                    current = c;
                    break;
                }
                stack.pop();
                *backtracks += 1;
            }
        }
    }

    /// Alive next-hop candidates out of `current` toward `key`, best
    /// first: pointers strictly preceding the key (they make progress),
    /// ordered closest-to-key first, then the remaining alive
    /// successor-list entries as detours around a gap of failed nodes.
    fn route_candidates(&self, current: Id, key: Id) -> Vec<Id> {
        let Ok(state) = self.node(current) else {
            return Vec::new();
        };
        let mut preceding: Vec<Id> = state
            .fingers
            .iter()
            .flatten()
            .copied()
            .chain(state.successors.iter().copied())
            .filter(|&f| self.is_alive(f) && f.in_open(current, key))
            .collect();
        preceding.sort_by_key(|c| key.0.wrapping_sub(c.0));
        preceding.dedup();
        let mut out = preceding;
        for &s in &state.successors {
            if self.is_alive(s) && s != current && !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    /// True when every node's first alive successor equals the ground-truth
    /// next node on the circle.
    pub fn is_ring_consistent(&self) -> bool {
        self.alive.iter().all(|&v| {
            let id = Id(v);
            let state = &self.nodes[&v];
            match self.live_successor(state) {
                Some(s) => s == self.true_owner(id.plus(1)),
                None => self.len() == 1,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_common::DetRng;

    fn grow_network(n: usize, seed: u64) -> DynamicNetwork {
        let mut rng = DetRng::new(seed);
        let first = Id(rng.next_u32());
        let mut net = DynamicNetwork::bootstrap(first, 8);
        while net.len() < n {
            let new = Id(rng.next_u32());
            if net.node_ids().contains(&new) {
                continue;
            }
            net.join(new, first).unwrap();
            net.stabilize_all(32);
        }
        net.stabilize_until_consistent(64)
            .expect("network failed to converge while growing");
        net
    }

    #[test]
    fn bootstrap_single_node() {
        let net = DynamicNetwork::bootstrap(Id(42), 4);
        assert_eq!(net.len(), 1);
        assert!(net.is_ring_consistent());
        assert_eq!(net.true_owner(Id(7)), Id(42));
        let (owner, _) = net.lookup(Id(42), Id(1000)).unwrap();
        assert_eq!(owner, Id(42));
    }

    #[test]
    fn snapshot_ring_agrees_with_true_owner() {
        let net = grow_network(40, 99);
        let ring = net.snapshot_ring();
        assert_eq!(ring.len(), net.len());
        let mut probe = DetRng::new(5);
        for _ in 0..200 {
            let key = Id(probe.next_u32());
            assert_eq!(ring.successor_of(key), net.true_owner(key));
        }
    }

    #[test]
    fn join_two_nodes() {
        let mut net = DynamicNetwork::bootstrap(Id(100), 4);
        net.join(Id(200), Id(100)).unwrap();
        net.stabilize_until_consistent(16).expect("no convergence");
        assert_eq!(net.len(), 2);
        assert_eq!(net.lookup(Id(100), Id(150)).unwrap().0, Id(200));
        assert_eq!(net.lookup(Id(200), Id(250)).unwrap().0, Id(100));
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut net = DynamicNetwork::bootstrap(Id(1), 4);
        assert_eq!(
            net.join(Id(1), Id(1)),
            Err(ChordError::DuplicateNode(Id(1)))
        );
    }

    #[test]
    fn join_via_unknown_rejected() {
        let mut net = DynamicNetwork::bootstrap(Id(1), 4);
        assert_eq!(
            net.join(Id(2), Id(99)),
            Err(ChordError::UnknownNode(Id(99)))
        );
    }

    #[test]
    fn grown_network_resolves_lookups_correctly() {
        let net = grow_network(40, 7);
        let mut rng = DetRng::new(99);
        let ids = net.node_ids();
        for _ in 0..200 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            let (owner, hops) = net.lookup(from, key).unwrap();
            assert_eq!(owner, net.true_owner(key));
            assert!(hops <= 40);
        }
    }

    #[test]
    fn graceful_leave_preserves_consistency() {
        let mut net = grow_network(20, 11);
        let victim = net.node_ids()[5];
        net.leave(victim).unwrap();
        // Graceful leave keeps the ring consistent after at most a couple of
        // rounds (often immediately).
        net.stabilize_until_consistent(16).expect("no convergence");
        assert_eq!(net.len(), 19);
        assert!(!net.node_ids().contains(&victim));
    }

    #[test]
    fn abrupt_failure_recovers_via_stabilization() {
        let mut net = grow_network(30, 13);
        let mut rng = DetRng::new(5);
        // Fail 5 random nodes at once.
        for _ in 0..5 {
            let ids = net.node_ids();
            let victim = ids[rng.gen_index(ids.len())];
            net.fail(victim).unwrap();
        }
        let rounds = net
            .stabilize_until_consistent(64)
            .expect("failed to recover from 5 failures");
        assert!(rounds <= 64);
        // After recovery, lookups are correct again.
        let ids = net.node_ids();
        for _ in 0..100 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            assert_eq!(net.lookup(from, key).unwrap().0, net.true_owner(key));
        }
    }

    #[test]
    fn last_node_cannot_be_removed() {
        let mut net = DynamicNetwork::bootstrap(Id(9), 4);
        assert_eq!(net.fail(Id(9)), Err(ChordError::LastNode));
        assert_eq!(net.leave(Id(9)), Err(ChordError::LastNode));
    }

    #[test]
    fn continuous_churn_converges() {
        let mut net = grow_network(25, 17);
        let mut rng = DetRng::new(23);
        for step in 0..30 {
            if rng.gen_bool(0.5) && net.len() > 5 {
                let ids = net.node_ids();
                let victim = ids[rng.gen_index(ids.len())];
                if rng.gen_bool(0.5) {
                    net.fail(victim).unwrap();
                } else {
                    net.leave(victim).unwrap();
                }
            } else {
                let ids = net.node_ids();
                let via = ids[rng.gen_index(ids.len())];
                let new = Id(rng.next_u32());
                if !ids.contains(&new) {
                    // Join may fail if routing is degraded mid-churn; that is
                    // acceptable — a real node retries.
                    let _ = net.join(new, via);
                }
            }
            net.stabilize_all(8);
            let _ = step;
        }
        net.stabilize_until_consistent(128)
            .expect("churned network failed to converge");
    }

    #[test]
    fn error_display() {
        let e = ChordError::RoutingFailed {
            from: Id(1),
            key: Id(2),
        };
        assert!(format!("{e}").contains("routing failed"));
        let e = ChordError::NotConverged { rounds: 64 };
        assert!(format!("{e}").contains("64"));
    }

    #[test]
    fn true_successors_walk_the_circle() {
        let net = grow_network(10, 3);
        let ids = net.node_ids();
        let key = Id(ids[4].0.wrapping_add(1));
        let succs = net.true_successors(key, 3);
        assert_eq!(succs.len(), 3);
        assert_eq!(succs[0], net.true_owner(key));
        // Consecutive on the circle.
        for w in succs.windows(2) {
            assert_eq!(net.true_owner(w[0].plus(1)), w[1]);
        }
        // Count is clamped to the network size, without duplicates.
        let all = net.true_successors(key, 50);
        assert_eq!(all.len(), 10);
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn resilient_agrees_with_greedy_on_converged_ring() {
        let net = grow_network(40, 7);
        let mut rng = DetRng::new(99);
        let ids = net.node_ids();
        for _ in 0..200 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            let greedy = net.lookup(from, key).unwrap();
            let resilient = net.lookup_resilient(from, key, 128).unwrap();
            assert_eq!(greedy, resilient, "paths diverge on a clean ring");
        }
    }

    #[test]
    fn resilient_routes_around_mass_failure_before_stabilization() {
        // Fail a third of the network and do NOT stabilize: greedy lookups
        // hit dead pointers; the resilient lookup must still find every key
        // whose alive owner is reachable, and must never panic.
        let mut net = grow_network(30, 21);
        let mut rng = DetRng::new(4);
        for _ in 0..10 {
            let ids = net.node_ids();
            let victim = ids[rng.gen_index(ids.len())];
            net.fail(victim).unwrap();
        }
        let ids = net.node_ids();
        let mut greedy_fail = 0;
        let mut resilient_fail = 0;
        for _ in 0..300 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            let greedy = net.lookup(from, key);
            let resilient = net.lookup_resilient(from, key, 256);
            greedy_fail += greedy.is_err() as usize;
            resilient_fail += resilient.is_err() as usize;
            // Wherever greedy succeeds, resilient must too.
            if greedy.is_ok() {
                assert!(resilient.is_ok(), "resilient failed where greedy worked");
            }
        }
        assert!(
            resilient_fail <= greedy_fail,
            "backtracking lost lookups: {resilient_fail} > {greedy_fail}"
        );
    }

    #[test]
    fn resilient_respects_hop_budget() {
        let net = grow_network(30, 5);
        let ids = net.node_ids();
        let err = net.lookup_resilient(ids[0], Id(ids[0].0.wrapping_sub(1)), 0);
        // Budget 0 allows no forward move: only keys owned by the start's
        // own successor resolve; the far key must fail gracefully.
        match err {
            Ok((_, hops)) => assert_eq!(hops, 1),
            Err(ChordError::RoutingFailed { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn telemetry_counts_lookups_and_emits_resilient_events() {
        let mut net = grow_network(20, 7);
        let tel = ars_telemetry::Telemetry::recording();
        net.set_telemetry(tel.clone());
        let ids = net.node_ids();
        let mut rng = DetRng::new(1);
        for _ in 0..10 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            net.lookup(from, key).unwrap();
            net.lookup_resilient(from, key, 64).unwrap();
        }
        let snap = tel.snapshot();
        assert_eq!(snap.counter("chord.lookups"), 10);
        assert_eq!(snap.counter("chord.lookup_failures"), 0);
        assert_eq!(snap.counter("chord.resilient.lookups"), 10);
        assert!(snap.counter("chord.finger_touches") > 0);
        assert_eq!(snap.hist("chord.lookup.hops").unwrap().count, 10);
        // Healthy converged ring: the DFS never backtracks.
        assert_eq!(snap.counter("chord.resilient.backtracks"), 0);
        let events = tel.events_named("chord.lookup_resilient");
        assert_eq!(events.len(), 10);
        assert!(events.iter().all(|e| e.field_bool("ok") == Some(true)));
        assert!(events.iter().all(|e| e.field_u64("backtracks") == Some(0)));
    }

    #[test]
    fn resilient_from_unknown_node_errors() {
        let net = grow_network(5, 9);
        assert!(matches!(
            net.lookup_resilient(Id(0xDEAD_0000), Id(1), 32),
            Err(ChordError::UnknownNode(_))
        ));
    }

    #[test]
    fn route_cache_serves_same_owner_in_one_hop() {
        let mut net = grow_network(30, 7);
        net.set_route_cache_capacity(256);
        let ids = net.node_ids();
        let mut rng = DetRng::new(3);
        let pairs: Vec<(Id, Id)> = (0..50)
            .map(|_| (ids[rng.gen_index(ids.len())], Id(rng.next_u32())))
            .collect();
        let cold: Vec<(Id, usize)> = pairs
            .iter()
            .map(|&(from, key)| net.lookup(from, key).unwrap())
            .collect();
        let warm: Vec<(Id, usize)> = pairs
            .iter()
            .map(|&(from, key)| net.lookup(from, key).unwrap())
            .collect();
        for (i, ((co, ch), (wo, wh))) in cold.iter().zip(&warm).enumerate() {
            assert_eq!(co, wo, "owner changed on cache hit (pair {i})");
            assert_eq!(*wh, 1, "cached route must cost one hop");
            assert!(wh <= ch, "cache increased hops (pair {i})");
        }
        let stats = net.route_cache_stats();
        assert_eq!(stats.hits, 50);
        assert_eq!(stats.misses, 50);
        assert_eq!(stats.insertions, 50);
        assert!(net.route_cache_len() <= 256);
    }

    #[test]
    fn route_cache_capacity_evicts_fifo() {
        let mut net = grow_network(20, 11);
        net.set_route_cache_capacity(4);
        let ids = net.node_ids();
        for i in 0..10u32 {
            net.lookup(ids[0], Id(i.wrapping_mul(0x1357_9BDF))).unwrap();
        }
        assert!(net.route_cache_len() <= 4);
        let stats = net.route_cache_stats();
        assert_eq!(stats.evictions, stats.insertions - 4);
    }

    #[test]
    fn route_cache_invalidated_by_every_churn_event() {
        let mut net = grow_network(20, 13);
        net.set_route_cache_capacity(256);
        let ids = net.node_ids();
        net.lookup(ids[0], Id(12345)).unwrap();
        assert!(net.route_cache_len() > 0);
        net.fail(ids[5]).unwrap();
        assert_eq!(net.route_cache_len(), 0, "fail must clear routes");
        net.lookup(ids[0], Id(12345)).unwrap();
        net.leave(ids[6]).unwrap();
        assert_eq!(net.route_cache_len(), 0, "leave must clear routes");
        net.lookup(ids[0], Id(12345)).unwrap();
        net.join(Id(0x7777_7777), ids[0]).unwrap();
        assert_eq!(net.route_cache_len(), 0, "join must clear routes");
        net.lookup(ids[0], Id(12345)).unwrap();
        net.stabilize_all(4);
        assert_eq!(net.route_cache_len(), 0, "stabilization must clear routes");
        assert!(net.route_cache_stats().invalidated >= 4);
    }

    #[test]
    fn route_cache_never_serves_stale_owner_across_churn() {
        // Cache a route, kill its owner, stabilize: the next lookup must
        // re-route to the new ground-truth owner, identically to an
        // uncached network.
        let mut net = grow_network(25, 17);
        net.set_route_cache_capacity(256);
        let mut rng = DetRng::new(9);
        for round in 0..8 {
            let ids = net.node_ids();
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            let (owner, _) = net.lookup(from, key).unwrap();
            if net.len() > 2 && owner != from {
                net.fail(owner).unwrap();
                net.stabilize_until_consistent(64).expect("recovers");
                let ids = net.node_ids();
                let from = ids[rng.gen_index(ids.len())];
                let (new_owner, _) = net.lookup(from, key).unwrap();
                assert_eq!(new_owner, net.true_owner(key), "round {round}");
                assert_ne!(new_owner, owner, "owner is dead (round {round})");
            }
        }
    }

    #[test]
    fn cached_and_uncached_lookups_agree_under_churn() {
        // Twin networks driven through the same operation stream: the
        // cached one must return the same owners and success/failure
        // pattern, with hop counts never above the uncached one's.
        let mut cached = grow_network(24, 19);
        let mut plain = cached.clone();
        cached.set_route_cache_capacity(128);
        let mut rng = DetRng::new(21);
        for step in 0..200 {
            match rng.gen_index(10) {
                0 if cached.len() > 5 => {
                    let ids = cached.node_ids();
                    let victim = ids[rng.gen_index(ids.len())];
                    cached.fail(victim).unwrap();
                    plain.fail(victim).unwrap();
                }
                1 if cached.len() > 5 => {
                    let ids = cached.node_ids();
                    let victim = ids[rng.gen_index(ids.len())];
                    cached.leave(victim).unwrap();
                    plain.leave(victim).unwrap();
                }
                2 => {
                    cached.stabilize_all(8);
                    plain.stabilize_all(8);
                }
                _ => {
                    let ids = cached.node_ids();
                    let from = ids[rng.gen_index(ids.len())];
                    let key = Id(rng.next_u32());
                    let a = cached.lookup(from, key);
                    let b = plain.lookup(from, key);
                    match (&a, &b) {
                        (Ok((ao, ah)), Ok((bo, bh))) => {
                            assert_eq!(ao, bo, "owners diverged at step {step}");
                            assert!(ah <= bh, "cache increased hops at step {step}");
                        }
                        (Err(_), Err(_)) => {}
                        _ => panic!("success pattern diverged at step {step}: {a:?} vs {b:?}"),
                    }
                    let ra = cached.lookup_resilient(from, key, 64);
                    let rb = plain.lookup_resilient(from, key, 64);
                    match (&ra, &rb) {
                        (Ok((ao, ah)), Ok((bo, bh))) => {
                            assert_eq!(ao, bo, "resilient owners diverged at step {step}");
                            assert!(ah <= bh, "cache increased resilient hops at step {step}");
                        }
                        (Err(_), Err(_)) => {}
                        _ => panic!("resilient pattern diverged at step {step}"),
                    }
                }
            }
        }
        assert!(
            cached.route_cache_stats().hits > 0,
            "the equivalence run never exercised a cache hit"
        );
    }

    #[test]
    fn route_cache_disabled_by_default_and_stats_stay_zero() {
        let net = grow_network(10, 23);
        let ids = net.node_ids();
        net.lookup(ids[0], Id(99)).unwrap();
        net.lookup(ids[0], Id(99)).unwrap();
        assert_eq!(net.route_cache_stats(), RouteCacheStats::default());
        assert_eq!(net.route_cache_len(), 0);
    }

    #[test]
    fn route_cache_telemetry_counters_mirror_stats() {
        let mut net = grow_network(15, 27);
        net.set_route_cache_capacity(64);
        let tel = ars_telemetry::Telemetry::recording();
        net.set_telemetry(tel.clone());
        let ids = net.node_ids();
        for _ in 0..3 {
            for k in 0..5u32 {
                net.lookup(ids[0], Id(k.wrapping_mul(0x0101_0101))).unwrap();
                net.lookup_resilient(ids[1], Id(k.wrapping_mul(0x0202_0202)), 64)
                    .unwrap();
            }
        }
        let stats = net.route_cache_stats();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("chord.route_cache.hits"), stats.hits);
        assert_eq!(snap.counter("chord.route_cache.misses"), stats.misses);
        assert!(stats.hits > 0);
        // Resilient lookups consult but never insert; only the 5 greedy
        // keys are memoized.
        assert_eq!(stats.insertions, 5);
    }
}
