//! The live Chord protocol: joins, departures, failures, stabilization.
//!
//! The static [`crate::ring::Ring`] gives the converged state the paper's
//! scalability figures measure; this module provides the machinery that
//! *reaches* that state: `join` via lookup, periodic `stabilize`/`notify`,
//! finger repair, successor lists for fault tolerance, and both graceful
//! (`leave`) and abrupt (`fail`) departures. The failure-injection
//! integration tests drive churn through here.

use crate::id::{Id, ID_BITS};
use ars_common::FxHashMap;
use ars_telemetry::Telemetry;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Mutex;

/// Errors surfaced by the dynamic protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChordError {
    /// The referenced node is not alive in the network.
    UnknownNode(Id),
    /// A node with this id already exists.
    DuplicateNode(Id),
    /// A lookup could not make progress (e.g. all successors dead before
    /// stabilization repaired them).
    RoutingFailed {
        /// Node the lookup started from.
        from: Id,
        /// Key being located.
        key: Id,
    },
    /// The last node cannot leave/fail (the network would be empty).
    LastNode,
    /// Stabilization did not reach a consistent ring within the round
    /// budget (returned by growth/recovery paths that require convergence).
    NotConverged {
        /// Rounds that were run before giving up.
        rounds: usize,
    },
}

impl std::fmt::Display for ChordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChordError::UnknownNode(id) => write!(f, "unknown node {id}"),
            ChordError::DuplicateNode(id) => write!(f, "duplicate node {id}"),
            ChordError::RoutingFailed { from, key } => {
                write!(f, "routing failed from {from} for key {key}")
            }
            ChordError::LastNode => write!(f, "cannot remove the last node"),
            ChordError::NotConverged { rounds } => {
                write!(f, "ring not consistent after {rounds} stabilization rounds")
            }
        }
    }
}

impl std::error::Error for ChordError {}

/// Per-node protocol state.
#[derive(Debug, Clone)]
struct NodeState {
    /// Ordered successor list (first = immediate successor candidate).
    successors: Vec<Id>,
    predecessor: Option<Id>,
    /// Finger table entries; `None` = not yet resolved.
    fingers: Vec<Option<Id>>,
    /// Round-robin pointer for incremental `fix_fingers`.
    next_finger: usize,
}

impl NodeState {
    fn new(succ_list_len: usize) -> NodeState {
        NodeState {
            successors: Vec::with_capacity(succ_list_len),
            predecessor: None,
            fingers: vec![None; ID_BITS as usize],
            next_finger: 0,
        }
    }
}

/// Cumulative counters of the [`DynamicNetwork`] route cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups answered straight from the cache (one hop).
    pub hits: u64,
    /// Lookups that went through finger descent while the cache was on.
    pub misses: u64,
    /// Routes recorded after successful lookups.
    pub insertions: u64,
    /// Entries dropped because the cache was full (FIFO order).
    pub evictions: u64,
    /// Entries dropped by churn/stabilization invalidation.
    pub invalidated: u64,
}

/// Bounded `(from, key) → (owner, hops)` route memo. Entries are recorded
/// on successful lookups and *fully cleared* by every ring mutation
/// (join/leave/fail and each node's stabilization step), so a cached route
/// is always one an uncached lookup over the current state would also
/// find — hit results differ from the uncached path only in hop count
/// (served routes cost one hop, modelling a direct connection to the
/// remembered owner).
///
/// Interior mutability keeps [`DynamicNetwork::lookup`] a `&self` method;
/// a `Mutex` (never contended — the dynamic network is single-threaded,
/// unlike the static [`crate::Ring`]) rather than `RefCell` so the network
/// stays `Sync`.
#[derive(Debug, Default)]
struct RouteCache {
    inner: Mutex<RouteCacheInner>,
}

#[derive(Debug, Default)]
struct RouteCacheInner {
    /// 0 = caching disabled (the default — opt in via
    /// [`DynamicNetwork::set_route_cache_capacity`]).
    capacity: usize,
    /// `(from, key) → (owner, hops of the recorded uncached lookup)`.
    map: FxHashMap<(u32, u32), (Id, usize)>,
    /// Insertion order, for deterministic FIFO eviction.
    fifo: VecDeque<(u32, u32)>,
    stats: RouteCacheStats,
}

impl Clone for RouteCache {
    fn clone(&self) -> RouteCache {
        let inner = self.inner.lock().expect("route cache poisoned");
        RouteCache {
            inner: Mutex::new(RouteCacheInner {
                capacity: inner.capacity,
                map: inner.map.clone(),
                fifo: inner.fifo.clone(),
                stats: inner.stats,
            }),
        }
    }
}

impl RouteCache {
    /// Cached owner for `(from, key)`, served only when the recorded
    /// uncached walk used at most `max_moves` forward moves (so a cached
    /// route never succeeds where a budgeted uncached walk would fail).
    /// Counts hit/miss; always `None` (and uncounted) while disabled.
    fn get(&self, from: Id, key: Id, max_moves: usize) -> Option<Id> {
        let mut inner = self.inner.lock().expect("route cache poisoned");
        if inner.capacity == 0 {
            return None;
        }
        match inner.map.get(&(from.0, key.0)).copied() {
            Some((owner, hops)) if hops.saturating_sub(1) <= max_moves => {
                inner.stats.hits += 1;
                Some(owner)
            }
            _ => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Record a successful lookup, evicting the oldest entry when full.
    fn insert(&self, from: Id, key: Id, owner: Id, hops: usize) {
        let mut inner = self.inner.lock().expect("route cache poisoned");
        if inner.capacity == 0 {
            return;
        }
        if inner.map.insert((from.0, key.0), (owner, hops)).is_none() {
            inner.fifo.push_back((from.0, key.0));
            if inner.map.len() > inner.capacity {
                let oldest = inner.fifo.pop_front().expect("fifo tracks map");
                inner.map.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
        inner.stats.insertions += 1;
    }

    /// Drop every entry (called on any ring mutation).
    fn invalidate(&self) {
        let mut inner = self.inner.lock().expect("route cache poisoned");
        let dropped = inner.map.len() as u64;
        inner.stats.invalidated += dropped;
        inner.map.clear();
        inner.fifo.clear();
    }

    fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock().expect("route cache poisoned");
        inner.capacity = capacity;
        inner.map.clear();
        inner.fifo.clear();
    }

    fn enabled(&self) -> bool {
        self.inner.lock().expect("route cache poisoned").capacity > 0
    }

    fn stats(&self) -> RouteCacheStats {
        self.inner.lock().expect("route cache poisoned").stats
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("route cache poisoned").map.len()
    }
}

/// A snapshot of every alive node's *believed* ownership claim, probed
/// from the nodes' local predecessor pointers — the split-brain detector.
///
/// Node `x` claims a key `k` when `k ∈ (pred(x), x]` according to `x`'s
/// own predecessor pointer. On a converged connected ring each probe key
/// has exactly one claimant; while the ring is split, every island runs a
/// full circle of its own, so keys are claimed on both sides of the
/// boundary and [`RingView::is_split_brain`] reports it.
#[derive(Debug, Clone)]
pub struct RingView {
    /// `(probe key, claimants)` — one probe per alive node id.
    claims: Vec<(Id, Vec<Id>)>,
}

impl RingView {
    /// True if any probed key has two or more claimants (two nodes both
    /// believe they own the same identifier).
    pub fn is_split_brain(&self) -> bool {
        self.claims.iter().any(|(_, c)| c.len() >= 2)
    }

    /// The contested probe keys and their claimants (empty when healthy).
    pub fn contested(&self) -> Vec<(Id, Vec<Id>)> {
        self.claims
            .iter()
            .filter(|(_, c)| c.len() >= 2)
            .cloned()
            .collect()
    }

    /// All probes `(key, claimants)`, one per alive node id.
    pub fn claims(&self) -> &[(Id, Vec<Id>)] {
        &self.claims
    }
}

/// A simulated Chord network under churn.
///
/// All "RPCs" are direct reads of the target node's state — the simulation
/// models *protocol state convergence*, not message latency (that is
/// `ars-simnet`'s job). Dead nodes simply disappear from the map; a peer
/// consulting a dead pointer observes the failure, as a timeout would.
/// While a partition is installed ([`Self::partition`]), a node can only
/// observe peers on its own island — every protocol interaction
/// (stabilize, notify, lookups, finger repair) is filtered through that
/// reachability relation, so each island's ring collapses onto its own
/// members exactly as live Chord nodes would behave behind a severed
/// switch.
#[derive(Debug, Clone)]
pub struct DynamicNetwork {
    nodes: FxHashMap<u32, NodeState>,
    /// Alive ids, sorted — the ground truth used for assertions and for
    /// efficient true-successor queries. Maintained on join/leave.
    alive: BTreeSet<u32>,
    /// Installed partition: node id → island index. `None` = connected.
    /// Nodes absent from the map belong to island 0.
    islands: Option<FxHashMap<u32, usize>>,
    succ_list_len: usize,
    /// Bounded successor/location cache consulted before finger descent
    /// (disabled by default; see
    /// [`DynamicNetwork::set_route_cache_capacity`]).
    route_cache: RouteCache,
    /// Instrumentation sink (defaults to no-op; see `ars-telemetry`).
    telemetry: Telemetry,
}

impl DynamicNetwork {
    /// Create a network with one bootstrap node. `succ_list_len` successor
    /// pointers are kept per node (Chord suggests `O(log N)`; 8 tolerates
    /// heavy churn at the scales simulated here).
    pub fn bootstrap(first: Id, succ_list_len: usize) -> DynamicNetwork {
        assert!(succ_list_len >= 1);
        let mut n = NodeState::new(succ_list_len);
        n.successors.push(first); // self-loop ring of one
        n.predecessor = Some(first);
        let mut nodes = FxHashMap::default();
        nodes.insert(first.0, n);
        let mut alive = BTreeSet::new();
        alive.insert(first.0);
        DynamicNetwork {
            nodes,
            alive,
            islands: None,
            succ_list_len,
            route_cache: RouteCache::default(),
            telemetry: Telemetry::noop(),
        }
    }

    /// Enable (capacity ≥ 1) or disable (capacity 0, the default) the
    /// route cache: a bounded `(from, key) → owner` memo consulted by
    /// [`Self::lookup`] and [`Self::lookup_resilient`] before finger
    /// descent. Hits resolve in one hop with the same owner the uncached
    /// descent would return; every churn event and stabilization step
    /// clears the cache so routes never outlive the ring state they were
    /// observed on. Changing the capacity clears the cache.
    pub fn set_route_cache_capacity(&mut self, capacity: usize) {
        self.route_cache.set_capacity(capacity);
    }

    /// Cumulative route-cache counters (all zero while disabled).
    pub fn route_cache_stats(&self) -> RouteCacheStats {
        self.route_cache.stats()
    }

    /// Entries currently cached.
    pub fn route_cache_len(&self) -> usize {
        self.route_cache.len()
    }

    /// Install a telemetry sink (share the handle to aggregate across
    /// layers). Lookups emit `chord.*` counters and histograms; resilient
    /// lookups additionally emit one `chord.lookup_resilient` event each.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The installed telemetry handle (no-op by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// True if no nodes are alive (cannot occur through the public API).
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Sorted alive node ids.
    pub fn node_ids(&self) -> Vec<Id> {
        self.alive.iter().map(|&v| Id(v)).collect()
    }

    /// A fully converged static [`crate::Ring`] over the current alive
    /// membership — an immutable snapshot that concurrent workers can
    /// route against without taking the dynamic network's locks.
    /// Lookups on the snapshot reach the same owners as
    /// [`Self::true_owner`] at the moment it was taken.
    ///
    /// # Panics
    /// Panics if no node is alive.
    pub fn snapshot_ring(&self) -> crate::Ring {
        crate::Ring::new(self.node_ids())
    }

    /// True ground-truth owner of `key` given the current alive set.
    pub fn true_owner(&self, key: Id) -> Id {
        match self.alive.range(key.0..).next() {
            Some(&v) => Id(v),
            None => Id(*self.alive.iter().next().expect("network is empty")),
        }
    }

    /// Ground-truth first `count` alive nodes clockwise from `key` (the
    /// owner followed by its successors). Fewer are returned when the
    /// network is smaller than `count`. This is the replica placement used
    /// by the application layer's successor replication.
    pub fn true_successors(&self, key: Id, count: usize) -> Vec<Id> {
        let n = count.min(self.alive.len());
        self.alive
            .range(key.0..)
            .chain(self.alive.iter())
            .take(n)
            .map(|&v| Id(v))
            .collect()
    }

    /// Split the network into islands: `groups[i]` becomes island `i`;
    /// alive nodes not listed in any group join island 0 (so a call only
    /// needs to enumerate the minority islands it carves off, matching
    /// `ars_simnet`'s `PartitionWindow` semantics). Installing a partition
    /// replaces any previous one and clears the route cache.
    ///
    /// # Panics
    /// Panics unless there are ≥2 groups, every group is non-empty, no
    /// node appears twice, and every listed node is alive.
    pub fn partition(&mut self, groups: &[Vec<Id>]) {
        assert!(groups.len() >= 2, "a partition needs at least two islands");
        assert!(
            groups.iter().all(|g| !g.is_empty()),
            "empty partition island"
        );
        let mut map = FxHashMap::default();
        for (i, g) in groups.iter().enumerate() {
            for &id in g {
                assert!(self.is_alive(id), "partitioned node {id} is not alive");
                assert!(
                    map.insert(id.0, i).is_none(),
                    "node {id} listed in two islands"
                );
            }
        }
        self.islands = Some(map);
        self.route_cache.invalidate();
    }

    /// True while a partition is installed.
    pub fn is_partitioned(&self) -> bool {
        self.islands.is_some()
    }

    /// Island index of `id` under the installed partition (0 when the
    /// network is connected or the node is unlisted).
    pub fn island_of(&self, id: Id) -> usize {
        match &self.islands {
            Some(m) => m.get(&id.0).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// True if `a` can exchange messages with `b` (always true while
    /// connected; same-island only while partitioned).
    pub fn reachable(&self, a: Id, b: Id) -> bool {
        match &self.islands {
            Some(m) => m.get(&a.0).copied().unwrap_or(0) == m.get(&b.0).copied().unwrap_or(0),
            None => true,
        }
    }

    /// Tear the partition down and deterministically re-merge the rings.
    ///
    /// While the window was open each island's stabilization collapsed
    /// successor lists *and fingers* onto island members, so after a long
    /// window no cross-island pointer survives and stabilization alone can
    /// never re-knit the circle (two stable disjoint Chord rings are a
    /// fixed point of stabilize/notify). Healing therefore re-runs each
    /// node's rejoin bootstrap: every node whose believed successor
    /// disagrees with the healed ground truth re-acquires its true
    /// immediate successor — via a surviving cross-island finger when one
    /// still points there, else the same out-of-band bootstrap oracle
    /// `stabilize_one`'s emergency fallback uses — and stabilization then
    /// repairs predecessors, successor lists, and fingers. The route cache
    /// is fully invalidated so no island-local route outlives the heal.
    ///
    /// Returns the number of rejoin edges installed (0 when the network
    /// was not partitioned; the cache is still cleared).
    pub fn heal(&mut self) -> usize {
        let was_partitioned = self.islands.take().is_some();
        self.route_cache.invalidate();
        if !was_partitioned {
            return 0;
        }
        let ids: Vec<u32> = self.alive.iter().copied().collect();
        let mut rejoined = 0usize;
        for v in ids {
            let id = Id(v);
            let truth = self.true_owner(id.plus(1));
            let state = self.nodes.get_mut(&v).expect("alive node has state");
            let believed = state.successors.first().copied();
            if believed != Some(truth) && truth != id {
                state.successors.retain(|&s| s != truth);
                state.successors.insert(0, truth);
                state.successors.truncate(self.succ_list_len);
                rejoined += 1;
            }
        }
        rejoined
    }

    /// Probe every alive node's believed ownership claim (see
    /// [`RingView`]). One probe per alive node id: on a healthy converged
    /// ring each id is claimed exactly once (by itself); while the ring is
    /// split, islands claim keys across the boundary and
    /// [`RingView::is_split_brain`] fires.
    pub fn ring_view(&self) -> RingView {
        let ids = self.node_ids();
        let claims = ids
            .iter()
            .map(|&key| {
                let claimants = ids
                    .iter()
                    .copied()
                    .filter(|&x| {
                        let state = &self.nodes[&x.0];
                        match state.predecessor {
                            Some(p) if p != x => key.in_open_closed(p, x),
                            // Self-loop or unknown predecessor: the node
                            // believes it owns everything.
                            _ => true,
                        }
                    })
                    .collect();
                (key, claimants)
            })
            .collect();
        RingView { claims }
    }

    /// First alive node clockwise from `key` on `observer`'s island — the
    /// owner `observer` can actually reach. Equals [`Self::true_owner`]
    /// while the network is connected.
    pub fn island_owner(&self, observer: Id, key: Id) -> Id {
        self.alive
            .range(key.0..)
            .chain(self.alive.range(..key.0))
            .copied()
            .map(Id)
            .find(|&v| self.reachable(observer, v))
            .unwrap_or(observer)
    }

    /// First `count` alive nodes clockwise from `key` restricted to
    /// `observer`'s island (the replica owners `observer` can reach).
    /// Equals [`Self::true_successors`] while the network is connected.
    pub fn island_successors(&self, observer: Id, key: Id, count: usize) -> Vec<Id> {
        let island_len = self
            .alive
            .iter()
            .filter(|&&v| self.reachable(observer, Id(v)))
            .count();
        self.alive
            .range(key.0..)
            .chain(self.alive.range(..key.0))
            .copied()
            .map(Id)
            .filter(|&v| self.reachable(observer, v))
            .take(count.min(island_len))
            .collect()
    }

    fn node(&self, id: Id) -> Result<&NodeState, ChordError> {
        self.nodes.get(&id.0).ok_or(ChordError::UnknownNode(id))
    }

    fn is_alive(&self, id: Id) -> bool {
        self.alive.contains(&id.0)
    }

    /// First successor-list entry of `of` that is alive *and reachable
    /// from `me`*, if any.
    fn live_successor(&self, me: Id, of: &NodeState) -> Option<Id> {
        of.successors
            .iter()
            .copied()
            .find(|&s| self.is_alive(s) && self.reachable(me, s))
    }

    /// Join a new node, learning the ring through `via` (any alive node).
    /// The new node acquires its successor immediately; predecessors,
    /// successor lists and fingers converge through [`Self::stabilize_all`].
    pub fn join(&mut self, new: Id, via: Id) -> Result<(), ChordError> {
        if self.nodes.contains_key(&new.0) {
            return Err(ChordError::DuplicateNode(new));
        }
        self.node(via)?;
        let succ = self.lookup(via, new).map(|(owner, _)| owner)?;
        let mut state = NodeState::new(self.succ_list_len);
        state.successors.push(succ);
        self.nodes.insert(new.0, state);
        self.alive.insert(new.0);
        // A node joining through `via` lands on `via`'s island: its only
        // contact is on that side of the boundary.
        if let Some(m) = &mut self.islands {
            let island = m.get(&via.0).copied().unwrap_or(0);
            m.insert(new.0, island);
        }
        // The new node may own keys cached routes point elsewhere for.
        self.route_cache.invalidate();
        Ok(())
    }

    /// Graceful departure: hands its role to its neighbours before leaving.
    pub fn leave(&mut self, id: Id) -> Result<(), ChordError> {
        if self.len() == 1 {
            return Err(ChordError::LastNode);
        }
        let state = self.node(id)?.clone();
        self.alive.remove(&id.0);
        self.nodes.remove(&id.0);
        // Tell the predecessor to adopt our successor and vice versa (the
        // handoff can only reach island-local neighbours — resolve the
        // leaver's island before forgetting it).
        let succ = state
            .successors
            .iter()
            .copied()
            .find(|&s| self.is_alive(s) && self.reachable(id, s));
        let pred = state
            .predecessor
            .filter(|&p| self.is_alive(p) && self.reachable(id, p));
        if let Some(m) = &mut self.islands {
            m.remove(&id.0);
        }
        if let (Some(pred), Some(succ)) = (pred, succ) {
            if let Some(p) = self.nodes.get_mut(&pred.0) {
                p.successors.retain(|&s| s != id);
                p.successors.insert(0, succ);
                p.successors.dedup();
                p.successors.truncate(self.succ_list_len);
            }
            if let Some(s) = self.nodes.get_mut(&succ.0) {
                if s.predecessor == Some(id) {
                    s.predecessor = Some(pred);
                }
            }
        }
        self.route_cache.invalidate();
        Ok(())
    }

    /// Abrupt failure: the node vanishes; everyone else's pointers go stale
    /// until stabilization repairs them.
    pub fn fail(&mut self, id: Id) -> Result<(), ChordError> {
        if self.len() == 1 {
            return Err(ChordError::LastNode);
        }
        self.node(id)?;
        self.alive.remove(&id.0);
        self.nodes.remove(&id.0);
        if let Some(m) = &mut self.islands {
            m.remove(&id.0);
        }
        self.route_cache.invalidate();
        Ok(())
    }

    /// One stabilization round over every node (ascending id order — the
    /// order is immaterial to convergence, fixed for determinism):
    /// prune dead successors, run Chord's `stabilize` + `notify`, refresh
    /// the successor list from the successor, and repair `fingers_per_round`
    /// finger entries.
    pub fn stabilize_all(&mut self, fingers_per_round: usize) {
        let ids: Vec<u32> = self.alive.iter().copied().collect();
        for id in ids {
            self.stabilize_one(Id(id), fingers_per_round);
        }
    }

    /// Run stabilization until every node's immediate successor matches the
    /// ground truth (or `max_rounds` is hit). Returns rounds used, or
    /// `None` on non-convergence.
    pub fn stabilize_until_consistent(&mut self, max_rounds: usize) -> Option<usize> {
        for round in 0..max_rounds {
            if self.is_ring_consistent() {
                return Some(round);
            }
            self.stabilize_all(ID_BITS as usize);
        }
        if self.is_ring_consistent() {
            Some(max_rounds)
        } else {
            None
        }
    }

    fn stabilize_one(&mut self, id: Id, fingers_per_round: usize) {
        let Some(state) = self.nodes.get(&id.0) else {
            return;
        };
        // Invalidate on entry so the fix-fingers lookups below never serve
        // routes observed before this round's successor/predecessor edits,
        // and again on exit because the final state write below is itself
        // a mutation. Stabilization therefore always runs — and leaves the
        // network — cache-cold, exactly like the uncached protocol.
        self.route_cache.invalidate();
        let mut successors = state.successors.clone();
        // 1. Prune dead (or partition-unreachable) successors — behind a
        //    severed boundary a peer times out exactly like a crashed one.
        successors.retain(|&s| self.is_alive(s) && self.reachable(id, s));
        if successors.is_empty() {
            // Lost every successor: fall back to any alive reachable
            // finger, else the ground-truth emergency bootstrap (models
            // out-of-band rejoin, restricted to the observer's island).
            let fallback = state
                .fingers
                .iter()
                .flatten()
                .copied()
                .find(|&f| self.is_alive(f) && self.reachable(id, f) && f != id)
                .unwrap_or_else(|| self.island_owner(id, id.plus(1)));
            successors.push(fallback);
        }
        // 2. Stabilize: check successor's predecessor.
        let succ = successors[0];
        let succ_pred = self.nodes.get(&succ.0).and_then(|s| s.predecessor);
        if let Some(p) = succ_pred {
            if self.is_alive(p) && self.reachable(id, p) && p.in_open(id, succ) {
                successors.insert(0, p);
            }
        }
        // 3. Refresh successor list from (possibly new) successor's list.
        let succ = successors[0];
        if let Some(s) = self.nodes.get(&succ.0) {
            let mut merged = vec![succ];
            merged.extend(s.successors.iter().copied().filter(|&x| x != id));
            merged.dedup();
            successors = merged;
        }
        successors.retain(|&s| self.is_alive(s) && self.reachable(id, s));
        successors.truncate(self.succ_list_len);

        // 4. Notify the successor that we might be its predecessor. An
        //    existing predecessor across the boundary is unreachable for
        //    the successor, so an island-local notifier supersedes it.
        let succ = successors[0];
        let accept = match self.nodes.get(&succ.0).and_then(|s| s.predecessor) {
            Some(p) => {
                !self.alive.contains(&p.0)
                    || !self.reachable(succ, p)
                    || id.in_open(p, succ)
                    || p == succ
            }
            None => true,
        };
        if let Some(s) = self.nodes.get_mut(&succ.0) {
            // Either we are a better predecessor for our successor, or the
            // successor is ourselves (one-node ring): adopt in both cases.
            if accept || succ == id {
                s.predecessor = Some(id);
            }
        }

        // 5. Fix fingers incrementally, resolving each start position by a
        //    best-effort lookup through the current (possibly stale) state.
        let state = self.nodes.get(&id.0).expect("node vanished mid-round");
        let mut next = state.next_finger;
        let mut finger_updates: Vec<(usize, Option<Id>)> = Vec::new();
        for _ in 0..fingers_per_round.min(ID_BITS as usize) {
            let start = id.plus_pow2(next as u32);
            let resolved = self.lookup(id, start).ok().map(|(owner, _)| owner);
            finger_updates.push((next, resolved));
            next = (next + 1) % ID_BITS as usize;
        }

        let state = self.nodes.get_mut(&id.0).expect("node vanished mid-round");
        state.successors = successors;
        for (i, f) in finger_updates {
            if f.is_some() {
                state.fingers[i] = f;
            }
        }
        state.next_finger = next;
        self.route_cache.invalidate();
    }

    /// Best-effort iterative lookup through current protocol state.
    /// Tolerates stale fingers by skipping dead next-hops; fails only if a
    /// node has no alive pointer toward the key.
    ///
    /// With the route cache enabled ([`Self::set_route_cache_capacity`])
    /// a remembered `(from, key)` route is served in one hop; the owner is
    /// the one finger descent over the current state would return, because
    /// every ring mutation clears the cache.
    pub fn lookup(&self, from: Id, key: Id) -> Result<(Id, usize), ChordError> {
        if let Some(owner) = self.route_cache.get(from, key, usize::MAX) {
            self.telemetry.counter_add("chord.lookups", 1);
            self.telemetry.counter_add("chord.route_cache.hits", 1);
            self.telemetry.counter_add("chord.hops", 1);
            self.telemetry.record("chord.lookup.hops", 1);
            return Ok((owner, 1));
        }
        if self.route_cache.enabled() {
            self.telemetry.counter_add("chord.route_cache.misses", 1);
        }
        let mut touches = 0usize;
        let result = self.lookup_impl(from, key, &mut touches);
        self.telemetry.counter_add("chord.lookups", 1);
        self.telemetry
            .counter_add("chord.finger_touches", touches as u64);
        match &result {
            Ok((owner, hops)) => {
                self.telemetry.counter_add("chord.hops", *hops as u64);
                self.telemetry.record("chord.lookup.hops", *hops as u64);
                self.route_cache.insert(from, key, *owner, *hops);
            }
            Err(_) => self.telemetry.counter_add("chord.lookup_failures", 1),
        }
        result
    }

    fn lookup_impl(
        &self,
        from: Id,
        key: Id,
        touches: &mut usize,
    ) -> Result<(Id, usize), ChordError> {
        let mut current = from;
        let mut hops = 0usize;
        let mut visited = 0usize;
        let budget = 2 * ID_BITS as usize + self.len();
        loop {
            let state = self.node(current)?;
            let succ = self
                .live_successor(current, state)
                .ok_or(ChordError::RoutingFailed { from, key })?;
            if succ == current || key.in_open_closed(current, succ) {
                return Ok((succ, hops + 1));
            }
            // Closest preceding *alive, reachable* pointer among fingers +
            // successors.
            let mut next: Option<Id> = None;
            for f in state
                .fingers
                .iter()
                .flatten()
                .copied()
                .chain(state.successors.iter().copied())
            {
                *touches += 1;
                if self.is_alive(f) && self.reachable(current, f) && f.in_open(current, key) {
                    // Farthest strictly-preceding pointer wins.
                    next = Some(match next {
                        Some(best) if f.in_open(best, key) => f,
                        Some(best) => best,
                        None => f,
                    });
                }
            }
            let next = next.unwrap_or(succ);
            if next == current {
                return Err(ChordError::RoutingFailed { from, key });
            }
            current = next;
            hops += 1;
            visited += 1;
            if visited > budget {
                return Err(ChordError::RoutingFailed { from, key });
            }
        }
    }

    /// Failure-aware lookup: like [`Self::lookup`], but backtracks through
    /// alternate pointers (the successor list as detour routes) instead of
    /// failing when the greedy path dead-ends on stale state, under a total
    /// budget of `hop_budget` forward moves.
    ///
    /// Greedy Chord forwarding fails mid-churn when a node's best pointer
    /// leads into a cluster of failed nodes with no alive pointer past the
    /// key. This variant treats routing as a depth-first search over alive
    /// pointers — each node's candidates are tried closest-to-key first,
    /// with the successor list appended as fallback detours — so a query
    /// only fails when *no* alive path reaches an owner within the budget.
    /// On a converged ring it follows exactly the greedy path and returns
    /// the same owner and hop count as [`Self::lookup`].
    pub fn lookup_resilient(
        &self,
        from: Id,
        key: Id,
        hop_budget: usize,
    ) -> Result<(Id, usize), ChordError> {
        // A cached route is served only when the recorded uncached walk
        // fits the caller's budget (`hops - 1` forward moves), so caching
        // never turns a would-be budget failure into a success.
        if let Some(owner) = self.route_cache.get(from, key, hop_budget) {
            self.telemetry.counter_add("chord.resilient.lookups", 1);
            self.telemetry.counter_add("chord.route_cache.hits", 1);
            self.telemetry.record("chord.resilient.lookup.hops", 1);
            self.telemetry.event(
                "chord.lookup_resilient",
                &[
                    ("hops", 1usize.into()),
                    ("backtracks", 0usize.into()),
                    ("ok", true.into()),
                ],
            );
            return Ok((owner, 1));
        }
        if self.route_cache.enabled() {
            self.telemetry.counter_add("chord.route_cache.misses", 1);
        }
        // NOTE: resilient successes are deliberately *not* recorded in the
        // cache. A backtrack-free DFS can still deviate from the greedy
        // path after a successor-list detour (it skips visited nodes where
        // greedy would cycle), so only greedy successes — whose path the
        // DFS provably retraces on unchanged state — populate entries.
        let mut backtracks = 0usize;
        let mut hops_used = 0usize;
        let result =
            self.lookup_resilient_impl(from, key, hop_budget, &[], &mut hops_used, &mut backtracks);
        self.telemetry.counter_add("chord.resilient.lookups", 1);
        self.telemetry
            .counter_add("chord.resilient.hops", hops_used as u64);
        self.telemetry
            .counter_add("chord.resilient.backtracks", backtracks as u64);
        let (ok, hops) = match &result {
            Ok((_, hops)) => {
                self.telemetry
                    .record("chord.resilient.lookup.hops", *hops as u64);
                (true, *hops)
            }
            Err(_) => {
                self.telemetry.counter_add("chord.resilient.failures", 1);
                (false, hops_used)
            }
        };
        self.telemetry.event(
            "chord.lookup_resilient",
            &[
                ("hops", hops.into()),
                ("backtracks", backtracks.into()),
                ("ok", ok.into()),
            ],
        );
        result
    }

    fn lookup_resilient_impl(
        &self,
        from: Id,
        key: Id,
        hop_budget: usize,
        avoid: &[Id],
        hops_used: &mut usize,
        backtracks: &mut usize,
    ) -> Result<(Id, usize), ChordError> {
        self.node(from)?;
        let mut visited: std::collections::HashSet<u32> = std::collections::HashSet::new();
        // Avoided peers are pre-visited: the DFS never relays through a
        // suspect. (The origin itself cannot be avoided — `current` is
        // inserted on arrival regardless.)
        for a in avoid {
            visited.insert(a.0);
        }
        // DFS stack: (candidates out of a node, index of the next to try).
        let mut stack: Vec<(Vec<Id>, usize)> = Vec::new();
        let mut current = from;
        let mut hops = 0usize;
        loop {
            visited.insert(current.0);
            // Terminal test: current's first live successor owns the key.
            if let Ok(state) = self.node(current) {
                if let Some(succ) = self.live_successor(current, state) {
                    if succ == current || key.in_open_closed(current, succ) {
                        // Detour semantics: if the owner itself is to be
                        // avoided, walk its successor list to the first
                        // acceptable replica holder, paying one hop per
                        // chain step. With an empty avoid set this returns
                        // the owner immediately — bit-identical to the
                        // plain resilient walk.
                        if let Some((serving, extra)) = self.detour_owner(succ, avoid) {
                            return Ok((serving, hops + 1 + extra));
                        }
                    }
                }
            }
            // Detour-only second terminal: when the owner's *predecessor*
            // is avoided, no reachable node can see the owner as its live
            // successor — but the DFS can still arrive at the owner itself
            // through a successor-list chain. A node standing on a key it
            // owns (alive predecessor strictly precedes the key) serves it
            // directly. Guarded on a non-empty avoid set so the plain
            // resilient walk is bit-identical to earlier revisions.
            if !avoid.is_empty() {
                if let Ok(state) = self.node(current) {
                    if let Some(pred) = state.predecessor {
                        if pred != current
                            && self.is_alive(pred)
                            && self.reachable(current, pred)
                            && key.in_open_closed(pred, current)
                        {
                            if let Some((serving, extra)) = self.detour_owner(current, avoid) {
                                return Ok((serving, hops + extra));
                            }
                        }
                    }
                }
            }
            stack.push((self.route_candidates(current, key), 0));
            // Advance to the next unvisited candidate, backtracking through
            // exhausted frames.
            loop {
                let Some((cands, idx)) = stack.last_mut() else {
                    return Err(ChordError::RoutingFailed { from, key });
                };
                if let Some(&c) = cands.get(*idx) {
                    *idx += 1;
                    if visited.contains(&c.0) {
                        continue;
                    }
                    if hops >= hop_budget {
                        return Err(ChordError::RoutingFailed { from, key });
                    }
                    hops += 1;
                    *hops_used = hops;
                    current = c;
                    break;
                }
                stack.pop();
                *backtracks += 1;
            }
        }
    }

    /// Hedged-lookup routing: like [`Self::lookup_resilient`], but the
    /// peers in `avoid` are never used — not as relays (the DFS treats
    /// them as already visited) and not as the serving owner (an avoided
    /// owner is substituted by its first alive non-avoided successor, one
    /// hop per successor-chain step, honestly counted). This is how a
    /// backup lookup detours around the suspected-slow primary: with
    /// replication `r ≥ 2` the substitute is exactly the next replica
    /// holder of the key.
    ///
    /// With an empty `avoid` set this is bit-identical to
    /// [`Self::lookup_resilient`] (no route cache is consulted either
    /// way here — avoid sets would poison shared entries).
    ///
    /// Fails with [`ChordError::RoutingFailed`] when every path or every
    /// substitute owner is avoided or dead within `hop_budget`.
    pub fn lookup_detour(
        &self,
        from: Id,
        key: Id,
        hop_budget: usize,
        avoid: &[Id],
    ) -> Result<(Id, usize), ChordError> {
        let mut backtracks = 0usize;
        let mut hops_used = 0usize;
        let result = self.lookup_resilient_impl(
            from,
            key,
            hop_budget,
            avoid,
            &mut hops_used,
            &mut backtracks,
        );
        self.telemetry.counter_add("chord.detour.lookups", 1);
        match &result {
            Ok((_, hops)) => {
                self.telemetry
                    .counter_add("chord.detour.hops", *hops as u64);
                self.telemetry
                    .record("chord.detour.lookup.hops", *hops as u64);
            }
            Err(_) => self.telemetry.counter_add("chord.detour.failures", 1),
        }
        result
    }

    /// Public entry to the successor-list substitution step alone, for
    /// callers that already routed to `owner` and only need the chain
    /// walk (e.g. a circuit-breaker short-circuit that re-uses the paid
    /// route): [`Self::lookup_detour`] re-routes from scratch; this costs
    /// only the returned chain steps.
    pub fn successor_substitute(&self, owner: Id, avoid: &[Id]) -> Option<(Id, usize)> {
        self.detour_owner(owner, avoid)
    }

    /// The node that actually serves a key owned by `owner` under an
    /// avoid set: `owner` itself when acceptable (0 extra hops), else the
    /// first alive, reachable, non-avoided entry of its successor list
    /// (1 extra hop per chain step walked). `None` when the whole chain
    /// is avoided or dead.
    fn detour_owner(&self, owner: Id, avoid: &[Id]) -> Option<(Id, usize)> {
        if !avoid.contains(&owner) {
            return Some((owner, 0));
        }
        let state = self.node(owner).ok()?;
        let mut extra = 0usize;
        for &s in &state.successors {
            if s == owner || !self.is_alive(s) || !self.reachable(owner, s) {
                continue;
            }
            extra += 1;
            if !avoid.contains(&s) {
                return Some((s, extra));
            }
        }
        None
    }

    /// Alive next-hop candidates out of `current` toward `key`, best
    /// first: pointers strictly preceding the key (they make progress),
    /// ordered closest-to-key first, then the remaining alive
    /// successor-list entries as detours around a gap of failed nodes.
    fn route_candidates(&self, current: Id, key: Id) -> Vec<Id> {
        let Ok(state) = self.node(current) else {
            return Vec::new();
        };
        let mut preceding: Vec<Id> = state
            .fingers
            .iter()
            .flatten()
            .copied()
            .chain(state.successors.iter().copied())
            .filter(|&f| self.is_alive(f) && self.reachable(current, f) && f.in_open(current, key))
            .collect();
        preceding.sort_by_key(|c| key.0.wrapping_sub(c.0));
        preceding.dedup();
        let mut out = preceding;
        for &s in &state.successors {
            if self.is_alive(s) && self.reachable(current, s) && s != current && !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    /// True when every node's first alive *reachable* successor equals the
    /// next node its island can see on the circle. On a connected network
    /// this is the ground-truth circle; while partitioned it is each
    /// island's own collapsed ring, so `stabilize_until_consistent`
    /// converges to the split-brain steady state rather than spinning
    /// against an unreachable truth.
    pub fn is_ring_consistent(&self) -> bool {
        self.alive.iter().all(|&v| {
            let id = Id(v);
            let state = &self.nodes[&v];
            match self.live_successor(id, state) {
                Some(s) => s == self.island_owner(id, id.plus(1)),
                None => self.len() == 1,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_common::DetRng;

    fn grow_network(n: usize, seed: u64) -> DynamicNetwork {
        let mut rng = DetRng::new(seed);
        let first = Id(rng.next_u32());
        let mut net = DynamicNetwork::bootstrap(first, 8);
        while net.len() < n {
            let new = Id(rng.next_u32());
            if net.node_ids().contains(&new) {
                continue;
            }
            net.join(new, first).unwrap();
            net.stabilize_all(32);
        }
        net.stabilize_until_consistent(64)
            .expect("network failed to converge while growing");
        net
    }

    #[test]
    fn bootstrap_single_node() {
        let net = DynamicNetwork::bootstrap(Id(42), 4);
        assert_eq!(net.len(), 1);
        assert!(net.is_ring_consistent());
        assert_eq!(net.true_owner(Id(7)), Id(42));
        let (owner, _) = net.lookup(Id(42), Id(1000)).unwrap();
        assert_eq!(owner, Id(42));
    }

    #[test]
    fn snapshot_ring_agrees_with_true_owner() {
        let net = grow_network(40, 99);
        let ring = net.snapshot_ring();
        assert_eq!(ring.len(), net.len());
        let mut probe = DetRng::new(5);
        for _ in 0..200 {
            let key = Id(probe.next_u32());
            assert_eq!(ring.successor_of(key), net.true_owner(key));
        }
    }

    #[test]
    fn join_two_nodes() {
        let mut net = DynamicNetwork::bootstrap(Id(100), 4);
        net.join(Id(200), Id(100)).unwrap();
        net.stabilize_until_consistent(16).expect("no convergence");
        assert_eq!(net.len(), 2);
        assert_eq!(net.lookup(Id(100), Id(150)).unwrap().0, Id(200));
        assert_eq!(net.lookup(Id(200), Id(250)).unwrap().0, Id(100));
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut net = DynamicNetwork::bootstrap(Id(1), 4);
        assert_eq!(
            net.join(Id(1), Id(1)),
            Err(ChordError::DuplicateNode(Id(1)))
        );
    }

    #[test]
    fn join_via_unknown_rejected() {
        let mut net = DynamicNetwork::bootstrap(Id(1), 4);
        assert_eq!(
            net.join(Id(2), Id(99)),
            Err(ChordError::UnknownNode(Id(99)))
        );
    }

    #[test]
    fn grown_network_resolves_lookups_correctly() {
        let net = grow_network(40, 7);
        let mut rng = DetRng::new(99);
        let ids = net.node_ids();
        for _ in 0..200 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            let (owner, hops) = net.lookup(from, key).unwrap();
            assert_eq!(owner, net.true_owner(key));
            assert!(hops <= 40);
        }
    }

    #[test]
    fn detour_with_empty_avoid_matches_resilient() {
        let net = grow_network(30, 21);
        let ids = net.node_ids();
        let mut rng = DetRng::new(3);
        for _ in 0..100 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            assert_eq!(
                net.lookup_detour(from, key, 64, &[]),
                net.lookup_resilient(from, key, 64),
                "empty avoid set must be bit-identical"
            );
        }
    }

    #[test]
    fn detour_skips_avoided_owner_to_its_successor() {
        let net = grow_network(25, 33);
        let ids = net.node_ids();
        let mut rng = DetRng::new(9);
        let mut substituted = 0;
        for _ in 0..100 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            let owner = net.true_owner(key);
            if owner == from {
                continue;
            }
            let (plain_owner, plain_hops) = net.lookup_resilient(from, key, 64).unwrap();
            assert_eq!(plain_owner, owner);
            let (serving, hops) = net.lookup_detour(from, key, 64, &[owner]).unwrap();
            assert_ne!(serving, owner, "avoided owner must never serve");
            // The substitute is the next replica holder on the ring.
            assert_eq!(serving, net.true_successors(key, 2)[1]);
            assert!(
                hops >= plain_hops,
                "the successor-chain step is honestly counted"
            );
            substituted += 1;
        }
        assert!(substituted > 50, "the scenario must actually exercise");
    }

    #[test]
    fn detour_never_relays_through_avoided_peers() {
        // Avoiding an intermediate (not the owner) still resolves to the
        // true owner — the DFS routes around the suspect.
        let net = grow_network(25, 44);
        let ids = net.node_ids();
        let mut rng = DetRng::new(17);
        for _ in 0..100 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            let owner = net.true_owner(key);
            // Pick a suspect that is neither endpoint.
            let suspect = ids[rng.gen_index(ids.len())];
            if suspect == from || suspect == owner {
                continue;
            }
            let (serving, _) = net
                .lookup_detour(from, key, 128, &[suspect])
                .expect("one avoided relay cannot partition a healthy ring");
            assert_eq!(serving, owner, "avoiding a relay must not change the owner");
        }
    }

    #[test]
    fn graceful_leave_preserves_consistency() {
        let mut net = grow_network(20, 11);
        let victim = net.node_ids()[5];
        net.leave(victim).unwrap();
        // Graceful leave keeps the ring consistent after at most a couple of
        // rounds (often immediately).
        net.stabilize_until_consistent(16).expect("no convergence");
        assert_eq!(net.len(), 19);
        assert!(!net.node_ids().contains(&victim));
    }

    #[test]
    fn abrupt_failure_recovers_via_stabilization() {
        let mut net = grow_network(30, 13);
        let mut rng = DetRng::new(5);
        // Fail 5 random nodes at once.
        for _ in 0..5 {
            let ids = net.node_ids();
            let victim = ids[rng.gen_index(ids.len())];
            net.fail(victim).unwrap();
        }
        let rounds = net
            .stabilize_until_consistent(64)
            .expect("failed to recover from 5 failures");
        assert!(rounds <= 64);
        // After recovery, lookups are correct again.
        let ids = net.node_ids();
        for _ in 0..100 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            assert_eq!(net.lookup(from, key).unwrap().0, net.true_owner(key));
        }
    }

    #[test]
    fn last_node_cannot_be_removed() {
        let mut net = DynamicNetwork::bootstrap(Id(9), 4);
        assert_eq!(net.fail(Id(9)), Err(ChordError::LastNode));
        assert_eq!(net.leave(Id(9)), Err(ChordError::LastNode));
    }

    #[test]
    fn continuous_churn_converges() {
        let mut net = grow_network(25, 17);
        let mut rng = DetRng::new(23);
        for step in 0..30 {
            if rng.gen_bool(0.5) && net.len() > 5 {
                let ids = net.node_ids();
                let victim = ids[rng.gen_index(ids.len())];
                if rng.gen_bool(0.5) {
                    net.fail(victim).unwrap();
                } else {
                    net.leave(victim).unwrap();
                }
            } else {
                let ids = net.node_ids();
                let via = ids[rng.gen_index(ids.len())];
                let new = Id(rng.next_u32());
                if !ids.contains(&new) {
                    // Join may fail if routing is degraded mid-churn; that is
                    // acceptable — a real node retries.
                    let _ = net.join(new, via);
                }
            }
            net.stabilize_all(8);
            let _ = step;
        }
        net.stabilize_until_consistent(128)
            .expect("churned network failed to converge");
    }

    #[test]
    fn error_display() {
        let e = ChordError::RoutingFailed {
            from: Id(1),
            key: Id(2),
        };
        assert!(format!("{e}").contains("routing failed"));
        let e = ChordError::NotConverged { rounds: 64 };
        assert!(format!("{e}").contains("64"));
    }

    #[test]
    fn true_successors_walk_the_circle() {
        let net = grow_network(10, 3);
        let ids = net.node_ids();
        let key = Id(ids[4].0.wrapping_add(1));
        let succs = net.true_successors(key, 3);
        assert_eq!(succs.len(), 3);
        assert_eq!(succs[0], net.true_owner(key));
        // Consecutive on the circle.
        for w in succs.windows(2) {
            assert_eq!(net.true_owner(w[0].plus(1)), w[1]);
        }
        // Count is clamped to the network size, without duplicates.
        let all = net.true_successors(key, 50);
        assert_eq!(all.len(), 10);
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn resilient_agrees_with_greedy_on_converged_ring() {
        let net = grow_network(40, 7);
        let mut rng = DetRng::new(99);
        let ids = net.node_ids();
        for _ in 0..200 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            let greedy = net.lookup(from, key).unwrap();
            let resilient = net.lookup_resilient(from, key, 128).unwrap();
            assert_eq!(greedy, resilient, "paths diverge on a clean ring");
        }
    }

    #[test]
    fn resilient_routes_around_mass_failure_before_stabilization() {
        // Fail a third of the network and do NOT stabilize: greedy lookups
        // hit dead pointers; the resilient lookup must still find every key
        // whose alive owner is reachable, and must never panic.
        let mut net = grow_network(30, 21);
        let mut rng = DetRng::new(4);
        for _ in 0..10 {
            let ids = net.node_ids();
            let victim = ids[rng.gen_index(ids.len())];
            net.fail(victim).unwrap();
        }
        let ids = net.node_ids();
        let mut greedy_fail = 0;
        let mut resilient_fail = 0;
        for _ in 0..300 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            let greedy = net.lookup(from, key);
            let resilient = net.lookup_resilient(from, key, 256);
            greedy_fail += greedy.is_err() as usize;
            resilient_fail += resilient.is_err() as usize;
            // Wherever greedy succeeds, resilient must too.
            if greedy.is_ok() {
                assert!(resilient.is_ok(), "resilient failed where greedy worked");
            }
        }
        assert!(
            resilient_fail <= greedy_fail,
            "backtracking lost lookups: {resilient_fail} > {greedy_fail}"
        );
    }

    #[test]
    fn resilient_respects_hop_budget() {
        let net = grow_network(30, 5);
        let ids = net.node_ids();
        let err = net.lookup_resilient(ids[0], Id(ids[0].0.wrapping_sub(1)), 0);
        // Budget 0 allows no forward move: only keys owned by the start's
        // own successor resolve; the far key must fail gracefully.
        match err {
            Ok((_, hops)) => assert_eq!(hops, 1),
            Err(ChordError::RoutingFailed { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn telemetry_counts_lookups_and_emits_resilient_events() {
        let mut net = grow_network(20, 7);
        let tel = ars_telemetry::Telemetry::recording();
        net.set_telemetry(tel.clone());
        let ids = net.node_ids();
        let mut rng = DetRng::new(1);
        for _ in 0..10 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            net.lookup(from, key).unwrap();
            net.lookup_resilient(from, key, 64).unwrap();
        }
        let snap = tel.snapshot();
        assert_eq!(snap.counter("chord.lookups"), 10);
        assert_eq!(snap.counter("chord.lookup_failures"), 0);
        assert_eq!(snap.counter("chord.resilient.lookups"), 10);
        assert!(snap.counter("chord.finger_touches") > 0);
        assert_eq!(snap.hist("chord.lookup.hops").unwrap().count, 10);
        // Healthy converged ring: the DFS never backtracks.
        assert_eq!(snap.counter("chord.resilient.backtracks"), 0);
        let events = tel.events_named("chord.lookup_resilient");
        assert_eq!(events.len(), 10);
        assert!(events.iter().all(|e| e.field_bool("ok") == Some(true)));
        assert!(events.iter().all(|e| e.field_u64("backtracks") == Some(0)));
    }

    #[test]
    fn resilient_from_unknown_node_errors() {
        let net = grow_network(5, 9);
        assert!(matches!(
            net.lookup_resilient(Id(0xDEAD_0000), Id(1), 32),
            Err(ChordError::UnknownNode(_))
        ));
    }

    #[test]
    fn route_cache_serves_same_owner_in_one_hop() {
        let mut net = grow_network(30, 7);
        net.set_route_cache_capacity(256);
        let ids = net.node_ids();
        let mut rng = DetRng::new(3);
        let pairs: Vec<(Id, Id)> = (0..50)
            .map(|_| (ids[rng.gen_index(ids.len())], Id(rng.next_u32())))
            .collect();
        let cold: Vec<(Id, usize)> = pairs
            .iter()
            .map(|&(from, key)| net.lookup(from, key).unwrap())
            .collect();
        let warm: Vec<(Id, usize)> = pairs
            .iter()
            .map(|&(from, key)| net.lookup(from, key).unwrap())
            .collect();
        for (i, ((co, ch), (wo, wh))) in cold.iter().zip(&warm).enumerate() {
            assert_eq!(co, wo, "owner changed on cache hit (pair {i})");
            assert_eq!(*wh, 1, "cached route must cost one hop");
            assert!(wh <= ch, "cache increased hops (pair {i})");
        }
        let stats = net.route_cache_stats();
        assert_eq!(stats.hits, 50);
        assert_eq!(stats.misses, 50);
        assert_eq!(stats.insertions, 50);
        assert!(net.route_cache_len() <= 256);
    }

    #[test]
    fn route_cache_capacity_evicts_fifo() {
        let mut net = grow_network(20, 11);
        net.set_route_cache_capacity(4);
        let ids = net.node_ids();
        for i in 0..10u32 {
            net.lookup(ids[0], Id(i.wrapping_mul(0x1357_9BDF))).unwrap();
        }
        assert!(net.route_cache_len() <= 4);
        let stats = net.route_cache_stats();
        assert_eq!(stats.evictions, stats.insertions - 4);
    }

    #[test]
    fn route_cache_invalidated_by_every_churn_event() {
        let mut net = grow_network(20, 13);
        net.set_route_cache_capacity(256);
        let ids = net.node_ids();
        net.lookup(ids[0], Id(12345)).unwrap();
        assert!(net.route_cache_len() > 0);
        net.fail(ids[5]).unwrap();
        assert_eq!(net.route_cache_len(), 0, "fail must clear routes");
        net.lookup(ids[0], Id(12345)).unwrap();
        net.leave(ids[6]).unwrap();
        assert_eq!(net.route_cache_len(), 0, "leave must clear routes");
        net.lookup(ids[0], Id(12345)).unwrap();
        net.join(Id(0x7777_7777), ids[0]).unwrap();
        assert_eq!(net.route_cache_len(), 0, "join must clear routes");
        net.lookup(ids[0], Id(12345)).unwrap();
        net.stabilize_all(4);
        assert_eq!(net.route_cache_len(), 0, "stabilization must clear routes");
        assert!(net.route_cache_stats().invalidated >= 4);
    }

    #[test]
    fn route_cache_never_serves_stale_owner_across_churn() {
        // Cache a route, kill its owner, stabilize: the next lookup must
        // re-route to the new ground-truth owner, identically to an
        // uncached network.
        let mut net = grow_network(25, 17);
        net.set_route_cache_capacity(256);
        let mut rng = DetRng::new(9);
        for round in 0..8 {
            let ids = net.node_ids();
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            let (owner, _) = net.lookup(from, key).unwrap();
            if net.len() > 2 && owner != from {
                net.fail(owner).unwrap();
                net.stabilize_until_consistent(64).expect("recovers");
                let ids = net.node_ids();
                let from = ids[rng.gen_index(ids.len())];
                let (new_owner, _) = net.lookup(from, key).unwrap();
                assert_eq!(new_owner, net.true_owner(key), "round {round}");
                assert_ne!(new_owner, owner, "owner is dead (round {round})");
            }
        }
    }

    #[test]
    fn cached_and_uncached_lookups_agree_under_churn() {
        // Twin networks driven through the same operation stream: the
        // cached one must return the same owners and success/failure
        // pattern, with hop counts never above the uncached one's.
        let mut cached = grow_network(24, 19);
        let mut plain = cached.clone();
        cached.set_route_cache_capacity(128);
        let mut rng = DetRng::new(21);
        for step in 0..200 {
            match rng.gen_index(10) {
                0 if cached.len() > 5 => {
                    let ids = cached.node_ids();
                    let victim = ids[rng.gen_index(ids.len())];
                    cached.fail(victim).unwrap();
                    plain.fail(victim).unwrap();
                }
                1 if cached.len() > 5 => {
                    let ids = cached.node_ids();
                    let victim = ids[rng.gen_index(ids.len())];
                    cached.leave(victim).unwrap();
                    plain.leave(victim).unwrap();
                }
                2 => {
                    cached.stabilize_all(8);
                    plain.stabilize_all(8);
                }
                _ => {
                    let ids = cached.node_ids();
                    let from = ids[rng.gen_index(ids.len())];
                    let key = Id(rng.next_u32());
                    let a = cached.lookup(from, key);
                    let b = plain.lookup(from, key);
                    match (&a, &b) {
                        (Ok((ao, ah)), Ok((bo, bh))) => {
                            assert_eq!(ao, bo, "owners diverged at step {step}");
                            assert!(ah <= bh, "cache increased hops at step {step}");
                        }
                        (Err(_), Err(_)) => {}
                        _ => panic!("success pattern diverged at step {step}: {a:?} vs {b:?}"),
                    }
                    let ra = cached.lookup_resilient(from, key, 64);
                    let rb = plain.lookup_resilient(from, key, 64);
                    match (&ra, &rb) {
                        (Ok((ao, ah)), Ok((bo, bh))) => {
                            assert_eq!(ao, bo, "resilient owners diverged at step {step}");
                            assert!(ah <= bh, "cache increased resilient hops at step {step}");
                        }
                        (Err(_), Err(_)) => {}
                        _ => panic!("resilient pattern diverged at step {step}"),
                    }
                }
            }
        }
        assert!(
            cached.route_cache_stats().hits > 0,
            "the equivalence run never exercised a cache hit"
        );
    }

    /// Carve off the `k` smallest-id nodes as a minority island.
    fn split(net: &mut DynamicNetwork, k: usize) -> (Vec<Id>, Vec<Id>) {
        let ids = net.node_ids();
        assert!(k < ids.len());
        let minority: Vec<Id> = ids[..k].to_vec();
        let majority: Vec<Id> = ids[k..].to_vec();
        net.partition(&[majority.clone(), minority.clone()]);
        (majority, minority)
    }

    #[test]
    fn partition_collapses_each_island_onto_its_members() {
        let mut net = grow_network(30, 31);
        let (majority, minority) = split(&mut net, 9);
        net.stabilize_until_consistent(64)
            .expect("islands each converge to their own ring");
        let mut rng = DetRng::new(8);
        // Lookups from either side resolve to owners on the same side.
        for _ in 0..100 {
            let key = Id(rng.next_u32());
            let from_maj = majority[rng.gen_index(majority.len())];
            let (owner, _) = net.lookup(from_maj, key).unwrap();
            assert!(majority.contains(&owner), "majority lookup left island");
            assert_eq!(owner, net.island_owner(from_maj, key));
            let from_min = minority[rng.gen_index(minority.len())];
            let (owner, _) = net.lookup(from_min, key).unwrap();
            assert!(minority.contains(&owner), "minority lookup left island");
            assert_eq!(owner, net.island_owner(from_min, key));
        }
    }

    #[test]
    fn ring_view_detects_split_brain_iff_partitioned() {
        let mut net = grow_network(24, 33);
        net.stabilize_until_consistent(64).expect("converges");
        assert!(
            !net.ring_view().is_split_brain(),
            "healthy converged ring misreported"
        );
        split(&mut net, 8);
        net.stabilize_until_consistent(64)
            .expect("split rings converge");
        let view = net.ring_view();
        assert!(view.is_split_brain(), "split ring not detected");
        assert!(!view.contested().is_empty());
        net.heal();
        net.stabilize_until_consistent(64)
            .expect("healed ring converges");
        // A few extra rounds to settle predecessors after the merge.
        net.stabilize_all(ID_BITS as usize);
        assert!(
            !net.ring_view().is_split_brain(),
            "healed ring still contested"
        );
    }

    #[test]
    fn heal_restores_global_lookup_correctness() {
        let mut net = grow_network(30, 37);
        split(&mut net, 10);
        // Long window: stabilize until every finger is island-local.
        for _ in 0..8 {
            net.stabilize_all(ID_BITS as usize);
        }
        net.heal();
        assert!(!net.is_partitioned());
        net.stabilize_until_consistent(128)
            .expect("healed network re-merges");
        net.stabilize_all(ID_BITS as usize);
        let ids = net.node_ids();
        let mut rng = DetRng::new(12);
        for _ in 0..200 {
            let from = ids[rng.gen_index(ids.len())];
            let key = Id(rng.next_u32());
            assert_eq!(net.lookup(from, key).unwrap().0, net.true_owner(key));
        }
    }

    #[test]
    fn heal_is_deterministic() {
        let run = |seed| {
            let mut net = grow_network(20, seed);
            split(&mut net, 6);
            for _ in 0..4 {
                net.stabilize_all(ID_BITS as usize);
            }
            let rejoined = net.heal();
            net.stabilize_until_consistent(64).expect("re-merges");
            (rejoined, net.node_ids())
        };
        assert_eq!(run(41), run(41));
    }

    #[test]
    fn route_cache_invalidated_on_partition_and_heal() {
        let mut net = grow_network(20, 43);
        net.set_route_cache_capacity(256);
        let ids = net.node_ids();
        net.lookup(ids[0], Id(12345)).unwrap();
        assert!(net.route_cache_len() > 0);
        net.partition(&[ids[10..].to_vec(), ids[..10].to_vec()]);
        assert_eq!(net.route_cache_len(), 0, "partition must clear routes");
        net.stabilize_until_consistent(64).expect("islands settle");
        net.lookup(ids[0], Id(12345)).unwrap();
        assert!(net.route_cache_len() > 0);
        net.heal();
        assert_eq!(net.route_cache_len(), 0, "heal must clear routes");
    }

    #[test]
    fn cached_lookup_never_serves_stale_island_owner_after_heal() {
        // During the window the cache memoizes island-local owners; after
        // heal() the same (from, key) pair must resolve to the global
        // ground truth, exactly like an uncached network.
        let mut net = grow_network(24, 47);
        net.set_route_cache_capacity(256);
        let (majority, minority) = split(&mut net, 8);
        net.stabilize_until_consistent(64).expect("islands settle");
        let from = minority[0];
        let mut rng = DetRng::new(3);
        let keys: Vec<Id> = (0..50).map(|_| Id(rng.next_u32())).collect();
        for &key in &keys {
            let (owner, _) = net.lookup(from, key).unwrap();
            assert!(minority.contains(&owner));
        }
        net.heal();
        net.stabilize_until_consistent(128).expect("re-merges");
        net.stabilize_all(ID_BITS as usize);
        for &key in &keys {
            let (owner, _) = net.lookup(from, key).unwrap();
            assert_eq!(
                owner,
                net.true_owner(key),
                "stale island route served across the healed boundary"
            );
        }
        let _ = majority;
    }

    #[test]
    fn island_successors_match_truth_when_connected() {
        let net = grow_network(15, 51);
        let ids = net.node_ids();
        let key = Id(ids[3].0.wrapping_add(1));
        assert_eq!(
            net.island_successors(ids[0], key, 4),
            net.true_successors(key, 4)
        );
        assert_eq!(net.island_owner(ids[0], key), net.true_owner(key));
        assert!(net.reachable(ids[0], ids[1]));
        assert_eq!(net.island_of(ids[0]), 0);
    }

    #[test]
    #[should_panic(expected = "two islands")]
    fn partition_rejects_single_island() {
        let mut net = grow_network(5, 53);
        let ids = net.node_ids();
        net.partition(&[ids]);
    }

    #[test]
    #[should_panic(expected = "not alive")]
    fn partition_rejects_dead_member() {
        let mut net = grow_network(5, 57);
        let ids = net.node_ids();
        net.partition(&[vec![ids[0]], vec![Id(0xDEAD_BEEF)]]);
    }

    #[test]
    fn join_during_partition_lands_on_contact_island() {
        let mut net = grow_network(20, 59);
        let (majority, minority) = split(&mut net, 6);
        net.stabilize_until_consistent(64).expect("islands settle");
        let new = Id(0x4242_4242);
        assert!(!net.node_ids().contains(&new));
        net.join(new, minority[0]).unwrap();
        assert_eq!(net.island_of(new), net.island_of(minority[0]));
        assert!(net.reachable(new, minority[0]));
        assert!(!net.reachable(new, majority[0]));
    }

    #[test]
    fn route_cache_disabled_by_default_and_stats_stay_zero() {
        let net = grow_network(10, 23);
        let ids = net.node_ids();
        net.lookup(ids[0], Id(99)).unwrap();
        net.lookup(ids[0], Id(99)).unwrap();
        assert_eq!(net.route_cache_stats(), RouteCacheStats::default());
        assert_eq!(net.route_cache_len(), 0);
    }

    #[test]
    fn route_cache_telemetry_counters_mirror_stats() {
        let mut net = grow_network(15, 27);
        net.set_route_cache_capacity(64);
        let tel = ars_telemetry::Telemetry::recording();
        net.set_telemetry(tel.clone());
        let ids = net.node_ids();
        for _ in 0..3 {
            for k in 0..5u32 {
                net.lookup(ids[0], Id(k.wrapping_mul(0x0101_0101))).unwrap();
                net.lookup_resilient(ids[1], Id(k.wrapping_mul(0x0202_0202)), 64)
                    .unwrap();
            }
        }
        let stats = net.route_cache_stats();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("chord.route_cache.hits"), stats.hits);
        assert_eq!(snap.counter("chord.route_cache.misses"), stats.misses);
        assert!(stats.hits > 0);
        // Resilient lookups consult but never insert; only the 5 greedy
        // keys are memoized.
        assert_eq!(stats.insertions, 5);
    }
}
