//! Static ring construction.
//!
//! The scalability experiments (Figs. 11–12) measure a stable network: `N`
//! peers hashed onto the circle, full finger tables, no churn. [`Ring`]
//! builds that state directly — ids sorted, every finger resolved exactly —
//! so measurements reflect the algorithm rather than convergence noise.
//! Churn and convergence live in [`crate::dynamic`].

use crate::finger::FingerTable;
use crate::id::Id;
use crate::lookup::{lookup_trace, LookupTrace};
use ars_common::{DetRng, FxHashMap};

/// A fully-converged Chord ring.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted, deduplicated node ids.
    ids: Vec<Id>,
    /// Finger table per node, parallel to `ids`.
    fingers: Vec<FingerTable>,
    /// Node id → index in `ids`.
    index: FxHashMap<u32, usize>,
}

impl Ring {
    /// Build a ring from arbitrary node ids (sorted and deduplicated).
    ///
    /// # Panics
    /// Panics if no ids are given.
    pub fn new(mut ids: Vec<Id>) -> Ring {
        ids.sort_unstable();
        ids.dedup();
        assert!(!ids.is_empty(), "a ring needs at least one node");
        let index: FxHashMap<u32, usize> =
            ids.iter().enumerate().map(|(i, id)| (id.0, i)).collect();
        // Resolve fingers against the sorted id list.
        let fingers = ids
            .iter()
            .map(|&id| FingerTable::build(id, |key| successor_in(&ids, key)))
            .collect();
        Ring {
            ids,
            fingers,
            index,
        }
    }

    /// A ring of `n` peers with ids drawn uniformly from a seeded RNG.
    pub fn from_seed(n: usize, seed: u64) -> Ring {
        let mut rng = DetRng::new(seed);
        let mut ids: Vec<Id> = Vec::with_capacity(n);
        let mut seen = std::collections::BTreeSet::new();
        while ids.len() < n {
            let id = rng.next_u32();
            if seen.insert(id) {
                ids.push(Id(id));
            }
        }
        Ring::new(ids)
    }

    /// A ring of peers identified by their addresses, hashed with SHA-1
    /// exactly as the paper prescribes.
    pub fn from_addresses<S: AsRef<str>, I: IntoIterator<Item = S>>(addrs: I) -> Ring {
        Ring::new(
            addrs
                .into_iter()
                .map(|a| Id::from_address(a.as_ref()))
                .collect(),
        )
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the ring has no nodes (cannot actually occur — `new` panics —
    /// but included for API completeness).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Sorted node ids.
    pub fn node_ids(&self) -> &[Id] {
        &self.ids
    }

    /// True if `id` is a node of this ring.
    pub fn contains(&self, id: Id) -> bool {
        self.index.contains_key(&id.0)
    }

    /// The node that owns `key`: the first node clockwise from `key`
    /// (successor ownership, §4 of the paper).
    pub fn successor_of(&self, key: Id) -> Id {
        successor_in(&self.ids, key)
    }

    /// The node immediately preceding `node` on the circle.
    ///
    /// # Panics
    /// Panics if `node` is not in the ring.
    pub fn predecessor_of(&self, node: Id) -> Id {
        let i = *self.index.get(&node.0).expect("node not in ring");
        if i == 0 {
            self.ids[self.ids.len() - 1]
        } else {
            self.ids[i - 1]
        }
    }

    /// The finger table of `node`.
    ///
    /// # Panics
    /// Panics if `node` is not in the ring.
    pub fn finger_table(&self, node: Id) -> &FingerTable {
        let i = *self.index.get(&node.0).expect("node not in ring");
        &self.fingers[i]
    }

    /// Route a lookup from `from` to the owner of `key`, returning
    /// `(owner, hops)`. Hops counts overlay edges traversed (0 when the
    /// origin already owns the key).
    pub fn lookup(&self, from: Id, key: Id) -> (Id, usize) {
        let t = self.lookup_trace(from, key);
        (t.owner, t.hops())
    }

    /// Full routing trace of a lookup.
    pub fn lookup_trace(&self, from: Id, key: Id) -> LookupTrace {
        lookup_trace(self, from, key)
    }

    /// `start` and its next `window − 1` successors in ring order,
    /// deduplicated (at most `len` nodes). This is the bounded
    /// successor-list walk of layered placement: after one lookup lands on
    /// the first owner of an arc, the remaining co-located buckets are
    /// served by walking existing successor links — one overlay message
    /// per step, no routing.
    ///
    /// # Panics
    /// Panics if `start` is not a node of the ring or `window` is zero.
    pub fn successors_window(&self, start: Id, window: usize) -> Vec<Id> {
        assert!(window >= 1, "successor window must be at least 1");
        let i = *self.index.get(&start.0).expect("walk start not in ring");
        (0..window.min(self.ids.len()))
            .map(|step| self.ids[(i + step) % self.ids.len()])
            .collect()
    }
}

/// First id ≥ key in circular order over a sorted list.
fn successor_in(sorted: &[Id], key: Id) -> Id {
    debug_assert!(!sorted.is_empty());
    match sorted.binary_search(&key) {
        Ok(i) => sorted[i],
        Err(i) if i == sorted.len() => sorted[0],
        Err(i) => sorted[i],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn successor_ownership() {
        let ring = Ring::new(vec![Id(100), Id(200), Id(300)]);
        assert_eq!(ring.successor_of(Id(100)), Id(100));
        assert_eq!(ring.successor_of(Id(101)), Id(200));
        assert_eq!(ring.successor_of(Id(250)), Id(300));
        // Wraps past the top.
        assert_eq!(ring.successor_of(Id(301)), Id(100));
        assert_eq!(ring.successor_of(Id(u32::MAX)), Id(100));
        assert_eq!(ring.successor_of(Id(0)), Id(100));
    }

    #[test]
    fn predecessor_wraps() {
        let ring = Ring::new(vec![Id(100), Id(200), Id(300)]);
        assert_eq!(ring.predecessor_of(Id(100)), Id(300));
        assert_eq!(ring.predecessor_of(Id(200)), Id(100));
    }

    #[test]
    fn new_sorts_and_dedups() {
        let ring = Ring::new(vec![Id(300), Id(100), Id(300), Id(200)]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.node_ids(), &[Id(100), Id(200), Id(300)]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_ring_rejected() {
        Ring::new(vec![]);
    }

    #[test]
    fn from_seed_deterministic() {
        let a = Ring::from_seed(50, 9);
        let b = Ring::from_seed(50, 9);
        assert_eq!(a.node_ids(), b.node_ids());
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn from_addresses_uses_sha1() {
        let ring = Ring::from_addresses(["10.0.0.1:80", "10.0.0.2:80"]);
        assert_eq!(ring.len(), 2);
        assert!(ring.contains(Id::from_address("10.0.0.1:80")));
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = Ring::new(vec![Id(7)]);
        for key in [0u32, 7, 8, u32::MAX] {
            assert_eq!(ring.successor_of(Id(key)), Id(7));
        }
        assert_eq!(ring.predecessor_of(Id(7)), Id(7));
        let (owner, hops) = ring.lookup(Id(7), Id(12345));
        assert_eq!(owner, Id(7));
        assert_eq!(hops, 0);
    }

    #[test]
    fn successors_window_walks_in_ring_order() {
        let ring = Ring::new(vec![Id(100), Id(200), Id(300)]);
        assert_eq!(ring.successors_window(Id(200), 2), vec![Id(200), Id(300)]);
        // Wraps and dedups at the ring size.
        assert_eq!(
            ring.successors_window(Id(300), 5),
            vec![Id(300), Id(100), Id(200)]
        );
        assert_eq!(ring.successors_window(Id(100), 1), vec![Id(100)]);
    }

    #[test]
    #[should_panic(expected = "not in ring")]
    fn successors_window_rejects_foreign_start() {
        Ring::new(vec![Id(1)]).successors_window(Id(2), 1);
    }

    #[test]
    fn finger_tables_point_at_true_successors() {
        let ring = Ring::from_seed(64, 3);
        for &n in ring.node_ids() {
            let t = ring.finger_table(n);
            for i in 0..32 {
                assert_eq!(t.entry(i), ring.successor_of(n.plus_pow2(i as u32)));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn successor_is_owner(seed in any::<u64>(), key in any::<u32>()) {
            let ring = Ring::from_seed(40, seed);
            let owner = ring.successor_of(Id(key));
            // No other node lies in (key, owner) — owner is the *first*
            // node at or after key.
            for &n in ring.node_ids() {
                prop_assert!(!Id(n.0).in_open(Id(key), owner) || n == owner);
            }
            // And key ∈ (pred(owner), owner].
            let pred = ring.predecessor_of(owner);
            prop_assert!(ring.len() == 1 || Id(key).in_open_closed(pred, owner));
        }
    }
}
