//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! The paper hashes peer addresses into the identifier space with SHA-1
//! [FIPS180-1]. SHA-1 is of course no longer collision-resistant for
//! adversarial inputs; here it is used exactly as Chord uses it — as a
//! well-distributed deterministic map from peer addresses to ring
//! positions — for which it remains perfectly serviceable.

/// Streaming SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

impl Sha1 {
    /// Initial state per FIPS 180-1.
    pub fn new() -> Sha1 {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Feed message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self
            .len
            .checked_add(data.len() as u64)
            .expect("SHA-1 message too long");
        // Fill the partial block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.process_block(&block);
                self.buf_len = 0;
            } else {
                // Buffer still partial ⇒ the input is exhausted; falling
                // through would clobber buf_len with the (empty) remainder.
                debug_assert!(data.is_empty());
                return;
            }
        }
        // Whole blocks straight from the input.
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            self.process_block(block.try_into().unwrap());
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Finish and produce the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.checked_mul(8).expect("SHA-1 message too long");
        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length append (bypasses update's len accounting on purpose).
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.process_block(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of a byte slice.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// Truncate a SHA-1 digest to a 32-bit identifier (big-endian first word),
/// as the paper's 32-bit identifier space requires.
pub fn sha1_u32(data: &[u8]) -> u32 {
    let d = sha1(data);
    u32::from_be_bytes([d[0], d[1], d[2], d[3]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8; 20]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = sha1(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 200] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn exact_block_boundary_message() {
        // 64-byte message exercises the "padding adds a whole new block" path.
        let data = [0x41u8; 64];
        let d1 = sha1(&data);
        let mut h = Sha1::new();
        h.update(&data[..32]);
        h.update(&data[32..]);
        assert_eq!(h.finalize(), d1);
        // 55 and 56 bytes straddle the length-fits/doesn't-fit boundary.
        let _ = sha1(&[0u8; 55]);
        let _ = sha1(&[0u8; 56]);
    }

    #[test]
    fn sha1_u32_is_first_word() {
        let d = sha1(b"abc");
        assert_eq!(
            sha1_u32(b"abc"),
            u32::from_be_bytes([d[0], d[1], d[2], d[3]])
        );
        assert_eq!(sha1_u32(b"abc"), 0xa9993e36);
    }

    #[test]
    fn distinct_inputs_distinct_ids() {
        use std::collections::HashSet;
        let ids: HashSet<u32> = (0..10_000)
            .map(|i| sha1_u32(format!("peer-{i}").as_bytes()))
            .collect();
        // Collisions in a 32-bit space over 10k draws: expected ~0.01;
        // allow a couple.
        assert!(ids.len() >= 9_998, "too many collisions: {}", ids.len());
    }
}
