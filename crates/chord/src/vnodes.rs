//! Virtual nodes: the classic Chord load-balancing refinement.
//!
//! A single ring position per peer leaves arc sizes exponentially
//! distributed, so per-peer load varies by an `O(log N)` factor — visible
//! as the wide 1st/99th percentile band in the paper's Fig. 11. Running
//! `v` *virtual* nodes per physical peer (Chord's own remedy) tightens
//! the distribution by roughly `√v`. The `fig11` harness includes an
//! ablation quantifying this on the paper's workload.

use crate::id::Id;
use crate::ring::Ring;
use ars_common::{DetRng, FxHashMap};

/// A ring where each physical peer owns several virtual positions.
#[derive(Debug, Clone)]
pub struct VirtualRing {
    ring: Ring,
    /// Virtual node id → physical peer index.
    physical_of: FxHashMap<u32, usize>,
    n_physical: usize,
}

impl VirtualRing {
    /// Build `n_physical` peers × `vnodes_per_peer` virtual positions,
    /// seeded deterministically.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn from_seed(n_physical: usize, vnodes_per_peer: usize, seed: u64) -> VirtualRing {
        assert!(n_physical > 0 && vnodes_per_peer > 0);
        let mut rng = DetRng::new(seed);
        let mut ids = Vec::with_capacity(n_physical * vnodes_per_peer);
        let mut physical_of = FxHashMap::default();
        for peer in 0..n_physical {
            for _ in 0..vnodes_per_peer {
                loop {
                    let id = rng.next_u32();
                    if let std::collections::hash_map::Entry::Vacant(e) = physical_of.entry(id) {
                        e.insert(peer);
                        ids.push(Id(id));
                        break;
                    }
                }
            }
        }
        VirtualRing {
            ring: Ring::new(ids),
            physical_of,
            n_physical,
        }
    }

    /// The underlying (virtual) ring: routing works on it unchanged.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Number of physical peers.
    pub fn n_physical(&self) -> usize {
        self.n_physical
    }

    /// The physical peer responsible for `key`.
    pub fn physical_owner_of(&self, key: Id) -> usize {
        let vnode = self.ring.successor_of(key);
        self.physical_of[&vnode.0]
    }

    /// Count keys per *physical* peer (the Fig. 11 load metric under
    /// virtual nodes).
    pub fn load_of_keys<I: IntoIterator<Item = Id>>(&self, keys: I) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_physical];
        for k in keys {
            counts[self.physical_owner_of(k)] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_common::stats::Summary;

    #[test]
    fn every_vnode_maps_to_a_physical_peer() {
        let vr = VirtualRing::from_seed(10, 4, 1);
        assert_eq!(vr.ring().len(), 40);
        assert_eq!(vr.n_physical(), 10);
        for &id in vr.ring().node_ids() {
            let p = vr.physical_owner_of(id);
            assert!(p < 10);
        }
    }

    #[test]
    fn ownership_respects_successor() {
        let vr = VirtualRing::from_seed(5, 3, 2);
        let key = Id(0x1234_5678);
        let vnode = vr.ring().successor_of(key);
        assert_eq!(vr.physical_owner_of(key), vr.physical_of[&vnode.0]);
    }

    #[test]
    fn load_counts_sum_to_key_count() {
        let vr = VirtualRing::from_seed(20, 8, 3);
        let mut rng = DetRng::new(4);
        let keys: Vec<Id> = (0..5000).map(|_| Id(rng.next_u32())).collect();
        let loads = vr.load_of_keys(keys);
        assert_eq!(loads.iter().sum::<usize>(), 5000);
    }

    #[test]
    fn virtual_nodes_tighten_the_distribution() {
        // Same peers and keys; v = 1 vs v = 16. The p99/mean ratio must
        // shrink substantially.
        let mut rng = DetRng::new(5);
        let keys: Vec<Id> = (0..100_000).map(|_| Id(rng.next_u32())).collect();
        let ratio = |v: usize| {
            let vr = VirtualRing::from_seed(200, v, 7);
            let loads = vr.load_of_keys(keys.iter().copied());
            let s = Summary::from_counts(loads);
            s.p99 / s.mean
        };
        let r1 = ratio(1);
        let r16 = ratio(16);
        assert!(
            r16 < r1 * 0.6,
            "v=16 p99/mean {r16:.2} not clearly better than v=1 {r1:.2}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_vnodes_rejected() {
        VirtualRing::from_seed(5, 0, 0);
    }
}
