//! Iterative lookup over a static ring, with full hop accounting.
//!
//! The routing rule is Chord's: at node `n`, if the key lies in
//! `(n, successor(n)]` the successor owns it; otherwise forward to the
//! closest finger strictly preceding the key. Path length — the number of
//! overlay edges traversed, the metric of the paper's Fig. 12 — is the
//! length of [`LookupTrace::path`] minus one.

use crate::id::Id;
use crate::ring::Ring;

/// The complete route taken by one lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupTrace {
    /// Nodes visited in order, starting with the origin and ending with the
    /// owner.
    pub path: Vec<Id>,
    /// The node that owns the key.
    pub owner: Id,
    /// The key that was looked up.
    pub key: Id,
}

impl LookupTrace {
    /// Number of overlay hops (edges) traversed.
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// Route `key` starting from `from`, producing the full trace.
///
/// # Panics
/// Panics if `from` is not a node of the ring, or if routing fails to make
/// progress (which would indicate a broken finger table — impossible for a
/// [`Ring`], whose tables are exact).
pub fn lookup_trace(ring: &Ring, from: Id, key: Id) -> LookupTrace {
    assert!(ring.contains(from), "lookup origin {from} not in ring");
    let mut current = from;
    let mut path = vec![from];
    // A correct ring resolves any lookup in ≤ 32 forwardings + 1 final hop;
    // the bound is a defensive guard against cycles.
    let max_steps = 34 + ring.len();
    loop {
        // Does the current node already own the key? (Key in
        // (pred(current), current] — equivalently successor_of(key) == current.)
        if ring.successor_of(key) == current {
            return LookupTrace {
                path,
                owner: current,
                key,
            };
        }
        let table = ring.finger_table(current);
        let succ = table.successor();
        if key.in_open_closed(current, succ) {
            // The successor owns it: final hop.
            path.push(succ);
            return LookupTrace {
                path,
                owner: succ,
                key,
            };
        }
        // Forward to the closest preceding finger, or fall through to the
        // successor when no finger is strictly inside (n, key).
        let next = table.closest_preceding(key).unwrap_or(succ);
        assert_ne!(next, current, "routing stalled at {current} for {key}");
        path.push(next);
        current = next;
        assert!(
            path.len() <= max_steps,
            "routing cycle detected for key {key}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_common::DetRng;
    use proptest::prelude::*;

    #[test]
    fn lookup_from_owner_is_zero_hops() {
        let ring = Ring::new(vec![Id(100), Id(200), Id(300)]);
        let t = lookup_trace(&ring, Id(200), Id(150));
        assert_eq!(t.owner, Id(200));
        assert_eq!(t.hops(), 0);
        assert_eq!(t.path, vec![Id(200)]);
    }

    #[test]
    fn lookup_to_successor_is_one_hop() {
        let ring = Ring::new(vec![Id(100), Id(200), Id(300)]);
        let t = lookup_trace(&ring, Id(100), Id(150));
        assert_eq!(t.owner, Id(200));
        assert_eq!(t.hops(), 1);
    }

    #[test]
    #[should_panic(expected = "not in ring")]
    fn foreign_origin_rejected() {
        let ring = Ring::new(vec![Id(100)]);
        lookup_trace(&ring, Id(5), Id(7));
    }

    #[test]
    fn all_lookups_resolve_correctly_small_ring() {
        // Exhaustive-ish: every origin × a sweep of keys.
        let ring = Ring::from_seed(17, 5);
        for &from in ring.node_ids() {
            for k in (0..=u32::MAX - 1023).step_by((u32::MAX / 97) as usize) {
                let t = lookup_trace(&ring, from, Id(k));
                assert_eq!(t.owner, ring.successor_of(Id(k)));
                assert!(t.hops() <= 32);
            }
        }
    }

    #[test]
    fn hops_scale_logarithmically() {
        // Mean path length ≈ ½·log₂N (Chord's theorem; the paper's Fig. 12a).
        let mut rng = DetRng::new(11);
        let mut means = Vec::new();
        for &n in &[64usize, 1024] {
            let ring = Ring::from_seed(n, 42);
            let ids = ring.node_ids();
            let total: usize = (0..2000)
                .map(|_| {
                    let from = ids[rng.gen_index(ids.len())];
                    let key = Id(rng.next_u32());
                    ring.lookup(from, key).1
                })
                .sum();
            means.push(total as f64 / 2000.0);
        }
        let expect_64 = 0.5 * 64f64.log2(); // 3
        let expect_1024 = 0.5 * 1024f64.log2(); // 5
        assert!(
            (means[0] - expect_64).abs() < 1.0,
            "64-node mean {} vs expected {}",
            means[0],
            expect_64
        );
        assert!(
            (means[1] - expect_1024).abs() < 1.0,
            "1024-node mean {} vs expected {}",
            means[1],
            expect_1024
        );
        assert!(means[1] > means[0]);
    }

    #[test]
    fn path_visits_are_monotone_toward_key() {
        // Each forwarding strictly reduces circular distance to the key.
        let ring = Ring::from_seed(100, 13);
        let from = ring.node_ids()[0];
        let key = Id(0xDEAD_BEEF);
        let t = lookup_trace(&ring, from, key);
        // The final hop lands on the owner, which sits at-or-after the key
        // (so its forward distance to the key wraps) — check all hops
        // before it.
        for w in t.path[..t.path.len() - 1].windows(2) {
            let d0 = w[0].distance_to(key);
            let d1 = w[1].distance_to(key);
            assert!(d1 < d0, "hop {} → {} moved away from key", w[0], w[1]);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn lookup_always_finds_true_owner(
            seed in any::<u64>(),
            n in 1usize..200,
            key in any::<u32>(),
            origin_sel in any::<u64>(),
        ) {
            let ring = Ring::from_seed(n, seed);
            let ids = ring.node_ids();
            let from = ids[(origin_sel % ids.len() as u64) as usize];
            let (owner, hops) = ring.lookup(from, Id(key));
            prop_assert_eq!(owner, ring.successor_of(Id(key)));
            prop_assert!(hops <= 33);
        }
    }
}
