//! Criterion counterpart of Fig. 5: time to min-hash a range through one
//! function of each family, across range sizes. Times both the paper's
//! enumerating evaluation and the default fast dispatch (range-aware for
//! the bit families, closed form for the linear ones).

use ars_common::DetRng;
use ars_lsh::{LshFamilyKind, LshFunction, RangeSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_families(c: &mut Criterion) {
    let mut rng = DetRng::new(42);
    let mut group = c.benchmark_group("min_hash_by_family");
    for &size in &[10u32, 100, 1000] {
        let range = RangeSet::interval(5000, 5000 + size - 1);
        for kind in [
            LshFamilyKind::MinWise,
            LshFamilyKind::ApproxMinWise,
            LshFamilyKind::Linear,
            LshFamilyKind::LinearClosedForm,
        ] {
            let f = LshFunction::random(kind, &mut rng);
            let tag = kind.name().replace(' ', "_");
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_enumerate"), size),
                &range,
                |b, r| b.iter(|| black_box(f.min_hash_enumerate(black_box(r)))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_fast"), size),
                &range,
                |b, r| b.iter(|| black_box(f.min_hash(black_box(r)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_families);
criterion_main!(benches);
