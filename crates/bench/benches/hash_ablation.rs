//! Ablation benches for the two evaluator optimizations (DESIGN.md §6):
//!
//! 1. naive per-bit GRP network vs compiled table-driven bit permutation;
//! 2. linear min-hash by enumeration vs the closed-form `O(log p)`
//!    interval minimum.

use ars_common::DetRng;
use ars_lsh::{ApproxMinWisePerm, LinearPerm, MinWisePerm, RangeSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_bitperm_ablation(c: &mut Criterion) {
    let mut rng = DetRng::new(7);
    let full = MinWisePerm::random(&mut rng);
    let full_c = full.compile();
    let approx = ApproxMinWisePerm::random(&mut rng);
    let approx_c = approx.compile();
    let range = RangeSet::interval(0, 999);

    let mut group = c.benchmark_group("bitperm_ablation_1000_values");
    group.bench_function("minwise_naive", |b| {
        b.iter(|| black_box(full.min_hash_enumerate(black_box(&range))))
    });
    group.bench_function("minwise_compiled", |b| {
        b.iter(|| {
            let m = range.iter().map(|v| full_c.permute(v)).min().unwrap();
            black_box(m)
        })
    });
    group.bench_function("approx_naive", |b| {
        b.iter(|| black_box(approx.min_hash_enumerate(black_box(&range))))
    });
    group.bench_function("approx_compiled", |b| {
        b.iter(|| {
            let m = range.iter().map(|v| approx_c.permute(v)).min().unwrap();
            black_box(m)
        })
    });
    group.finish();
}

fn bench_linear_ablation(c: &mut Criterion) {
    let mut rng = DetRng::new(9);
    let p = LinearPerm::random(&mut rng);
    let mut group = c.benchmark_group("linear_min_hash");
    for &size in &[100u32, 10_000, 1_000_000] {
        let range = RangeSet::interval(123, 123 + size - 1);
        group.bench_with_input(BenchmarkId::new("enumerate", size), &range, |b, r| {
            b.iter(|| black_box(p.min_hash_enumerate(black_box(r))))
        });
        group.bench_with_input(BenchmarkId::new("closed_form", size), &range, |b, r| {
            b.iter(|| black_box(p.min_hash(black_box(r))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bitperm_ablation, bench_linear_ablation);
criterion_main!(benches);
