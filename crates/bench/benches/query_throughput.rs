//! Whole-system query benchmarks: one §4 query (hash → 5 lookups → bucket
//! match → cache decision) through a warm 1000-peer system, for each hash
//! family and for the §5.3 local-index variant.

use ars_core::{RangeSelectNetwork, SystemConfig};
use ars_lsh::LshFamilyKind;
use ars_workload::uniform_trace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn warm_network(config: SystemConfig) -> RangeSelectNetwork {
    let mut net = RangeSelectNetwork::new(1000, config);
    let trace = uniform_trace(2_000, 0, 1000, 11);
    net.run_trace(trace.queries());
    net
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_query_warm_1000_peers");
    group.sample_size(30);
    let queries = uniform_trace(10_000, 0, 1000, 13);
    for kind in [
        LshFamilyKind::ApproxMinWise,
        LshFamilyKind::Linear,
        LshFamilyKind::MinWise,
    ] {
        let mut net = warm_network(SystemConfig::default().with_family(kind).with_seed(5));
        let mut i = 0usize;
        group.bench_function(
            BenchmarkId::new("family", kind.name().replace(' ', "_")),
            |b| {
                b.iter(|| {
                    let q = &queries.queries()[i % queries.len()];
                    i += 1;
                    black_box(net.query(q))
                })
            },
        );
    }
    // §5.3 local index ablation.
    let mut net = warm_network(SystemConfig::default().with_local_index(true).with_seed(5));
    let mut i = 0usize;
    group.bench_function("local_index_on", |b| {
        b.iter(|| {
            let q = &queries.queries()[i % queries.len()];
            i += 1;
            black_box(net.query(q))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
