//! Chord routing micro-benchmarks: single lookup latency across ring
//! sizes, and ring construction cost.

use ars_chord::{Id, Ring};
use ars_common::DetRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_lookup");
    for &n in &[100usize, 1000, 5000] {
        let ring = Ring::from_seed(n, 42);
        let ids = ring.node_ids().to_vec();
        let mut rng = DetRng::new(7);
        group.bench_with_input(BenchmarkId::new("lookup", n), &ring, |b, ring| {
            b.iter(|| {
                let from = ids[rng.gen_index(ids.len())];
                let key = Id(rng.next_u32());
                black_box(ring.lookup(from, key))
            })
        });
    }
    group.finish();
}

fn bench_ring_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_ring_build");
    group.sample_size(10);
    for &n in &[1000usize, 5000] {
        group.bench_with_input(BenchmarkId::new("from_seed", n), &n, |b, &n| {
            b.iter(|| black_box(Ring::from_seed(n, 42)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_ring_build);
criterion_main!(benches);
