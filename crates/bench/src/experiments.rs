//! Shared experiment plumbing for the figure binaries.
//!
//! Every figure binary follows the same pattern: build the paper's §5
//! workload, run it through a configured system, aggregate with
//! `ars-core::recall`, print the series, and write a CSV under
//! `results/`. The common pieces live here so the binaries stay small and
//! the parameters stay in one place.

use ars_core::network::QueryOutcome;
use ars_core::{RangeSelectNetwork, SystemConfig};
use ars_workload::{uniform_trace, Trace};

/// The paper's §5.1 quality-workload parameters.
pub mod paper {
    /// Queries in the trace.
    pub const N_QUERIES: usize = 10_000;
    /// Attribute domain lower bound.
    pub const DOMAIN_LO: u32 = 0;
    /// Attribute domain upper bound.
    pub const DOMAIN_HI: u32 = 1000;
    /// Warm-up fraction dropped from quality figures.
    pub const WARMUP: f64 = 0.2;
    /// Peers in the quality experiments (the paper does not pin this for
    /// §5.1–5.2; quality is peer-count-independent, scalability uses its
    /// own sweep).
    pub const N_PEERS: usize = 1000;
    /// Workload seed used across all quality figures.
    pub const TRACE_SEED: u64 = 20030107; // CIDR 2003 started Jan 7, 2003
}

/// Build the §5.1 query trace.
pub fn paper_trace() -> Trace {
    uniform_trace(
        paper::N_QUERIES,
        paper::DOMAIN_LO,
        paper::DOMAIN_HI,
        paper::TRACE_SEED,
    )
}

/// Run the full §5.1 protocol over the paper trace: start empty, query
/// everything (caching on miss), and return only the post-warm-up
/// outcomes.
pub fn run_quality_experiment(config: SystemConfig) -> Vec<QueryOutcome> {
    let trace = paper_trace();
    let mut net = RangeSelectNetwork::new(paper::N_PEERS, config);
    let all = net.run_trace(trace.queries());
    let cut = (all.len() as f64 * paper::WARMUP).round() as usize;
    all[cut..].to_vec()
}

/// Resolve the workspace root (the ancestor of the crate dir holding both
/// `Cargo.toml` and `crates/`).
pub fn repo_root() -> std::path::PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    base.ancestors()
        .find(|p| p.join("Cargo.toml").exists() && p.join("crates").exists())
        .map(std::path::Path::to_path_buf)
        .unwrap_or(base)
}

/// Resolve the output path for a results CSV (repo-root `results/`).
pub fn results_path(name: &str) -> std::path::PathBuf {
    repo_root().join("results").join(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trace_is_stable() {
        let t1 = paper_trace();
        let t2 = paper_trace();
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), paper::N_QUERIES);
    }

    #[test]
    fn results_path_lands_in_results_dir() {
        let p = results_path("x.csv");
        assert!(p.to_string_lossy().contains("results"));
        assert!(p.to_string_lossy().ends_with("x.csv"));
    }

    #[test]
    fn quality_experiment_smoke() {
        // Tiny configuration so the test stays fast: fewer queries via a
        // custom run rather than the full 10k trace.
        use ars_core::SystemConfig;
        use ars_workload::uniform_trace;
        let mut net = RangeSelectNetwork::new(50, SystemConfig::default().with_seed(1));
        let trace = uniform_trace(200, 0, 1000, 7);
        let outs = net.run_trace(trace.queries());
        assert_eq!(outs.len(), 200);
        // Something should have matched after warm-up.
        let matched = outs.iter().filter(|o| o.best_match.is_some()).count();
        assert!(matched > 0);
    }
}
