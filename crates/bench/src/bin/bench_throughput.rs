//! End-to-end throughput benchmark for the sharded query engine, the
//! fused group-identifier kernels, and the Chord route cache, written to
//! `BENCH_throughput.json` at the repo root.
//!
//! Three sections:
//!
//! * **fused** — group-identifier computation (k = 20, l = 5) through the
//!   fused single-pass [`ars_lsh::CompiledGroup`] kernels vs the
//!   per-function compiled loop, per paper family. Floor asserted: ≥5×
//!   for the bit-shuffle families.
//! * **engine** — queries/second over a Zipf trace through the
//!   one-at-a-time path, the pre-sharding batch (parallel hashing only),
//!   the sharded batch engine (parallel hashing + parallel routing +
//!   sequential commit, with per-stage timings exposing the commit
//!   residue), and the concurrent worker-peer engine swept over worker
//!   counts (`ARS_ENGINE_WORKERS`, default `1,2,4`). Floors asserted:
//!   sharded ≥3× the pre-sharding batch, and — on ≥4 available cores —
//!   concurrent ≥2× sequential. Equivalence asserted before timing:
//!   sequential-exact paths bit-identical, concurrent engine
//!   schedule-invariant and equal to sequential modulo `hops`.
//! * **route_cache** — hit rates and mean hops on a live (churning)
//!   network across Zipf skews, cached vs uncached.
//!
//! Usage: `cargo run --release -p ars-bench --bin bench_throughput`

use ars_core::{BatchTimings, ChurnNetwork, EngineOptions, RangeSelectNetwork, SystemConfig};
use ars_lsh::{HashGroups, LshFamilyKind, RangeSet};
use ars_workload::zipf_trace;
use std::time::Instant;

const SAMPLES: usize = 9;

/// Median of `SAMPLES` timings of `f` (seconds).
fn median_secs(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn fused_section(json: &mut String) {
    use ars_common::DetRng;
    let queries: Vec<RangeSet> = zipf_trace(64, 0, 40_000, 32, 1.1, 5_000, 11)
        .queries()
        .to_vec();
    let mut first = true;
    json.push_str("  \"fused_identifiers\": {\n");
    for kind in LshFamilyKind::PAPER_FAMILIES {
        let mut rng = DetRng::new(5);
        let groups = HashGroups::generate(kind, 20, 5, &mut rng);
        // Exactness before speed: both paths agree on the whole trace.
        for q in &queries {
            assert_eq!(
                groups.identifiers(q),
                groups.identifiers_per_function(q),
                "fused diverged from per-function loop on {q}"
            );
        }
        let mut buf = vec![0u32; 5];
        let fused = median_secs(|| {
            for q in &queries {
                groups.identifiers_into(q, &mut buf);
                std::hint::black_box(&buf);
            }
        });
        let per_fn = median_secs(|| {
            for q in &queries {
                std::hint::black_box(groups.identifiers_per_function(q));
            }
        });
        let speedup = per_fn / fused;
        let per_query_us = fused / queries.len() as f64 * 1e6;
        println!(
            "fused {:<28} {per_query_us:>8.2} us/query  speedup vs per-function {speedup:>6.1}x",
            kind.name()
        );
        if matches!(kind, LshFamilyKind::MinWise | LshFamilyKind::ApproxMinWise) {
            assert!(
                speedup >= 5.0,
                "{}: fused kernels must be ≥5x the per-function compiled loop, got {speedup:.1}x",
                kind.name()
            );
        }
        let sep = if first { "" } else { ",\n" };
        first = false;
        json.push_str(&format!(
            "{sep}    \"{}\": {{\"fused_us_per_query\": {per_query_us:.3}, \"speedup_vs_per_function\": {speedup:.2}}}",
            kind.name()
        ));
    }
    json.push_str("\n  },\n");
}

/// Worker counts for the concurrent scaling sweep; override with
/// `ARS_ENGINE_WORKERS=1,2,4,8`. CI uploads the sweep so measured
/// scaling at each runner's core count accumulates toward the ROADMAP
/// ≥8×-on-16-cores target.
fn sweep_workers() -> Vec<usize> {
    std::env::var("ARS_ENGINE_WORKERS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|w| w.trim().parse().ok())
                .filter(|&w| w >= 1)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

fn engine_section(json: &mut String) {
    const N_PEERS: usize = 1_024;
    const N_QUERIES: usize = 4_000;
    const SHARDS: usize = 16;
    let config = SystemConfig::default().with_seed(42); // paper k=20, l=5
    let queries: Vec<RangeSet> = zipf_trace(N_QUERIES, 0, 40_000, 64, 1.1, 300, 23)
        .queries()
        .to_vec();

    // Equivalence before speed: the sequential-exact paths agree with the
    // one-at-a-time loop bit for bit...
    let pristine = RangeSelectNetwork::new(N_PEERS, config);
    let mut seq = pristine.clone();
    let mut legacy = pristine.clone();
    let mut sharded = pristine.clone();
    let out_seq: Vec<_> = queries.iter().map(|q| seq.query(q)).collect();
    let out_legacy = legacy.query_batch_legacy(&queries);
    let out_sharded = sharded.query_batch(&queries);
    assert_eq!(out_seq, out_legacy, "pre-sharding batch diverged");
    assert_eq!(out_seq, out_sharded, "sharded batch diverged");
    assert_eq!(seq.stats(), sharded.stats());
    // ...and the concurrent engine is schedule-invariant: the inline
    // reference, the single-worker engine, and a multi-worker engine all
    // produce identical outcomes; vs the sequential loop only `hops`
    // (whose origins come from per-shard RNG streams) may differ.
    let out_ref = {
        let mut net = pristine.clone();
        net.query_trace_sharded(&queries, SHARDS)
    };
    for workers in [1usize, 4] {
        let mut net = pristine.clone();
        let opts = EngineOptions {
            shards: SHARDS,
            workers,
            queue: 1024,
        };
        let out = net.query_batch_concurrent_with(&queries, opts);
        assert_eq!(
            out_ref, out,
            "concurrent engine diverged at {workers} workers"
        );
    }
    for (a, b) in out_seq.iter().zip(&out_ref) {
        let (mut a, mut b) = (a.clone(), b.clone());
        a.hops.clear();
        b.hops.clear();
        assert_eq!(a, b, "engine diverged from sequential beyond hops");
    }

    // Throughput: each sample replays the whole trace on a clone of the
    // pristine network, so cold identifier caches and first-time
    // placements are always paid.
    let qps = |label: &str, run: &mut dyn FnMut(&mut RangeSelectNetwork)| {
        let secs = median_secs(|| {
            let mut net = pristine.clone();
            run(&mut net);
        });
        let qps = N_QUERIES as f64 / secs;
        println!("engine {label:<16} {qps:>12.0} q/s");
        qps
    };
    let seq_qps = qps("sequential", &mut |net| {
        for q in &queries {
            std::hint::black_box(net.query(q));
        }
    });
    let legacy_qps = qps("legacy_batch", &mut |net| {
        std::hint::black_box(net.query_batch_legacy(&queries));
    });
    let sharded_qps = qps("sharded", &mut |net| {
        std::hint::black_box(net.query_batch(&queries));
    });

    // Where the sharded batch spends its time: per-stage medians expose
    // the sequential-commit bottleneck the concurrent engine removes.
    let mut stage_samples: Vec<BatchTimings> = (0..SAMPLES)
        .map(|_| {
            let mut net = pristine.clone();
            let (outs, timings) = net.query_batch_timed(&queries);
            std::hint::black_box(outs);
            timings
        })
        .collect();
    let stage_median = |pick: fn(&BatchTimings) -> f64, samples: &mut Vec<BatchTimings>| {
        let mut v: Vec<f64> = samples.iter().map(pick).collect();
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let hash_s = stage_median(|t| t.hash_secs, &mut stage_samples);
    let route_s = stage_median(|t| t.route_secs, &mut stage_samples);
    let commit_s = stage_median(|t| t.commit_secs, &mut stage_samples);
    let total_s = hash_s + route_s + commit_s;
    println!(
        "engine sharded stages: hash {:.0}% route {:.0}% commit {:.0}% (commit is the sequential residue)",
        hash_s / total_s * 100.0,
        route_s / total_s * 100.0,
        commit_s / total_s * 100.0
    );

    // The concurrent engine: worker sweep at a fixed shard count.
    let workers_sweep = sweep_workers();
    let mut sweep_json = String::new();
    let mut best_conc_qps = 0f64;
    for &workers in &workers_sweep {
        let w_qps = qps(&format!("concurrent_w{workers}"), &mut |net| {
            let opts = EngineOptions {
                shards: SHARDS,
                workers,
                queue: 1024,
            };
            std::hint::black_box(net.query_batch_concurrent_with(&queries, opts));
        });
        best_conc_qps = best_conc_qps.max(w_qps);
        sweep_json.push_str(&format!(
            "{}\"workers_{workers}\": {w_qps:.0}",
            if sweep_json.is_empty() { "" } else { ", " }
        ));
    }

    let vs_legacy = sharded_qps / legacy_qps;
    let vs_seq = sharded_qps / seq_qps;
    let conc_vs_seq = best_conc_qps / seq_qps;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "engine sharded vs pre-sharding batch {vs_legacy:.1}x, vs sequential {vs_seq:.1}x; \
         concurrent vs sequential {conc_vs_seq:.2}x at {cores} cores"
    );
    assert!(
        vs_legacy >= 3.0,
        "sharded engine must be ≥3x the pre-sharding batch, got {vs_legacy:.1}x"
    );
    // The headline floor: ≥2× sequential on ≥4 cores. Gated on available
    // parallelism — commit concurrency cannot manifest on a 1-core
    // runner; the JSON records the measured scaling either way.
    let scaling_gated = cores < 4;
    if !scaling_gated {
        assert!(
            conc_vs_seq >= 2.0,
            "concurrent engine must be ≥2x sequential on {cores} cores, got {conc_vs_seq:.2}x"
        );
    }
    json.push_str(&format!(
        "  \"engine\": {{\n    \"peers\": {N_PEERS}, \"queries\": {N_QUERIES}, \"shards\": {SHARDS},\n    \"sequential_qps\": {seq_qps:.0},\n    \"legacy_batch_qps\": {legacy_qps:.0},\n    \"sharded_batch_qps\": {sharded_qps:.0},\n    \"sharded_vs_legacy_batch\": {vs_legacy:.2},\n    \"sharded_vs_sequential\": {vs_seq:.2},\n    \"sharded_stages_secs\": {{\"hash\": {hash_s:.4}, \"route\": {route_s:.4}, \"commit\": {commit_s:.4}}},\n    \"concurrent_qps\": {{{sweep_json}}},\n    \"concurrent_vs_sequential\": {conc_vs_seq:.2},\n    \"available_cores\": {cores},\n    \"scaling_assert_gated\": {scaling_gated}\n  }},\n"
    ));
}

fn route_cache_section(json: &mut String) {
    const N_PEERS: usize = 32;
    const N_QUERIES: usize = 800;
    json.push_str("  \"route_cache\": {\n");
    let mut first = true;
    for s in [0.8f64, 1.1, 1.4] {
        // Narrow widths make hot ranges repeat *exactly*, which is what
        // route memoization (keyed by origin and placed identifier) can
        // exploit; origins are still drawn at random per query, so hit
        // rates stay well below the per-range repeat rate.
        let queries: Vec<RangeSet> = zipf_trace(N_QUERIES, 0, 40_000, 8, s, 4, 31)
            .queries()
            .to_vec();
        let base = SystemConfig::default().with_seed(61);
        let mut plain = ChurnNetwork::new(N_PEERS, base.clone()).expect("growth converges");
        let mut cached =
            ChurnNetwork::new(N_PEERS, base.with_route_cache(4_096)).expect("growth converges");
        let mut hops = [0u64; 2];
        for (i, q) in queries.iter().enumerate() {
            if i % 199 == 13 {
                // A trickle of churn: the cache must keep earning its hit
                // rate through invalidation storms.
                plain.fail_random(1);
                cached.fail_random(1);
                plain.stabilize(64).expect("recovers");
                cached.stabilize(64).expect("recovers");
            }
            let a = plain.query(q).expect("stabilized network answers");
            let b = cached.query(q).expect("stabilized network answers");
            assert_eq!(a.best_match, b.best_match, "cache changed an answer");
            hops[0] += a.hops.iter().sum::<usize>() as u64;
            hops[1] += b.hops.iter().sum::<usize>() as u64;
        }
        let stats = cached.route_cache_stats();
        let hit_rate = stats.hits as f64 / (stats.hits + stats.misses) as f64;
        let mean = |h: u64| h as f64 / (N_QUERIES * 5) as f64;
        let reduction = 1.0 - mean(hops[1]) / mean(hops[0]);
        println!(
            "route_cache skew {s:.1}  hit rate {:>5.1}%  mean hops {:.2} -> {:.2} ({:.0}% fewer)",
            hit_rate * 100.0,
            mean(hops[0]),
            mean(hops[1]),
            reduction * 100.0
        );
        assert!(stats.hits > 0, "skew {s}: route cache never hit");
        assert!(
            hops[1] <= hops[0],
            "skew {s}: route cache increased total hops"
        );
        let sep = if first { "" } else { ",\n" };
        first = false;
        json.push_str(&format!(
            "{sep}    \"skew_{s:.1}\": {{\"hit_rate\": {hit_rate:.4}, \"mean_hops_uncached\": {:.3}, \"mean_hops_cached\": {:.3}, \"hop_reduction\": {reduction:.4}}}",
            mean(hops[0]),
            mean(hops[1])
        ));
    }
    json.push_str("\n  }\n");
}

fn main() {
    let mut json = String::from("{\n  \"benchmark\": \"throughput\",\n");
    fused_section(&mut json);
    engine_section(&mut json);
    route_cache_section(&mut json);
    json.push('}');
    json.push('\n');
    let path = ars_bench::experiments::repo_root().join("BENCH_throughput.json");
    std::fs::write(&path, &json).expect("write BENCH_throughput.json");
    println!("\nwrote {}", path.display());
}
