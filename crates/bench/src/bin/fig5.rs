//! Figure 5: average time to hash a query range through the `l·k = 100`
//! hash functions, as a function of range size, for the three families.
//!
//! The paper's absolute numbers come from a 900 MHz Pentium; ours from a
//! modern CPU — the claim being reproduced is the *ordering and growth*:
//! linear permutations orders of magnitude faster than min-wise, approx
//! min-wise in between, all growing linearly in range size (enumerating
//! evaluation). Two extension columns report our optimized evaluators
//! (table-driven bit permutation; closed-form linear interval minimum).
//!
//! Usage: `cargo run --release -p ars-bench --bin fig5`

use ars_bench::experiments::results_path;
use ars_common::csv::{fmt_f64, CsvTable};
use ars_common::DetRng;
use ars_lsh::{LshFamilyKind, LshFunction, RangeSet};
use ars_workload::SizeSweep;
use std::time::Instant;

const K: usize = 20;
const L: usize = 5;
const SIZES: [u32; 12] = [10, 25, 50, 100, 200, 300, 500, 700, 900, 1100, 1300, 1500];
const RANGES_PER_SIZE: usize = 10;

/// Mean milliseconds to hash one range through 100 functions by
/// enumerating every value — the evaluation the paper's Fig. 5 measures.
fn time_family(functions: &[LshFunction], ranges: &[RangeSet]) -> f64 {
    let start = Instant::now();
    let mut sink = 0u32;
    for r in ranges {
        for f in functions {
            sink ^= f.min_hash_enumerate(r);
        }
    }
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(sink);
    elapsed / ranges.len() as f64
}

/// Mean milliseconds through the default (fast) `min_hash` dispatch —
/// used for the closed-form linear extension column.
fn time_fast(functions: &[LshFunction], ranges: &[RangeSet]) -> f64 {
    let start = Instant::now();
    let mut sink = 0u32;
    for r in ranges {
        for f in functions {
            sink ^= f.min_hash(r);
        }
    }
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(sink);
    elapsed / ranges.len() as f64
}

/// Same, through compiled evaluators.
fn time_compiled(functions: &[LshFunction], ranges: &[RangeSet]) -> f64 {
    let compiled: Vec<_> = functions.iter().map(LshFunction::compile).collect();
    let start = Instant::now();
    let mut sink = 0u32;
    for r in ranges {
        for f in &compiled {
            sink ^= f.min_hash(r);
        }
    }
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(sink);
    elapsed / ranges.len() as f64
}

fn main() {
    let mut rng = DetRng::new(5);
    let sweep = SizeSweep::new(&SIZES, RANGES_PER_SIZE, 100_000, 55);

    let families = [
        LshFamilyKind::MinWise,
        LshFamilyKind::ApproxMinWise,
        LshFamilyKind::Linear,
        LshFamilyKind::LinearClosedForm,
    ];
    let fns: Vec<Vec<LshFunction>> = families
        .iter()
        .map(|&kind| {
            (0..K * L)
                .map(|_| LshFunction::random(kind, &mut rng))
                .collect()
        })
        .collect();

    let mut csv = CsvTable::new([
        "range_size",
        "minwise_ms",
        "approx_ms",
        "linear_ms",
        "linear_closed_form_ms",
        "minwise_compiled_ms",
        "approx_compiled_ms",
    ]);
    println!("# Figure 5 — avg time (ms) to hash a range through 100 hash functions");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>18} {:>18} {:>18}",
        "size", "min-wise", "approx", "linear", "linear-closed", "min-wise-tbl", "approx-tbl"
    );
    for (size, ranges) in &sweep.points {
        let t_mw = time_family(&fns[0], ranges);
        let t_ap = time_family(&fns[1], ranges);
        let t_li = time_family(&fns[2], ranges);
        let t_cf = time_fast(&fns[3], ranges);
        let t_mw_c = time_compiled(&fns[0], ranges);
        let t_ap_c = time_compiled(&fns[1], ranges);
        println!(
            "{size:>10} {t_mw:>14.4} {t_ap:>14.4} {t_li:>14.4} {t_cf:>18.6} {t_mw_c:>18.6} {t_ap_c:>18.6}"
        );
        csv.push_row([
            size.to_string(),
            fmt_f64(t_mw),
            fmt_f64(t_ap),
            fmt_f64(t_li),
            fmt_f64(t_cf),
            fmt_f64(t_mw_c),
            fmt_f64(t_ap_c),
        ]);
    }
    let path = results_path("fig5_hash_times.csv");
    csv.write_to(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
