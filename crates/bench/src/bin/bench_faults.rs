//! Fault-tolerance benchmark: recall and routed-hop cost under churn ×
//! message loss, with successor replication on and off, written to
//! `BENCH_faults.json` at the repo root.
//!
//! Each cell of the matrix grows a fresh [`ChurnNetwork`], warms the cache
//! with a query trace through the resilient path, crashes a fraction of
//! the peers abruptly (`churn`), turns on per-attempt lookup loss
//! (`loss`), and re-runs the trace, measuring:
//!
//! * `recall` — mean recall of the re-queries (1.0 = every cached
//!   partition still findable);
//! * `mean_hops` — routed overlay hops per successful lookup (the cost of
//!   routing around failures);
//! * `attempts_per_query` — lookup attempts including retries;
//! * `fallback_rate` — fraction of queries degraded to source fetch.
//!
//! The runs use a single hash group (`l = 1`) so each partition exists at
//! exactly one identifier: with `r = 1` a crashed owner *loses* the bucket
//! (the paper's soft-state behavior), with `r = 2` the successor replica
//! keeps it findable — the paper's `l = 5` default would mask the contrast
//! behind its five natural copies.
//!
//! The seed honors `ARS_FAULT_SEED` (default 0) so CI can sweep seeds.
//!
//! Usage: `cargo run --release -p ars-bench --bin bench_faults`

use ars_core::{ChurnNetwork, MatchMeasure, SystemConfig};
use ars_lsh::RangeSet;

const N_PEERS: usize = 50;
const N_QUERIES: usize = 80;
const CHURN_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];
const LOSS_RATES: [f64; 3] = [0.0, 0.10, 0.30];
const REPLICATION: [usize; 2] = [1, 2];

struct Cell {
    churn: f64,
    loss: f64,
    replication: usize,
    recall: f64,
    mean_hops: f64,
    attempts_per_query: f64,
    fallback_rate: f64,
    partitions_after: usize,
}

fn fault_seed() -> u64 {
    std::env::var("ARS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Distinct, well-spread query ranges (no repeats, so the measurement
/// phase scores only what the warm phase cached).
fn trace() -> Vec<RangeSet> {
    (0..N_QUERIES as u32)
        .map(|i| {
            let lo = i * 523 % 40_000;
            RangeSet::interval(lo, lo + 60 + (i % 5) * 25)
        })
        .collect()
}

fn run_cell(churn: f64, loss: f64, replication: usize, seed: u64) -> Cell {
    let config = SystemConfig::default()
        .with_kl(16, 1)
        .with_matching(MatchMeasure::Containment)
        .with_replication(replication)
        .with_seed(0xFA17 ^ seed);
    let mut net = ChurnNetwork::new(N_PEERS, config).expect("growth converges");
    let queries = trace();

    // Warm: cache every partition (and its replicas) on a clean network.
    for q in &queries {
        net.query_resilient(q);
    }

    // Churn: abrupt failures, then stabilization (re-replication already
    // ran per-failure when replication > 1).
    let victims = (churn * N_PEERS as f64).round() as usize;
    net.fail_random(victims);
    net.stabilize(256).expect("ring recovers");

    // Loss applies to the measurement phase only, so the warm cache is
    // identical across the loss dimension.
    net.set_lookup_loss(loss);

    let mut recall_sum = 0.0;
    let mut hops_sum = 0usize;
    let mut lookups = 0usize;
    let mut attempts = 0usize;
    let mut fallbacks = 0usize;
    for q in &queries {
        let out = net.query_resilient(q);
        recall_sum += out.recall;
        hops_sum += out.hops.iter().sum::<usize>();
        lookups += out.hops.len();
        attempts += out.attempts;
        fallbacks += out.fell_back_to_source as usize;
    }

    Cell {
        churn,
        loss,
        replication,
        recall: recall_sum / N_QUERIES as f64,
        mean_hops: hops_sum as f64 / lookups.max(1) as f64,
        attempts_per_query: attempts as f64 / N_QUERIES as f64,
        fallback_rate: fallbacks as f64 / N_QUERIES as f64,
        partitions_after: net.total_partitions(),
    }
}

fn main() {
    let seed = fault_seed();
    let mut cells: Vec<Cell> = Vec::new();
    println!("# seed {seed} ({N_PEERS} peers, {N_QUERIES} queries, k=16 l=1)");
    println!(
        "{:>6} {:>6} {:>4} {:>8} {:>10} {:>10} {:>10} {:>11}",
        "churn", "loss", "r", "recall", "mean_hops", "attempts", "fallback", "partitions"
    );
    for &replication in &REPLICATION {
        for &churn in &CHURN_RATES {
            for &loss in &LOSS_RATES {
                let c = run_cell(churn, loss, replication, seed);
                println!(
                    "{:>6.2} {:>6.2} {:>4} {:>8.3} {:>10.2} {:>10.2} {:>10.3} {:>11}",
                    c.churn,
                    c.loss,
                    c.replication,
                    c.recall,
                    c.mean_hops,
                    c.attempts_per_query,
                    c.fallback_rate,
                    c.partitions_after
                );
                cells.push(c);
            }
        }
    }

    // Headline checks (the integration test asserts the same properties).
    let cell = |churn: f64, loss: f64, r: usize| {
        cells
            .iter()
            .find(|c| c.churn == churn && c.loss == loss && c.replication == r)
            .expect("cell present")
    };
    let base_r2 = cell(0.0, 0.0, 2).recall;
    let faulted_r2 = cell(0.10, 0.0, 2).recall;
    let base_r1 = cell(0.0, 0.0, 1).recall;
    let faulted_r1 = cell(0.10, 0.0, 1).recall;
    println!(
        "\nr=2: no-churn recall {base_r2:.3}, 10% failures {faulted_r2:.3} \
         | r=1: {base_r1:.3} -> {faulted_r1:.3}"
    );
    assert!(
        faulted_r2 >= base_r2 - 0.05,
        "replicated recall {faulted_r2:.3} fell more than 5% below baseline {base_r2:.3}"
    );
    assert!(
        faulted_r1 < faulted_r2,
        "unreplicated recall {faulted_r1:.3} should trail replicated {faulted_r2:.3}"
    );

    let mut json = format!(
        "{{\n  \"benchmark\": \"fault_tolerance\",\n  \"seed\": {seed},\n  \
         \"peers\": {N_PEERS},\n  \"queries\": {N_QUERIES},\n  \"cells\": [\n"
    );
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"churn\": {:.2}, \"loss\": {:.2}, \"replication\": {}, \
             \"recall\": {:.4}, \"mean_hops\": {:.3}, \"attempts_per_query\": {:.3}, \
             \"fallback_rate\": {:.4}, \"partitions_after\": {}}}{sep}\n",
            c.churn,
            c.loss,
            c.replication,
            c.recall,
            c.mean_hops,
            c.attempts_per_query,
            c.fallback_rate,
            c.partitions_after
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"headline\": {{\n    \"recall_no_churn_r2\": {base_r2:.4},\n    \
         \"recall_10pct_failures_r2\": {faulted_r2:.4},\n    \
         \"recall_no_churn_r1\": {base_r1:.4},\n    \
         \"recall_10pct_failures_r1\": {faulted_r1:.4}\n  }}\n}}\n"
    ));

    let path = ars_bench::experiments::repo_root().join("BENCH_faults.json");
    std::fs::write(&path, json).expect("write BENCH_faults.json");
    println!("wrote {}", path.display());
}
