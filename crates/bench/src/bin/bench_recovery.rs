//! Recovery benchmark: durable-log replay cost and anti-entropy repair
//! convergence, written to `BENCH_recovery.json` at the repo root.
//!
//! Two parts:
//!
//! * **Replay cost** — a single [`BucketStore`] is filled to various log
//!   lengths, crashed, and recovered, measuring recovery wall time,
//!   recovered entries, and on-disk bytes; with compaction off and on
//!   (checkpoints bound the log the replay has to walk).
//! * **Repair convergence** — a 50-peer [`ChurnNetwork`] at replication
//!   r ∈ {1, 2, 3} with faulted durable stores warms a query trace,
//!   crashes a fraction of the ring, restarts every crashed peer, and
//!   runs the digest-exchange repair loop to quiescence — measuring
//!   convergence rounds, entries re-replicated, entries recovered from
//!   disk, and post-repair recall.
//!
//! The runs use a single hash group (`l = 1`) so each partition exists at
//! exactly one identifier — the same choice as `bench_faults`, so the
//! replication factor is the only source of redundancy and the r = 1
//! contrast is honest.
//!
//! Headlines asserted in-binary:
//! * r ≥ 2 post-repair recall is exactly 1.0 at up to 20% crashed;
//! * r = 1 under hostile storage faults (every crash flips a tail bit)
//!   loses recall for good;
//! * repair converges within a bounded number of budgeted rounds.
//!
//! The seed honors `ARS_FAULT_SEED` (default 0) so CI can sweep seeds.
//!
//! Usage: `cargo run --release -p ars-bench --bin bench_recovery`

use ars_core::{ChurnNetwork, DurabilityConfig, MatchMeasure, SystemConfig};
use ars_lsh::RangeSet;
use ars_store::{BucketStore, StorageFaults, StoreConfig};

const N_PEERS: usize = 50;
const N_QUERIES: usize = 40;
const CRASH_RATES: [f64; 3] = [0.10, 0.20, 0.30];
const REPLICATION: [usize; 3] = [1, 2, 3];
const REPAIR_BUDGET: usize = 100;
const MAX_ROUNDS: usize = 1_000;
const LOG_LENGTHS: [usize; 4] = [256, 1_024, 4_096, 16_384];

fn fault_seed() -> u64 {
    std::env::var("ARS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------
// Part 1: recovery time vs log length.
// ---------------------------------------------------------------------

struct ReplayCell {
    ops: usize,
    compact_every: usize,
    log_bytes: usize,
    recovered_entries: usize,
    recover_micros: u128,
}

fn replay_cell(ops: usize, compact_every: usize, seed: u64) -> ReplayCell {
    let config = StoreConfig::default().with_compact_every(compact_every);
    let mut store = BucketStore::new(config, seed ^ ops as u64);
    for i in 0..ops {
        store.place(i as u32, &(i as u64).to_le_bytes());
    }
    let log_bytes = store.log_len();
    store.crash();
    let start = std::time::Instant::now();
    let report = store.recover();
    let recover_micros = start.elapsed().as_micros();
    assert_eq!(report.entries.len(), ops, "perfect disk replays everything");
    ReplayCell {
        ops,
        compact_every,
        log_bytes,
        recovered_entries: report.entries.len(),
        recover_micros,
    }
}

// ---------------------------------------------------------------------
// Part 2: repair convergence vs crash rate at r ∈ {1, 2, 3}.
// ---------------------------------------------------------------------

struct RepairCell {
    crash_rate: f64,
    replication: usize,
    bit_flip_p: f64,
    recall: f64,
    recovered: u64,
    repair_rounds: usize,
    repair_entries_sent: u64,
    buckets_lost: u64,
}

fn trace() -> Vec<RangeSet> {
    (0..N_QUERIES as u32)
        .map(|i| {
            let lo = i * 523 % 40_000;
            RangeSet::interval(lo, lo + 60 + (i % 5) * 25)
        })
        .collect()
}

fn repair_cell(crash_rate: f64, replication: usize, bit_flip_p: f64, seed: u64) -> RepairCell {
    let faults = StorageFaults::none()
        .with_torn_write(0.4)
        .with_bit_flip(bit_flip_p);
    let config = SystemConfig::default()
        .with_kl(16, 1)
        .with_matching(MatchMeasure::Containment)
        .with_replication(replication)
        .with_seed(0x10_2003 ^ seed)
        .with_durability(DurabilityConfig::default().with_faults(faults));
    let mut net = ChurnNetwork::new(N_PEERS, config).expect("growth converges");
    let queries = trace();
    for q in &queries {
        net.query_resilient(q);
    }

    let victims = (crash_rate * N_PEERS as f64).round() as usize;
    let downed = net.crash_random(victims);
    for id in &downed {
        net.restart(*id).expect("restart rejoins");
    }
    net.stabilize(256).expect("ring recovers");
    let repair_rounds = net
        .repair_until_quiescent(MAX_ROUNDS, REPAIR_BUDGET)
        .expect("repair quiesces");

    let recall: f64 = queries
        .iter()
        .map(|q| net.query_resilient(q).recall)
        .sum::<f64>()
        / N_QUERIES as f64;
    let stats = net.resilience();
    RepairCell {
        crash_rate,
        replication,
        bit_flip_p,
        recall,
        recovered: stats.buckets_recovered,
        repair_rounds,
        repair_entries_sent: stats.repair_entries_sent,
        buckets_lost: stats.buckets_lost,
    }
}

fn main() {
    let seed = fault_seed();
    println!("# seed {seed} ({N_PEERS} peers, {N_QUERIES} queries, k=16 l=1)");

    // Part 1.
    println!(
        "\n{:>8} {:>9} {:>10} {:>10} {:>12}",
        "ops", "compact", "log_bytes", "entries", "recover_us"
    );
    let mut replay: Vec<ReplayCell> = Vec::new();
    for &ops in &LOG_LENGTHS {
        for compact_every in [0, 500] {
            let c = replay_cell(ops, compact_every, seed);
            println!(
                "{:>8} {:>9} {:>10} {:>10} {:>12}",
                c.ops, c.compact_every, c.log_bytes, c.recovered_entries, c.recover_micros
            );
            replay.push(c);
        }
    }
    // Compaction bounds the live log: once the log is long enough for a
    // checkpoint to have fired, the checkpointing store's op log is a
    // fraction of the append-only one.
    for &ops in &LOG_LENGTHS {
        if ops <= 500 {
            continue;
        }
        let plain = replay
            .iter()
            .find(|c| c.ops == ops && c.compact_every == 0)
            .unwrap();
        let compacted = replay
            .iter()
            .find(|c| c.ops == ops && c.compact_every == 500)
            .unwrap();
        assert!(
            compacted.log_bytes < plain.log_bytes,
            "compaction must bound the op log ({} vs {})",
            compacted.log_bytes,
            plain.log_bytes
        );
    }

    // Part 2.
    println!(
        "\n{:>6} {:>3} {:>6} {:>8} {:>10} {:>8} {:>13} {:>6}",
        "crash", "r", "flip", "recall", "recovered", "rounds", "entries_sent", "lost"
    );
    let mut cells: Vec<RepairCell> = Vec::new();
    for &replication in &REPLICATION {
        for &crash_rate in &CRASH_RATES {
            let c = repair_cell(crash_rate, replication, 0.1, seed);
            println!(
                "{:>6.2} {:>3} {:>6.2} {:>8.3} {:>10} {:>8} {:>13} {:>6}",
                c.crash_rate,
                c.replication,
                c.bit_flip_p,
                c.recall,
                c.recovered,
                c.repair_rounds,
                c.repair_entries_sent,
                c.buckets_lost
            );
            cells.push(c);
        }
    }
    // The hostile r = 1 contrast: every crash flips a bit in the log tail,
    // and with one copy per partition the damage is unrepairable.
    let hostile = repair_cell(0.20, 1, 1.0, seed);
    println!(
        "{:>6.2} {:>3} {:>6.2} {:>8.3} {:>10} {:>8} {:>13} {:>6}  (hostile)",
        hostile.crash_rate,
        hostile.replication,
        hostile.bit_flip_p,
        hostile.recall,
        hostile.recovered,
        hostile.repair_rounds,
        hostile.repair_entries_sent,
        hostile.buckets_lost
    );

    // Headlines.
    for c in &cells {
        if c.replication >= 2 && c.crash_rate <= 0.20 {
            assert!(
                c.recall >= 1.0,
                "r={} at {:.0}% crash must repair to full recall, got {:.3}",
                c.replication,
                c.crash_rate * 100.0,
                c.recall
            );
        }
        assert!(
            c.repair_rounds <= 64,
            "repair took {} rounds at budget {REPAIR_BUDGET} — not converging",
            c.repair_rounds
        );
        assert!(c.recovered > 0, "restarts must replay log entries");
    }
    assert!(
        hostile.recall < 1.0,
        "r=1 under guaranteed tail corruption must lose recall, got {:.3}",
        hostile.recall
    );

    // JSON.
    let mut json = format!(
        "{{\n  \"benchmark\": \"recovery\",\n  \"seed\": {seed},\n  \
         \"peers\": {N_PEERS},\n  \"queries\": {N_QUERIES},\n  \
         \"repair_budget\": {REPAIR_BUDGET},\n  \"replay\": [\n"
    );
    for (i, c) in replay.iter().enumerate() {
        let sep = if i + 1 == replay.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"ops\": {}, \"compact_every\": {}, \"log_bytes\": {}, \
             \"recovered_entries\": {}, \"recover_micros\": {}}}{sep}\n",
            c.ops, c.compact_every, c.log_bytes, c.recovered_entries, c.recover_micros
        ));
    }
    json.push_str("  ],\n  \"repair\": [\n");
    let all: Vec<&RepairCell> = cells.iter().chain(std::iter::once(&hostile)).collect();
    for (i, c) in all.iter().enumerate() {
        let sep = if i + 1 == all.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"crash_rate\": {:.2}, \"replication\": {}, \"bit_flip_p\": {:.2}, \
             \"recall\": {:.4}, \"recovered\": {}, \"repair_rounds\": {}, \
             \"repair_entries_sent\": {}, \"buckets_lost\": {}}}{sep}\n",
            c.crash_rate,
            c.replication,
            c.bit_flip_p,
            c.recall,
            c.recovered,
            c.repair_rounds,
            c.repair_entries_sent,
            c.buckets_lost
        ));
    }
    let r2_20 = cells
        .iter()
        .find(|c| c.replication == 2 && c.crash_rate == 0.20)
        .unwrap();
    json.push_str(&format!(
        "  ],\n  \"headline\": {{\n    \"recall_20pct_crash_r2_post_repair\": {:.4},\n    \
         \"recall_20pct_crash_r1_hostile\": {:.4},\n    \
         \"repair_rounds_20pct_crash_r2\": {}\n  }}\n}}\n",
        r2_20.recall, hostile.recall, r2_20.repair_rounds
    ));

    let path = ars_bench::experiments::repo_root().join("BENCH_recovery.json");
    std::fs::write(&path, json).expect("write BENCH_recovery.json");
    println!("\nwrote {}", path.display());
}
