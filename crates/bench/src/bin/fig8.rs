//! Figure 8: recall ("part of query answered") curves for the three hash
//! families under Jaccard bucket matching.
//!
//! Usage: `cargo run --release -p ars-bench --bin fig8`

use ars_bench::experiments::{results_path, run_quality_experiment};
use ars_common::csv::{fmt_f64, CsvTable};
use ars_core::recall::{pct_fully_answered, recall_curve};
use ars_core::SystemConfig;
use ars_lsh::LshFamilyKind;

fn main() {
    let mut csv = CsvTable::new(["family", "recall_threshold", "pct_queries_at_least"]);
    println!("# Figure 8 — % of queries answered to at least a given portion (Jaccard matching)");
    for kind in [
        LshFamilyKind::MinWise,
        LshFamilyKind::ApproxMinWise,
        LshFamilyKind::Linear,
        LshFamilyKind::LinearDomain,
    ] {
        let outcomes = run_quality_experiment(SystemConfig::default().with_family(kind));
        let curve = recall_curve(&outcomes);
        println!("\n## {kind}");
        println!("{:>18} {:>18}", "recall ≥", "% of queries");
        for (t, p) in &curve {
            println!("{t:>18.1} {p:>18.2}");
            csv.push_row([kind.name().to_string(), fmt_f64(*t), fmt_f64(*p)]);
        }
        println!(
            "  fully answered: {:.1}%  (paper: ~30% min-wise / ~35% approx / ~50% linear)",
            pct_fully_answered(&outcomes)
        );
    }
    let path = results_path("fig8_recall_by_family.csv");
    csv.write_to(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
