//! Regenerate every figure of the paper in one run (Figs. 5–12), writing
//! all CSVs under `results/`.
//!
//! Usage: `cargo run --release -p ars-bench --bin all_figures`

use std::process::Command;

fn main() {
    let bins = ["fig5", "fig6_7", "fig8", "fig9", "fig10", "fig11", "fig12"];
    // When invoked through cargo, the sibling binaries sit next to us.
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        println!("\n================ {bin} ================\n");
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fallback: go through cargo (slower but robust).
            Command::new("cargo")
                .args(["run", "--release", "-q", "-p", "ars-bench", "--bin", bin])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("\nAll figures regenerated; CSVs are under results/.");
}
