//! Quantifying §3.1: the exact-match DHT baseline vs the paper's
//! LSH-based approximate system, across workload shapes.
//!
//! The paper argues (verbally) that exact-match caching is useless for
//! range queries because near-identical ranges hash apart. This harness
//! measures that claim on three workloads: the §5.1 uniform trace (almost
//! no repeats), a Zipf-popular trace (many repeats), and a clustered trace
//! (many *near*-repeats — the regime LSH is built for).
//!
//! Usage: `cargo run --release -p ars-bench --bin baseline`

use ars_bench::experiments::results_path;
use ars_common::csv::{fmt_f64, CsvTable};
use ars_core::recall::{mean_recall, pct_fully_answered};
use ars_core::{ExactMatchNetwork, MatchMeasure, RangeSelectNetwork, SystemConfig};
use ars_workload::{clustered_trace, uniform_trace, zipf_trace, Trace};

const N_PEERS: usize = 500;
const N_QUERIES: usize = 10_000;
const SEED: u64 = 314;

fn workloads() -> Vec<(&'static str, Trace)> {
    vec![
        ("uniform (§5.1)", uniform_trace(N_QUERIES, 0, 1000, SEED)),
        (
            "zipf (popular repeats)",
            zipf_trace(N_QUERIES, 0, 1000, 100, 1.2, 60, SEED),
        ),
        (
            "clustered (near-repeats)",
            clustered_trace(N_QUERIES, 0, 1000, 50, 8, SEED),
        ),
    ]
}

fn main() {
    let mut csv = CsvTable::new([
        "workload",
        "system",
        "pct_fully_answered",
        "mean_recall",
        "mean_hops_per_query",
    ]);
    println!(
        "{:<26} {:<26} {:>16} {:>12} {:>12}",
        "workload", "system", "fully answered", "mean recall", "hops/query"
    );
    for (name, trace) in workloads() {
        let cut = trace.len() / 5;

        // §3.1 exact-match baseline.
        let config = SystemConfig::default().with_seed(SEED);
        let mut exact = ExactMatchNetwork::new(N_PEERS, &config);
        let outs = exact.run_trace(trace.queries());
        let measured = &outs[cut..];
        let hops = exact.total_hops as f64 / exact.lookups as f64;
        print_row(&mut csv, name, "exact-match DHT (§3.1)", measured, hops);

        // The paper's system, Jaccard matching.
        let mut approx = RangeSelectNetwork::new(N_PEERS, config.clone());
        let outs = approx.run_trace(trace.queries());
        let measured = &outs[cut..];
        let s = approx.stats();
        let hops = s.total_hops as f64 / s.queries as f64;
        print_row(&mut csv, name, "LSH approximate (Jaccard)", measured, hops);

        // And with containment matching.
        let mut approx_c =
            RangeSelectNetwork::new(N_PEERS, config.with_matching(MatchMeasure::Containment));
        let outs = approx_c.run_trace(trace.queries());
        let measured = &outs[cut..];
        let s = approx_c.stats();
        let hops = s.total_hops as f64 / s.queries as f64;
        print_row(
            &mut csv,
            name,
            "LSH approximate (containment)",
            measured,
            hops,
        );
        println!();
    }
    let path = results_path("baseline_comparison.csv");
    csv.write_to(&path).expect("write CSV");
    println!("wrote {}", path.display());
}

fn print_row(
    csv: &mut CsvTable,
    workload: &str,
    system: &str,
    outs: &[ars_core::QueryOutcome],
    hops_per_query: f64,
) {
    let full = pct_fully_answered(outs);
    let mean = mean_recall(outs);
    println!("{workload:<26} {system:<26} {full:>15.1}% {mean:>12.3} {hops_per_query:>12.2}");
    csv.push_row([
        workload.to_string(),
        system.to_string(),
        fmt_f64(full),
        fmt_f64(mean),
        fmt_f64(hops_per_query),
    ]);
}
