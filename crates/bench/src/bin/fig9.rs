//! Figure 9: recall with containment-similarity matching vs Jaccard
//! matching (both hashed with approximate min-wise permutations).
//!
//! Usage: `cargo run --release -p ars-bench --bin fig9`

use ars_bench::experiments::{results_path, run_quality_experiment};
use ars_common::csv::{fmt_f64, CsvTable};
use ars_core::recall::{pct_fully_answered, recall_curve};
use ars_core::{MatchMeasure, SystemConfig};

fn main() {
    let mut csv = CsvTable::new(["matching", "recall_threshold", "pct_queries_at_least"]);
    println!("# Figure 9 — recall: containment vs Jaccard matching (approx. min-wise hashing)");
    for (name, measure) in [
        ("containment", MatchMeasure::Containment),
        ("jaccard", MatchMeasure::Jaccard),
    ] {
        let outcomes = run_quality_experiment(SystemConfig::default().with_matching(measure));
        let curve = recall_curve(&outcomes);
        println!("\n## {name}");
        println!("{:>18} {:>18}", "recall ≥", "% of queries");
        for (t, p) in &curve {
            println!("{t:>18.1} {p:>18.2}");
            csv.push_row([name.to_string(), fmt_f64(*t), fmt_f64(*p)]);
        }
        println!("  fully answered: {:.1}%", pct_fully_answered(&outcomes));
    }
    println!("\n(paper: containment lifts fully-answered queries from ~35% to ~60%)");
    let path = results_path("fig9_containment_vs_jaccard.csv");
    csv.write_to(&path).expect("write CSV");
    println!("wrote {}", path.display());
}
