//! Figure 10: recall with 20% query padding vs no padding (containment
//! matching, approximate min-wise hashing), plus an extension sweep over
//! padding fractions (the paper's future-work "dynamically adjusting
//! padding" question).
//!
//! Usage: `cargo run --release -p ars-bench --bin fig10`

use ars_bench::experiments::{results_path, run_quality_experiment};
use ars_common::csv::{fmt_f64, CsvTable};
use ars_core::recall::{mean_recall, pct_fully_answered, recall_curve};
use ars_core::{MatchMeasure, SystemConfig};

fn main() {
    let mut csv = CsvTable::new(["padding", "recall_threshold", "pct_queries_at_least"]);
    println!("# Figure 10 — recall with query padding (containment matching)");
    for padding in [0.2, 0.0] {
        let outcomes = run_quality_experiment(
            SystemConfig::default()
                .with_matching(MatchMeasure::Containment)
                .with_padding(padding),
        );
        let curve = recall_curve(&outcomes);
        println!("\n## padding = {padding}");
        println!("{:>18} {:>18}", "recall ≥", "% of queries");
        for (t, p) in &curve {
            println!("{t:>18.1} {p:>18.2}");
            csv.push_row([format!("{padding}"), fmt_f64(*t), fmt_f64(*p)]);
        }
        println!("  fully answered: {:.1}%", pct_fully_answered(&outcomes));
    }
    println!("\n(paper: 20% padding lifts fully-answered queries to a little over 70%)");

    // Extension: padding sweep — where does the benefit peak?
    println!("\n# Extension — padding sweep (containment matching)");
    println!(
        "{:>10} {:>20} {:>14}",
        "padding", "fully answered (%)", "mean recall"
    );
    let mut sweep_csv = CsvTable::new(["padding", "pct_fully_answered", "mean_recall"]);
    for padding in [0.0, 0.05, 0.1, 0.2, 0.3, 0.5] {
        let outcomes = run_quality_experiment(
            SystemConfig::default()
                .with_matching(MatchMeasure::Containment)
                .with_padding(padding),
        );
        let full = pct_fully_answered(&outcomes);
        let mean = mean_recall(&outcomes);
        println!("{padding:>10.2} {full:>20.1} {mean:>14.3}");
        sweep_csv.push_row([format!("{padding}"), fmt_f64(full), fmt_f64(mean)]);
    }
    let path = results_path("fig10_padding.csv");
    csv.write_to(&path).expect("write CSV");
    let sweep_path = results_path("fig10_padding_sweep.csv");
    sweep_csv.write_to(&sweep_path).expect("write CSV");
    println!("\nwrote {} and {}", path.display(), sweep_path.display());
}
