//! Tail-latency benchmark under gray failures: slow-peer fraction ×
//! slowdown factor × {baseline, hedged, hedged+breaker}, written to
//! `BENCH_tail.json` at the repo root.
//!
//! Each cell grows a fresh [`ChurnNetwork`] (same seed across modes, so
//! all three modes route identically and slow the *same* peers), warms
//! the cache through the resilient path on a healthy fleet, then slows a
//! stride-spaced fraction of the peers by the cell's factor and re-runs
//! the trace for several rounds, measuring per-query virtual latency
//! via [`ChurnNetwork::query_timed`]:
//!
//! * `p50` / `p99` — exact quantiles over the measured per-query
//!   latencies (sorted, not histogram-reconstructed);
//! * `recall` — mean recall of the re-queries, which must be *identical*
//!   across modes (tail tolerance must never trade answers for speed:
//!   substitutes are replica holders of the same buckets);
//! * `messages` — honest total message cost: routed hops of every
//!   measured lookup, **plus** every hedge/detour hop the backup paths
//!   spent (losers included), **plus** every health probe. The overhead
//!   headline is asserted against this total, so the machinery cannot
//!   hide its cost.
//!
//! The hedge policy used here lowers the delay floor to 500 (the default
//! floor of 1 000 is conservative enough for *churning* networks where a
//! DFS route may run long; on the converged rings benchmarked here
//! routes are ≤ ~10 hops ≈ 200 virtual units, so 500 still never fires
//! on a healthy fleet). The breaker cooldown is 250 000 virtual units —
//! thousands of service times, the usual ratio for real circuit
//! breakers — so a peer that trips stays short-circuited for the whole
//! measured window instead of being re-probed into the tail every few
//! queries.
//!
//! A final section drives the engine's deadline-aware admission control
//! through an overload burst and records the shedding ledger, asserted
//! to balance exactly: `submitted == completed + shed + queued`.
//!
//! The seed honors `ARS_FAULT_SEED` (default 0) so CI can sweep seeds;
//! at a fixed seed the output is byte-identical across reruns (the
//! headline cell is re-run in-process to prove it).
//!
//! Usage: `cargo run --release -p ars-bench --bin bench_tail`

use ars_core::engine::{EngineOptions, QueryEngine};
use ars_core::{
    BreakerConfig, ChurnNetwork, HedgePolicy, MatchMeasure, RangeSelectNetwork, SystemConfig,
};
use ars_lsh::RangeSet;

const N_PEERS: usize = 50;
const N_QUERIES: usize = 60;
const MEASURE_ROUNDS: usize = 5;
const SLOW_FRACTIONS: [f64; 2] = [0.1, 0.2];
const SLOW_FACTORS: [u64; 2] = [4, 10];

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Baseline,
    Hedged,
    HedgedBreaker,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Hedged => "hedged",
            Mode::HedgedBreaker => "hedged+breaker",
        }
    }
}

#[derive(Clone, PartialEq, Debug)]
struct Cell {
    frac: f64,
    factor: u64,
    mode: Mode,
    p50: u64,
    p99: u64,
    mean: f64,
    recall: f64,
    messages: u64,
    hedges_fired: u64,
    hedges_won: u64,
    short_circuits: u64,
    breaker_opens: u64,
}

fn fault_seed() -> u64 {
    std::env::var("ARS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Distinct, well-spread query ranges (no repeats, so the measurement
/// phase scores only what the warm phase cached).
fn trace() -> Vec<RangeSet> {
    (0..N_QUERIES as u32)
        .map(|i| {
            let lo = i * 523 % 40_000;
            RangeSet::interval(lo, lo + 60 + (i % 5) * 25)
        })
        .collect()
}

/// The tuned hedge policy (see module docs for why the floor is 500
/// here rather than the conservative default of 1 000).
fn bench_hedge_policy() -> HedgePolicy {
    HedgePolicy {
        min_delay: 500,
        ..HedgePolicy::default()
    }
}

/// Breaker config with a production-shaped cooldown: thousands of
/// service times, so a tripped peer is not re-probed into the tail
/// mid-measurement.
fn bench_breaker_config() -> BreakerConfig {
    BreakerConfig {
        cooldown: 250_000,
        ..BreakerConfig::default()
    }
}

fn run_cell(frac: f64, factor: u64, mode: Mode, seed: u64) -> Cell {
    let config = SystemConfig::default()
        .with_kl(16, 4)
        .with_matching(MatchMeasure::Containment)
        .with_replication(2)
        .with_seed(0x7A11 ^ seed);
    let mut net = ChurnNetwork::new(N_PEERS, config).expect("growth converges");
    let tel = ars_telemetry::Telemetry::recording();
    net.set_telemetry(tel.clone());
    match mode {
        Mode::Baseline => {}
        Mode::Hedged => net.enable_hedging(bench_hedge_policy()),
        Mode::HedgedBreaker => {
            net.enable_hedging(bench_hedge_policy());
            net.enable_breakers(bench_breaker_config());
        }
    }
    let queries = trace();

    // Warm: cache every partition (and its replica) on a healthy fleet,
    // teaching the failure detector its healthy baselines as a side
    // effect of the reads.
    for q in &queries {
        net.query_resilient(q);
    }
    if mode == Mode::HedgedBreaker {
        // Baseline health sweeps (the detector must know "normal" before
        // it can call anything abnormal).
        for _ in 0..3 {
            net.probe_peers();
        }
    }

    // Gray failure onset: stride-spaced victims, same ids in every mode.
    net.slow_fraction(frac, factor);
    if mode == Mode::HedgedBreaker {
        // Two sweeps: one to raise suspicion, one to trip the breakers
        // (failure_threshold = 2). Counted in `messages` like all probes.
        for _ in 0..2 {
            net.probe_peers();
        }
    }

    // Measure. Message accounting comes from the telemetry-derived
    // metric ([`ars_telemetry::MetricsSnapshot::total_messages`]) rather
    // than a hand-rolled sum; the warm phase's routed hops are excluded
    // (measured lookups only), while hedge/detour hops and health probes
    // — all spent in or for the measured window — count in full.
    let warm_hops = tel.snapshot().counter("resilient.lookup.hops");
    let mut latencies = Vec::with_capacity(N_QUERIES * MEASURE_ROUNDS);
    let mut recall_sum = 0.0;
    for _ in 0..MEASURE_ROUNDS {
        for q in &queries {
            let (out, lat) = net.query_timed(q);
            latencies.push(lat);
            recall_sum += out.recall;
        }
    }
    let messages = tel.snapshot().total_messages() - warm_hops;
    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    let res = net.resilience();
    Cell {
        frac,
        factor,
        mode,
        p50: quantile(0.50),
        p99: quantile(0.99),
        mean: latencies.iter().sum::<u64>() as f64 / latencies.len() as f64,
        recall: recall_sum / latencies.len() as f64,
        messages,
        hedges_fired: res.hedges_fired,
        hedges_won: res.hedges_won,
        short_circuits: res.breaker_short_circuits,
        breaker_opens: res.breaker_opens,
    }
}

/// Overload a deadline-aware engine and return its shedding ledger as
/// `(submitted, completed, shed)`.
fn run_shedding(seed: u64) -> (u64, u64, u64) {
    let net = RangeSelectNetwork::new(30, SystemConfig::default().with_seed(0x5EED ^ seed));
    let mut engine = QueryEngine::launch(
        net,
        EngineOptions {
            shards: 2,
            workers: 2,
            queue: 64,
        },
    );
    engine.set_service_cost(100);
    // Arrivals at 60% of the service interval: the virtual queue grows
    // without bound, so admission control must shed to keep the served
    // queries inside their 300-unit deadline.
    for (i, q) in trace().iter().enumerate() {
        engine.submit_timed(q, i as u64 * 60, 300);
    }
    engine.drain().expect("no worker panicked");
    let ledger = engine.admission();
    assert_eq!(ledger.queued, 0, "drained engine has nothing queued");
    assert_eq!(
        ledger.submitted,
        ledger.completed + ledger.shed + ledger.queued,
        "shedding ledger must balance"
    );
    assert!(ledger.shed > 0, "overload burst must shed");
    assert!(ledger.completed > 0, "admission must still serve the head");
    engine.shutdown().1.expect("no worker panicked");
    (ledger.submitted, ledger.completed, ledger.shed)
}

fn cell_json(c: &Cell) -> String {
    format!(
        "{{\"slow_fraction\": {:.2}, \"factor\": {}, \"mode\": \"{}\", \
         \"p50\": {}, \"p99\": {}, \"mean\": {:.2}, \"recall\": {:.4}, \
         \"messages\": {}, \"hedges_fired\": {}, \"hedges_won\": {}, \
         \"short_circuits\": {}, \"breaker_opens\": {}}}",
        c.frac,
        c.factor,
        c.mode.name(),
        c.p50,
        c.p99,
        c.mean,
        c.recall,
        c.messages,
        c.hedges_fired,
        c.hedges_won,
        c.short_circuits,
        c.breaker_opens
    )
}

fn main() {
    let seed = fault_seed();
    let modes = [Mode::Baseline, Mode::Hedged, Mode::HedgedBreaker];
    let mut cells: Vec<Cell> = Vec::new();
    println!("# seed {seed} ({N_PEERS} peers, {N_QUERIES}x{MEASURE_ROUNDS} queries, k=16 l=4 r=2)");
    println!(
        "{:>6} {:>7} {:>15} {:>7} {:>7} {:>9} {:>8} {:>9} {:>7} {:>6} {:>7} {:>6}",
        "slow",
        "factor",
        "mode",
        "p50",
        "p99",
        "mean",
        "recall",
        "messages",
        "hedged",
        "won",
        "short",
        "opens"
    );
    for &frac in &SLOW_FRACTIONS {
        for &factor in &SLOW_FACTORS {
            for &mode in &modes {
                let c = run_cell(frac, factor, mode, seed);
                println!(
                    "{:>6.2} {:>7} {:>15} {:>7} {:>7} {:>9.1} {:>8.3} {:>9} {:>7} {:>6} {:>7} {:>6}",
                    c.frac,
                    c.factor,
                    c.mode.name(),
                    c.p50,
                    c.p99,
                    c.mean,
                    c.recall,
                    c.messages,
                    c.hedges_fired,
                    c.hedges_won,
                    c.short_circuits,
                    c.breaker_opens
                );
                cells.push(c);
            }
        }
    }

    let cell = |frac: f64, factor: u64, mode: Mode| {
        cells
            .iter()
            .find(|c| c.frac == frac && c.factor == factor && c.mode == mode)
            .expect("cell present")
    };

    // Headline: 20% of peers slowed 10× — hedging + breakers must cut
    // p99 at least 2× against the baseline, at no more than 1.3× the
    // honestly-counted message cost, without moving recall at all.
    let base = cell(0.2, 10, Mode::Baseline);
    let hb = cell(0.2, 10, Mode::HedgedBreaker);
    let p99_cut = base.p99 as f64 / hb.p99 as f64;
    let msg_ratio = hb.messages as f64 / base.messages as f64;
    println!(
        "\nheadline (20% slowed 10x): p99 {} -> {} ({p99_cut:.2}x cut), \
         messages {} -> {} ({msg_ratio:.3}x)",
        base.p99, hb.p99, base.messages, hb.messages
    );
    assert!(
        p99_cut >= 2.0,
        "hedged+breaker p99 {} must be at least half of baseline {}",
        hb.p99,
        base.p99
    );
    assert!(
        msg_ratio <= 1.3,
        "message overhead {msg_ratio:.3}x exceeds the 1.3x budget"
    );
    for &frac in &SLOW_FRACTIONS {
        for &factor in &SLOW_FACTORS {
            let b = cell(frac, factor, Mode::Baseline);
            for mode in [Mode::Hedged, Mode::HedgedBreaker] {
                let c = cell(frac, factor, mode);
                assert!(
                    c.recall == b.recall,
                    "recall moved at frac {frac} factor {factor} {}: {} vs {}",
                    mode.name(),
                    c.recall,
                    b.recall
                );
                assert!(
                    c.p99 <= b.p99,
                    "{} p99 {} worse than baseline {} at frac {frac} factor {factor}",
                    mode.name(),
                    c.p99,
                    b.p99
                );
            }
        }
    }

    // Shedding ledger (asserted balanced inside).
    let (submitted, completed, shed) = run_shedding(seed);
    println!("shedding: submitted {submitted} = completed {completed} + shed {shed}");

    // Determinism: the headline cell re-run from scratch is bit-identical.
    let again = run_cell(0.2, 10, Mode::HedgedBreaker, seed);
    assert_eq!(*hb, again, "headline cell must replay bit-identically");

    let mut json = format!(
        "{{\n  \"benchmark\": \"tail_tolerance\",\n  \"seed\": {seed},\n  \
         \"peers\": {N_PEERS},\n  \"queries\": {},\n  \"cells\": [\n",
        N_QUERIES * MEASURE_ROUNDS
    );
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        json.push_str(&format!("    {}{sep}\n", cell_json(c)));
    }
    json.push_str(&format!(
        "  ],\n  \"headline\": {{\n    \"p99_baseline\": {},\n    \
         \"p99_hedged_breaker\": {},\n    \"p99_cut\": {p99_cut:.3},\n    \
         \"message_overhead\": {msg_ratio:.4},\n    \
         \"recall_unchanged\": true\n  }},\n  \"shedding\": {{\n    \
         \"submitted\": {submitted},\n    \"completed\": {completed},\n    \
         \"shed\": {shed}\n  }}\n}}\n",
        base.p99, hb.p99
    ));

    let path = ars_bench::experiments::repo_root().join("BENCH_tail.json");
    std::fs::write(&path, json).expect("write BENCH_tail.json");
    println!("wrote {}", path.display());
}
