//! Partition-tolerance benchmark: recall during and after a network
//! split, swept over minority-island size × window length × replication
//! factor, written to `BENCH_partitions.json` at the repo root.
//!
//! Each cell grows a fresh [`ChurnNetwork`], warms the cache through the
//! resilient path, then opens a partition window: a minority island of
//! `minority · N` peers is severed from the rest, both sides stabilize
//! onto their own rings (split-brain), and the warm trace is re-run in
//! degraded mode while `window` *fresh* queries are cached island-locally.
//! Mid-window one minority member fails abruptly. The window then closes
//! ([`ChurnNetwork::heal`]), the ring re-merges, budgeted anti-entropy
//! repair runs to quiescence, and the full trace (warm + in-window) is
//! re-queried. Measured per cell:
//!
//! * `inwindow_recall` — mean recall of the warm re-queries during the
//!   split (the degraded-mode floor);
//! * `degraded_frac` — fraction of in-window queries flagged
//!   [`partition_degraded`](ars_core::QueryOutcome::partition_degraded);
//! * `partition_writes` — copies written island-locally during the window
//!   (the divergence reconciliation must converge);
//! * `post_heal_recall` — mean recall of the full trace after heal +
//!   repair (the headline: **exactly 1.0 whenever `r ≥ 2`**, because the
//!   one failed minority peer never held the last copy of anything);
//! * `repair_rounds` / `repair_sent` — the cost of reconciliation;
//! * `rejoined` — nodes re-bootstrapped by the heal.
//!
//! Three properties are asserted in-binary, every run:
//!
//! 1. the bucket ledger `placed + recovered == live + lost` balances in
//!    every cell (no copy silently appears or vanishes, split or not);
//! 2. post-heal recall is exactly 1.000 in every `r ≥ 2` cell with a
//!    minority of ≤ 30% — reconciliation converges, not approximately;
//! 3. the `r = 1` cells show the contrast: the mid-window failure loses
//!    buckets for good (sole copies), so recall does *not* return to 1.
//!
//! A companion discrete-event run per (minority, window) cell drives
//! ring relays through a matching
//! [`PartitionWindow`](ars_simnet::PartitionWindow) and asserts the
//! message ledger `sent == delivered + dropped + partitioned + queued`
//! stays conserved with `partitioned > 0` at every step.
//!
//! The seed honors `ARS_FAULT_SEED` (default 0) so CI can sweep seeds.
//!
//! Usage: `cargo run --release -p ars-bench --bin bench_partitions`

use ars_chord::Id;
use ars_core::{ChurnNetwork, MatchMeasure, SystemConfig};
use ars_lsh::RangeSet;
use ars_simnet::{ConstantLatency, FaultPlan, Node, NodeCtx, SimNet};

const N_PEERS: usize = 50;
const N_WARM: usize = 80;
const MINORITY_FRACS: [f64; 3] = [0.10, 0.20, 0.30];
const WINDOW_QUERIES: [usize; 2] = [20, 60];
const REPLICATION: [usize; 3] = [1, 2, 3];

struct Cell {
    minority: f64,
    window: usize,
    replication: usize,
    inwindow_recall: f64,
    degraded_frac: f64,
    partition_writes: u64,
    buckets_lost: u64,
    post_heal_recall: f64,
    repair_rounds: u64,
    repair_sent: u64,
    rejoined: usize,
}

fn fault_seed() -> u64 {
    std::env::var("ARS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Distinct well-spread query ranges; `offset` lets the in-window fresh
/// trace stay disjoint from the warm trace.
fn trace(offset: usize, n: usize) -> Vec<RangeSet> {
    (offset as u32..(offset + n) as u32)
        .map(|i| {
            let lo = i * 523 % 40_000;
            RangeSet::interval(lo, lo + 60 + (i % 5) * 25)
        })
        .collect()
}

/// The ledger identity checked after every phase of every cell.
fn assert_ledger(net: &ChurnNetwork, what: &str) {
    let s = net.resilience();
    assert_eq!(
        s.buckets_placed + s.buckets_recovered,
        net.total_partitions() as u64 + s.buckets_lost,
        "{what}: ledger violated: placed {} recovered {} live {} lost {}",
        s.buckets_placed,
        s.buckets_recovered,
        net.total_partitions(),
        s.buckets_lost
    );
}

fn run_cell(minority: f64, window: usize, replication: usize, seed: u64) -> Cell {
    let config = SystemConfig::default()
        .with_kl(16, 1)
        .with_matching(MatchMeasure::Containment)
        .with_replication(replication)
        .with_seed(0x5011D ^ seed);
    let mut net = ChurnNetwork::new(N_PEERS, config).expect("growth converges");
    let warm = trace(0, N_WARM);
    let fresh = trace(N_WARM, window);

    for q in &warm {
        net.query_resilient(q);
    }
    assert_ledger(&net, "warm");

    // Open the window: the k lowest ids form the minority island.
    let ids = net.chord().node_ids();
    let k = (minority * N_PEERS as f64).round() as usize;
    let min_island: Vec<Id> = ids[..k].to_vec();
    let maj_island: Vec<Id> = ids[k..].to_vec();
    net.partition(&[maj_island, min_island.clone()]);
    net.stabilize(256);
    net.settle(4); // collapse predecessors so both islands are coherent
    assert!(
        net.chord().ring_view().is_split_brain(),
        "stabilized partition must probe as split-brain"
    );

    // Degraded mode: warm re-queries measure the recall floor, fresh
    // queries miss and are cached island-locally.
    let writes_before = net.resilience().partition_writes;
    let mut recall_sum = 0.0;
    let mut degraded = 0usize;
    for q in &warm {
        let out = net.query_resilient(q);
        recall_sum += out.recall;
        degraded += out.partition_degraded as usize;
    }
    for q in &fresh {
        degraded += net.query_resilient(q).partition_degraded as usize;
    }
    let partition_writes = net.resilience().partition_writes - writes_before;
    assert!(
        partition_writes > 0,
        "fresh in-window misses must be cached island-locally"
    );
    assert_ledger(&net, "in-window");

    // Mid-window abrupt failure inside the minority: pick the member
    // holding the most copies so the r = 1 contrast is deterministic.
    let victim = *min_island
        .iter()
        .max_by_key(|id| {
            net.inventory()
                .iter()
                .filter(|(p, _, _)| *p == id.0)
                .count()
        })
        .expect("minority island is non-empty");
    let lost_before = net.resilience().buckets_lost;
    net.fail(victim).expect("minority member fails mid-window");
    let buckets_lost = net.resilience().buckets_lost - lost_before;
    assert_ledger(&net, "mid-window failure");

    // Close the window, re-merge, and reconcile.
    let rejoined = net.heal();
    net.stabilize(512).expect("healed ring re-merges");
    net.settle(4);
    let rounds_before = net.resilience().repair_rounds;
    let sent_before = net.resilience().repair_entries_sent;
    net.repair_until_quiescent(128, 10_000)
        .expect("post-heal repair quiesces");
    let repair_rounds = net.resilience().repair_rounds - rounds_before;
    let repair_sent = net.resilience().repair_entries_sent - sent_before;

    let mut post_sum = 0.0;
    let mut post_n = 0usize;
    for q in warm.iter().chain(fresh.iter()) {
        let out = net.query_resilient(q);
        assert!(
            !out.partition_degraded,
            "healed network must not flag degradation"
        );
        post_sum += out.recall;
        post_n += 1;
    }
    assert_ledger(&net, "post-heal");

    Cell {
        minority,
        window,
        replication,
        inwindow_recall: recall_sum / N_WARM as f64,
        degraded_frac: degraded as f64 / (N_WARM + window) as f64,
        partition_writes,
        buckets_lost,
        post_heal_recall: post_sum / post_n as f64,
        repair_rounds,
        repair_sent,
        rejoined,
    }
}

// ---------------------------------------------------------------------
// Companion message-ledger run: ring relays under a timed partition
// window on the discrete-event simulator.
// ---------------------------------------------------------------------

struct Relay {
    n_nodes: usize,
}

impl Node<u32> for Relay {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, u32>, _from: usize, msg: u32) {
        if msg > 0 {
            ctx.send((ctx.me + 1) % self.n_nodes, msg - 1);
        }
    }
}

/// Run 12 ring relays with a scaled minority severed over
/// `[10, 10 + 10·window)`; returns `(sent, delivered, dropped,
/// partitioned)` after asserting conservation at every step.
fn relay_ledger(minority: f64, window: usize, seed: u64) -> (u64, u64, u64, u64) {
    let n = 12;
    let k = ((minority * n as f64).round() as usize).max(1);
    let nodes: Vec<Box<dyn Node<u32>>> = (0..n)
        .map(|_| Box::new(Relay { n_nodes: n }) as Box<dyn Node<u32>>)
        .collect();
    let mut sim = SimNet::new(nodes, ConstantLatency(5));
    let until = 10 + 10 * window as u64;
    sim.set_faults(
        FaultPlan::none().with_partition(vec![(0..k).collect(), (k..n).collect()], 10, until),
        seed,
    );
    for i in 0..n {
        sim.inject(0, i, 60);
    }
    while sim.step() {
        assert!(sim.stats().is_conserved(), "message ledger violated");
    }
    let s = sim.stats();
    assert_eq!(s.queued, 0, "queue must drain after the window closes");
    assert!(s.partitioned > 0, "ring relays must cross the cut");
    assert_eq!(s.sent, s.delivered + s.dropped + s.partitioned);
    (s.sent, s.delivered, s.dropped, s.partitioned)
}

fn main() {
    let seed = fault_seed();
    let mut cells: Vec<Cell> = Vec::new();
    println!("# seed {seed} ({N_PEERS} peers, {N_WARM} warm queries, k=16 l=1)");
    println!(
        "{:>9} {:>7} {:>3} {:>9} {:>9} {:>7} {:>6} {:>10} {:>7} {:>6} {:>9}",
        "minority",
        "window",
        "r",
        "in_recall",
        "degraded",
        "writes",
        "lost",
        "post_heal",
        "rounds",
        "sent",
        "rejoined"
    );
    // The message-layer companion runs once per (minority, window) cell
    // of the sweep — the replication factor does not touch the wire.
    let mut ledgers = Vec::new();
    for &minority in &MINORITY_FRACS {
        for &window in &WINDOW_QUERIES {
            let (sent, delivered, dropped, partitioned) = relay_ledger(minority, window, seed);
            ledgers.push((minority, window, sent, delivered, dropped, partitioned));
        }
    }
    for &replication in &REPLICATION {
        for &minority in &MINORITY_FRACS {
            for &window in &WINDOW_QUERIES {
                let c = run_cell(minority, window, replication, seed);
                println!(
                    "{:>9.2} {:>7} {:>3} {:>9.3} {:>9.3} {:>7} {:>6} {:>10.3} {:>7} {:>6} {:>9}",
                    c.minority,
                    c.window,
                    c.replication,
                    c.inwindow_recall,
                    c.degraded_frac,
                    c.partition_writes,
                    c.buckets_lost,
                    c.post_heal_recall,
                    c.repair_rounds,
                    c.repair_sent,
                    c.rejoined
                );
                cells.push(c);
            }
        }
    }

    // Headline assertions over the matrix.
    for c in &cells {
        if c.replication >= 2 {
            assert_eq!(
                c.post_heal_recall, 1.0,
                "r={} minority={} window={}: post-heal recall {:.4} != 1.0 — \
                 reconciliation must converge exactly",
                c.replication, c.minority, c.window, c.post_heal_recall
            );
        }
    }
    let r1_contrast = cells
        .iter()
        .filter(|c| c.replication == 1)
        .all(|c| c.post_heal_recall < 1.0 || c.buckets_lost > 0);
    assert!(
        r1_contrast,
        "every r=1 cell must show the cost of no replication (lost buckets \
         or depressed post-heal recall)"
    );
    assert!(
        cells.iter().any(|c| c.degraded_frac > 0.0),
        "some in-window query must have been flagged degraded"
    );
    let worst_inwindow = cells
        .iter()
        .map(|c| c.inwindow_recall)
        .fold(f64::INFINITY, f64::min);
    let best_r1_post = cells
        .iter()
        .filter(|c| c.replication == 1)
        .map(|c| c.post_heal_recall)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nin-window recall floor {worst_inwindow:.3}; post-heal recall 1.000 at r>=2 \
         (minority <= 30%), r=1 floor {best_r1_post:.3}"
    );

    for (minority, window, sent, delivered, dropped, partitioned) in &ledgers {
        println!(
            "relay ledger (minority {minority:.2}, window {window}): sent {sent} = \
             delivered {delivered} + dropped {dropped} + partitioned {partitioned}"
        );
    }

    let mut json = format!(
        "{{\n  \"benchmark\": \"partition_tolerance\",\n  \"seed\": {seed},\n  \
         \"peers\": {N_PEERS},\n  \"warm_queries\": {N_WARM},\n  \"cells\": [\n"
    );
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"minority\": {:.2}, \"window\": {}, \"replication\": {}, \
             \"inwindow_recall\": {:.4}, \"degraded_frac\": {:.4}, \
             \"partition_writes\": {}, \"buckets_lost\": {}, \
             \"post_heal_recall\": {:.4}, \"repair_rounds\": {}, \
             \"repair_sent\": {}, \"rejoined\": {}}}{sep}\n",
            c.minority,
            c.window,
            c.replication,
            c.inwindow_recall,
            c.degraded_frac,
            c.partition_writes,
            c.buckets_lost,
            c.post_heal_recall,
            c.repair_rounds,
            c.repair_sent,
            c.rejoined
        ));
    }
    json.push_str("  ],\n  \"relay_ledgers\": [\n");
    for (i, (minority, window, sent, delivered, dropped, partitioned)) in ledgers.iter().enumerate()
    {
        let sep = if i + 1 == ledgers.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"minority\": {minority:.2}, \"window\": {window}, \"sent\": {sent}, \
             \"delivered\": {delivered}, \"dropped\": {dropped}, \
             \"partitioned\": {partitioned}}}{sep}\n"
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"headline\": {{\n    \"inwindow_recall_floor\": {worst_inwindow:.4},\n    \
         \"post_heal_recall_r2_plus\": 1.0,\n    \
         \"post_heal_recall_r1_floor\": {best_r1_post:.4}\n  }}\n}}\n"
    ));

    let path = ars_bench::experiments::repo_root().join("BENCH_partitions.json");
    std::fs::write(&path, json).expect("write BENCH_partitions.json");
    println!("wrote {}", path.display());
}
