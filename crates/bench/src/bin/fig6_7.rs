//! Figures 6(a), 6(b) and 7: histograms of the similarity of the matched
//! partition for the three hash families under the §5.1 workload
//! (10,000 uniform ranges on `[0, 1000]`, cache-on-miss, first 20% dropped).
//!
//! Usage: `cargo run --release -p ars-bench --bin fig6_7`

use ars_bench::experiments::{results_path, run_quality_experiment};
use ars_common::csv::{fmt_f64, CsvTable};
use ars_core::recall::similarity_histogram;
use ars_core::SystemConfig;
use ars_lsh::LshFamilyKind;

fn main() {
    let mut csv = CsvTable::new(["family", "bin_lo", "bin_hi", "pct_of_queries"]);
    for (figure, kind) in [
        ("6(a)", LshFamilyKind::MinWise),
        ("6(b)", LshFamilyKind::ApproxMinWise),
        ("7 [wide modulus]", LshFamilyKind::Linear),
        ("7 [domain modulus]", LshFamilyKind::LinearDomain),
    ] {
        let outcomes = run_quality_experiment(SystemConfig::default().with_family(kind));
        let hist = similarity_histogram(&outcomes);
        let pct = hist.percentages();
        println!("\n# Figure {figure} — {kind}: similarity of matched partition");
        println!("{:>12} {:>18}", "similarity", "% of queries");
        for (i, p) in pct.iter().enumerate() {
            let (lo, hi) = hist.bin_edges(i);
            println!("{:>5.1}-{:<5.1} {:>18.2}", lo, hi, p);
            csv.push_row([
                kind.name().to_string(),
                fmt_f64(lo),
                fmt_f64(hi),
                fmt_f64(*p),
            ]);
        }
        let top = pct[9];
        let unmatched = pct[0];
        println!("  [0.9,1.0] bin: {top:.1}%   [0,0.1) bin (incl. no match): {unmatched:.1}%");
    }
    let path = results_path("fig6_7_similarity_histograms.csv");
    csv.write_to(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
