//! Extension experiment: cache quality under churn.
//!
//! The paper evaluates a static network; here the same workload runs while
//! peers crash in waves. Cached partitions on crashed peers are lost
//! (soft state) and repopulate through cache-on-miss, so the complete-
//! answer rate dips at each wave and recovers — quantifying how quickly
//! the paper's caching heals.
//!
//! Usage: `cargo run --release -p ars-bench --bin churn_experiment`

use ars_bench::experiments::results_path;
use ars_common::csv::{fmt_f64, CsvTable};
use ars_core::{ChurnNetwork, MatchMeasure, SystemConfig};
use ars_workload::clustered_trace;

const N_PEERS: usize = 60;
const N_QUERIES: usize = 4_000;
const WINDOW: usize = 200;
const FAIL_EVERY: usize = 1_000;
const FAIL_COUNT: usize = 10;

fn main() {
    let config = SystemConfig::default()
        .with_matching(MatchMeasure::Containment)
        .with_seed(606);
    let mut net = ChurnNetwork::new(N_PEERS, config).expect("growth converges");
    // Clustered queries: high cache value, so damage is visible.
    let trace = clustered_trace(N_QUERIES, 0, 1000, 40, 6, 11);

    println!("# Complete-answer rate per {WINDOW}-query window; {FAIL_COUNT} peers crash every {FAIL_EVERY} queries");
    println!(
        "{:>10} {:>18} {:>12} {:>12}",
        "query#", "complete rate (%)", "peers", "partitions"
    );
    let mut csv = CsvTable::new(["window_end", "pct_complete", "peers", "partitions"]);
    let mut window_hits = 0usize;
    for (i, q) in trace.queries().iter().enumerate() {
        if i > 0 && i % FAIL_EVERY == 0 {
            net.fail_random(FAIL_COUNT);
            net.stabilize(128).expect("ring recovers");
            // Replace the crashed peers so capacity stays constant.
            for _ in 0..FAIL_COUNT {
                net.join_random_with_migration().expect("rejoin");
            }
            net.stabilize(128).expect("ring converges");
            println!("  -- crash wave at query {i} --");
        }
        let out = net.query(q).expect("stabilized network answers");
        if out.recall >= 1.0 {
            window_hits += 1;
        }
        if (i + 1) % WINDOW == 0 {
            let pct = 100.0 * window_hits as f64 / WINDOW as f64;
            println!(
                "{:>10} {:>18.1} {:>12} {:>12}",
                i + 1,
                pct,
                net.len(),
                net.total_partitions()
            );
            csv.push_row([
                (i + 1).to_string(),
                fmt_f64(pct),
                net.len().to_string(),
                net.total_partitions().to_string(),
            ]);
            window_hits = 0;
        }
    }
    let path = results_path("churn_quality.csv");
    csv.write_to(&path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
