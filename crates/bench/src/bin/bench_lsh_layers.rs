//! Lookup-budget sweep for multi-probe + layered placement, written to
//! `BENCH_lsh_layers.json` at the repo root.
//!
//! The paper's placement routes each of a query's `l` group identifiers
//! independently — `l` Chord lookups, each `O(log N)` hops. Layered
//! placement ([`ars_core::PlacementMode::Layered`]) re-keys all of a
//! range's buckets into one ring arc chosen by an anchor sketch, so a
//! query spends **one** lookup plus a bounded successor walk, and
//! multi-probe candidates ([`ars_lsh::probe`]) recover the recall the
//! collapsed routing would otherwise give up. This harness sweeps
//! probes × layers × l over a skewed trace (popular repeats, jittered
//! neighbors, cold scans — the regime LSH placement exists for) and
//! records recall, lookups/query, and messages/query per cell, the
//! latter via [`ars_telemetry::MetricsSnapshot::messages_per_query`].
//!
//! Acceptance, asserted in-binary: the headline layered cell (l=5,
//! layers=1, probes=16) holds mean recall within **1%** of the l=5
//! independent baseline while spending **≤ ½** the lookups *and* ≤ ½
//! the messages per query.
//!
//! The seed honors `ARS_FAULT_SEED` (default 0) so CI can sweep seeds.
//!
//! Usage: `cargo run --release -p ars-bench --bin bench_lsh_layers`

use ars_core::{PlacementMode, RangeSelectNetwork, SystemConfig};
use ars_lsh::RangeSet;
use ars_telemetry::Telemetry;

const N_PEERS: usize = 64;
const K: usize = 20;
const RECALL_SLACK: f64 = 0.01;
const BUDGET_RATIO: f64 = 0.5;

fn seed() -> u64 {
    std::env::var("ARS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The sweep trace: two popular ranges re-queried throughout, small
/// jitters around them, and a cold scan mix that never repeats. Shared
/// verbatim by every cell so recall and cost are directly comparable.
fn trace() -> Vec<RangeSet> {
    let mut qs = Vec::new();
    for i in 0..120u32 {
        // Cold scan: `i * 97 mod 3000` never revisits a lo in 120 steps.
        let lo = (i * 97) % 3000;
        qs.push(RangeSet::interval(lo, lo + 40 + (i % 4) * 30));
        if i % 2 == 0 {
            qs.push(RangeSet::interval(500, 700)); // popular A
        }
        if i % 3 == 0 {
            qs.push(RangeSet::interval(1_500, 1_620)); // popular B
        }
        if i % 4 == 0 {
            // Jittered neighbor of popular A.
            qs.push(RangeSet::interval(500 + (i % 3), 700 + (i % 2)));
        }
        if i % 6 == 0 {
            // Jittered neighbor of popular B.
            qs.push(RangeSet::interval(1_500 + (i % 2), 1_621));
        }
    }
    qs
}

struct Cell {
    mode: &'static str,
    l: usize,
    layers: usize,
    probes: usize,
    recall: f64,
    lookups_per_query: f64,
    messages_per_query: f64,
    walk_steps: u64,
    probe_checks: u64,
}

fn run_cell(mode: &'static str, l: usize, layers: usize, probes: usize, seed: u64) -> Cell {
    let placement = match mode {
        "independent" => PlacementMode::Independent,
        "layered" => PlacementMode::Layered,
        other => panic!("unknown mode {other}"),
    };
    let config = SystemConfig::default()
        .with_seed(seed)
        .with_kl(K, l)
        .with_placement_mode(placement)
        .with_layers(layers)
        .with_probes(probes);
    let mut net = RangeSelectNetwork::new(N_PEERS, config);
    let tel = Telemetry::recording();
    net.set_telemetry(tel.clone());

    let queries = trace();
    let mut recall_sum = 0.0;
    for q in &queries {
        recall_sum += net.query(q).recall;
    }

    let stats = net.stats();
    assert_eq!(stats.queries, queries.len() as u64);
    let snapshot = tel.snapshot();
    Cell {
        mode,
        l,
        layers,
        probes,
        recall: recall_sum / queries.len() as f64,
        lookups_per_query: stats.lookups as f64 / stats.queries as f64,
        messages_per_query: snapshot.messages_per_query(),
        walk_steps: stats.walk_steps,
        probe_checks: stats.probe_checks,
    }
}

fn main() {
    let seed = seed();
    println!(
        "# seed {seed} ({N_PEERS} peers, {} queries/cell, k={K})",
        trace().len()
    );
    println!(
        "  {:<12} {:>2} {:>6} {:>6} {:>8} {:>9} {:>10}",
        "mode", "l", "layers", "probes", "recall", "lookups/q", "messages/q"
    );

    let mut cells = Vec::new();
    cells.push(run_cell("independent", 5, 1, 0, seed)); // the paper baseline
    cells.push(run_cell("independent", 3, 1, 0, seed)); // naive budget cut: fewer groups
    for layers in [1usize, 2] {
        for probes in [0usize, 8, 16, 32] {
            cells.push(run_cell("layered", 5, layers, probes, seed));
        }
    }
    for c in &cells {
        println!(
            "  {:<12} {:>2} {:>6} {:>6} {:>8.4} {:>9.3} {:>10.3}",
            c.mode, c.l, c.layers, c.probes, c.recall, c.lookups_per_query, c.messages_per_query
        );
    }

    let base = &cells[0];
    let headline = cells
        .iter()
        .find(|c| c.mode == "layered" && c.layers == 1 && c.probes == 16)
        .expect("headline cell in sweep");
    let lookup_ratio = headline.lookups_per_query / base.lookups_per_query;
    let message_ratio = headline.messages_per_query / base.messages_per_query;
    println!(
        "\nheadline (layered l=5 layers=1 probes=16 vs independent l=5): \
         recall {:.4} vs {:.4}, lookups/q {:.3} vs {:.3} ({:.3}x), \
         messages/q {:.3} vs {:.3} ({:.3}x)",
        headline.recall,
        base.recall,
        headline.lookups_per_query,
        base.lookups_per_query,
        lookup_ratio,
        headline.messages_per_query,
        base.messages_per_query,
        message_ratio,
    );

    assert!(
        headline.recall >= base.recall - RECALL_SLACK,
        "layered recall {:.4} fell more than {RECALL_SLACK} below the \
         l=5 baseline {:.4}",
        headline.recall,
        base.recall
    );
    assert!(
        lookup_ratio <= BUDGET_RATIO,
        "layered placement spends {lookup_ratio:.3}x the baseline lookups \
         (budget {BUDGET_RATIO}x)"
    );
    assert!(
        message_ratio <= BUDGET_RATIO,
        "layered placement spends {message_ratio:.3}x the baseline messages \
         (budget {BUDGET_RATIO}x)"
    );

    let mut json = format!(
        "{{\n  \"benchmark\": \"lsh_layers\",\n  \"seed\": {seed},\n  \
         \"peers\": {N_PEERS},\n  \"queries_per_cell\": {},\n  \"cells\": [\n",
        trace().len()
    );
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"l\": {}, \"layers\": {}, \"probes\": {}, \
             \"recall\": {:.4}, \"lookups_per_query\": {:.3}, \
             \"messages_per_query\": {:.3}, \"walk_steps\": {}, \
             \"probe_checks\": {}}}{sep}\n",
            c.mode,
            c.l,
            c.layers,
            c.probes,
            c.recall,
            c.lookups_per_query,
            c.messages_per_query,
            c.walk_steps,
            c.probe_checks
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"headline\": {{\"lookup_ratio\": {lookup_ratio:.3}, \
         \"message_ratio\": {message_ratio:.3}, \"recall_delta\": {:.4}, \
         \"recall_slack\": {RECALL_SLACK}, \"budget_ratio\": {BUDGET_RATIO}}}\n}}\n",
        headline.recall - base.recall
    ));

    let path = ars_bench::experiments::repo_root().join("BENCH_lsh_layers.json");
    std::fs::write(&path, json).expect("write BENCH_lsh_layers.json");
    println!("wrote {}", path.display());
}
