//! Properties of the §5.1 workload, for EXPERIMENTS.md: the paper reports
//! "10,000 integer ranges with integers in 0 and 1000 … only 0.2%
//! repetitions"; this prints what our seeded regeneration actually
//! contains.
//!
//! Usage: `cargo run --release -p ars-bench --bin workload_stats`

use ars_bench::experiments::paper_trace;
use ars_workload::{clustered_trace, zipf_trace};

fn main() {
    let t = paper_trace();
    println!("paper trace (uniform endpoints on [0, 1000], seed fixed):");
    println!("  queries:          {}", t.len());
    println!("  distinct queries: {}", t.distinct());
    println!(
        "  repetition rate:  {:.2}% (paper: ~0.2%)",
        100.0 * t.repetition_rate()
    );
    println!("  mean range size:  {:.1} values", t.mean_size());

    let z = zipf_trace(10_000, 0, 1000, 100, 1.2, 60, 7);
    println!("\nzipf trace (100 hotspots, s = 1.2, widths ≤ 60):");
    println!("  distinct queries: {}", z.distinct());
    println!("  repetition rate:  {:.2}%", 100.0 * z.repetition_rate());

    let c = clustered_trace(10_000, 0, 1000, 20, 5, 7);
    println!("\nclustered trace (20 templates, ±5 jitter):");
    println!("  distinct queries: {}", c.distinct());
    println!("  repetition rate:  {:.2}%", 100.0 * c.repetition_rate());
}
