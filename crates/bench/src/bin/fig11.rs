//! Figure 11: load balancing.
//!
//! * 11(a): partitions stored per node (mean, 1st/99th percentiles) as the
//!   number of peers grows from 100 to 5000, with 50,000 stored partitions
//!   (10,000 unique ranges × l = 5 identifiers).
//! * 11(b): the same percentiles in a fixed 1000-node system as the number
//!   of stored partitions grows from 35,000 to 180,000.
//!
//! Usage: `cargo run --release -p ars-bench --bin fig11`

use ars_bench::experiments::results_path;
use ars_chord::sha1::sha1_u32;
use ars_chord::{Id, VirtualRing};
use ars_common::csv::{fmt_f64, CsvTable};
use ars_common::DetRng;
use ars_common::Summary;
use ars_core::config::Placement;
use ars_core::{RangeSelectNetwork, SystemConfig};
use ars_lsh::{HashGroups, LshFamilyKind};
use ars_workload::uniform_trace;

/// Store `unique` distinct ranges (each placed under its l identifiers).
fn populate(net: &mut RangeSelectNetwork, unique: usize, seed: u64) {
    // Draw until `unique` distinct ranges have been stored. Domain is
    // [0, 1000] per §5.1.
    let mut stored = std::collections::BTreeSet::new();
    let mut batch = 0u64;
    while stored.len() < unique {
        let trace = uniform_trace(unique, 0, 1000, seed ^ (batch << 32));
        for q in trace.queries() {
            if stored.len() >= unique {
                break;
            }
            let key = (q.min_value().unwrap(), q.max_value().unwrap());
            if stored.insert(key) {
                net.store_partition(q);
            }
        }
        batch += 1;
    }
}

fn summarize(net: &RangeSelectNetwork) -> Summary {
    Summary::from_counts(net.load_distribution())
}

fn main() {
    // ---- Fig 11(a): vary peers, fixed 50k placements. --------------------
    println!("# Figure 11(a) — partitions per node vs number of peers (50,000 placements)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "peers", "mean", "p01", "p99", "max"
    );
    let mut csv_a = CsvTable::new(["peers", "mean", "p01", "p99", "max"]);
    for n_peers in [100usize, 250, 500, 1000, 2500, 5000] {
        let mut net = RangeSelectNetwork::new(n_peers, SystemConfig::default().with_seed(1101));
        populate(&mut net, 10_000, 7);
        let s = summarize(&net);
        println!(
            "{n_peers:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            s.mean, s.p01, s.p99, s.max
        );
        csv_a.push_row([
            n_peers.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.p01),
            fmt_f64(s.p99),
            fmt_f64(s.max),
        ]);
    }
    let path_a = results_path("fig11a_load_vs_peers.csv");
    csv_a.write_to(&path_a).expect("write CSV");

    // ---- Fig 11(b): fixed 1000 peers, vary stored partitions. ------------
    println!("\n# Figure 11(b) — partitions per node in a 1000-node system vs stored partitions");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10}",
        "partitions", "mean", "p01", "p99", "max"
    );
    let mut csv_b = CsvTable::new(["partitions_x1000", "mean", "p01", "p99", "max"]);
    for unique in [7_000usize, 12_000, 18_000, 24_000, 30_000, 36_000] {
        let mut net = RangeSelectNetwork::new(1000, SystemConfig::default().with_seed(1102));
        populate(&mut net, unique, 9);
        let total = net.total_partitions();
        let s = summarize(&net);
        println!(
            "{total:>12} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            s.mean, s.p01, s.p99, s.max
        );
        csv_b.push_row([
            format!("{}", total / 1000),
            fmt_f64(s.mean),
            fmt_f64(s.p01),
            fmt_f64(s.p99),
            fmt_f64(s.max),
        ]);
    }
    let path_b = results_path("fig11b_load_vs_partitions.csv");
    csv_b.write_to(&path_b).expect("write CSV");

    // ---- Ablation: direct identifier placement (no key hashing). ---------
    // Min-hash identifiers concentrate near the low end of the 32-bit
    // space, so placing them directly on the ring collapses the load onto
    // a handful of peers — the reason the system hashes keys before
    // placement (see DESIGN.md / EXPERIMENTS.md).
    println!("\n# Ablation — direct identifier placement, 1000 peers, 50,000 placements");
    let mut net = RangeSelectNetwork::new(
        1000,
        SystemConfig::default()
            .with_placement(Placement::Direct)
            .with_seed(1103),
    );
    populate(&mut net, 10_000, 7);
    let s = summarize(&net);
    println!(
        "{:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}   (uniformized: see Fig 11a row for 1000 peers)",
        1000, s.mean, s.p01, s.p99, s.max
    );
    let mut csv_c = CsvTable::new(["placement", "mean", "p01", "p99", "max"]);
    csv_c.push_row([
        "direct".to_string(),
        fmt_f64(s.mean),
        fmt_f64(s.p01),
        fmt_f64(s.p99),
        fmt_f64(s.max),
    ]);
    let path_c = results_path("fig11_placement_ablation.csv");
    csv_c.write_to(&path_c).expect("write CSV");

    // ---- Extension: virtual nodes (Chord's load-balance refinement). -----
    println!("\n# Extension — virtual nodes per peer (1000 physical peers, 50,000 placements)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12}",
        "vnodes", "mean", "p01", "p99", "p99/mean"
    );
    // The same 50k placement keys the main experiment uses: identifiers of
    // 10k unique ranges × l groups, uniformized.
    let mut grp_rng = DetRng::new(0xF19);
    let groups = HashGroups::generate(LshFamilyKind::ApproxMinWise, 20, 5, &mut grp_rng);
    let mut keys: Vec<Id> = Vec::with_capacity(50_000);
    let mut seen = std::collections::BTreeSet::new();
    let trace = uniform_trace(40_000, 0, 1000, 7);
    for q in trace.queries() {
        if seen.len() >= 10_000 {
            break;
        }
        let k = (q.min_value().unwrap(), q.max_value().unwrap());
        if seen.insert(k) {
            for ident in groups.identifiers(q) {
                keys.push(Id(sha1_u32(&ident.to_be_bytes())));
            }
        }
    }
    let mut csv_d = CsvTable::new(["vnodes", "mean", "p01", "p99", "p99_over_mean"]);
    for v in [1usize, 2, 4, 8, 16] {
        let vr = VirtualRing::from_seed(1000, v, 0xF20);
        let loads = vr.load_of_keys(keys.iter().copied());
        let s = Summary::from_counts(loads);
        println!(
            "{v:>8} {:>10.1} {:>10.1} {:>10.1} {:>12.2}",
            s.mean,
            s.p01,
            s.p99,
            s.p99 / s.mean
        );
        csv_d.push_row([
            v.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.p01),
            fmt_f64(s.p99),
            fmt_f64(s.p99 / s.mean),
        ]);
    }
    let path_d = results_path("fig11_virtual_nodes.csv");
    csv_d.write_to(&path_d).expect("write CSV");
    println!(
        "\nwrote {}, {}, {} and {}",
        path_a.display(),
        path_b.display(),
        path_c.display(),
        path_d.display()
    );
}
