//! Machine-readable min-hash microbenchmark: median ns/op for each hash
//! family × range width × evaluation path, written to `BENCH_minhash.json`
//! at the repo root.
//!
//! Paths compared per family:
//! * `enumerate`   — every value permuted (the paper's Fig. 5 evaluation);
//! * `range_aware` — the default `min_hash` dispatch (greedy bit-descent
//!   for the GRP families, closed-form interval minimum for linear),
//!   including its per-call kernel construction;
//! * `compiled`    — the precompiled evaluator (byte tables + kernel).
//!
//! The headline claim checked by this harness: for width-10⁴ intervals the
//! range-aware paths beat enumeration by ≥50× on the min-wise and approx
//! min-wise families.
//!
//! Usage: `cargo run --release -p ars-bench --bin bench_json`

use ars_common::DetRng;
use ars_lsh::{LshFamilyKind, LshFunction, RangeSet};
use std::time::Instant;

const WIDTHS: [u32; 3] = [100, 1_000, 10_000];
const SAMPLES: usize = 15;

/// Median ns per call of `f`, over [`SAMPLES`] samples with an adaptively
/// calibrated batch size (~1 ms per sample).
fn median_ns(mut f: impl FnMut() -> u32) -> f64 {
    let mut batch: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        if start.elapsed().as_nanos() > 1_000_000 || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Row {
    family: &'static str,
    width: u32,
    path: &'static str,
    ns: f64,
}

fn main() {
    let mut rng = DetRng::new(17);
    let mut rows: Vec<Row> = Vec::new();

    for kind in LshFamilyKind::PAPER_FAMILIES {
        let f = LshFunction::random(kind, &mut rng);
        let compiled = f.compile();
        let family = kind.name();
        for width in WIDTHS {
            let q = RangeSet::interval(5_000, 5_000 + width - 1);
            // Sanity: all three paths agree before being timed.
            let oracle = f.min_hash_enumerate(&q);
            assert_eq!(f.min_hash(&q), oracle, "{family} fast path diverged");
            assert_eq!(compiled.min_hash(&q), oracle, "{family} compiled diverged");
            for (path, ns) in [
                ("enumerate", median_ns(|| f.min_hash_enumerate(&q))),
                ("range_aware", median_ns(|| f.min_hash(&q))),
                ("compiled", median_ns(|| compiled.min_hash(&q))),
            ] {
                println!("{family:<30} width {width:>6}  {path:<12} {ns:>12.1} ns/op");
                rows.push(Row {
                    family,
                    width,
                    path,
                    ns,
                });
            }
        }
    }

    // Headline speedups at the widest setting.
    let ns_of = |family: &str, width: u32, path: &str| {
        rows.iter()
            .find(|r| r.family == family && r.width == width && r.path == path)
            .map(|r| r.ns)
            .expect("row present")
    };
    let mut speedups: Vec<(String, f64, f64)> = Vec::new();
    for kind in [LshFamilyKind::MinWise, LshFamilyKind::ApproxMinWise] {
        let family = kind.name();
        let base = ns_of(family, 10_000, "enumerate");
        let ra = base / ns_of(family, 10_000, "range_aware");
        let co = base / ns_of(family, 10_000, "compiled");
        println!("{family:<30} width  10000  speedup: range_aware {ra:>8.1}x  compiled {co:>8.1}x");
        assert!(
            ra >= 50.0 && co >= 50.0,
            "{family}: expected ≥50x over enumeration at width 10^4, got range_aware {ra:.1}x compiled {co:.1}x"
        );
        speedups.push((family.to_string(), ra, co));
    }

    let mut json = String::from(
        "{\n  \"benchmark\": \"min_hash\",\n  \"unit\": \"ns_per_op\",\n  \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"family\": \"{}\", \"width\": {}, \"path\": \"{}\", \"median_ns\": {:.1}}}{sep}\n",
            r.family, r.width, r.path, r.ns
        ));
    }
    json.push_str("  ],\n  \"speedup_vs_enumerate_at_width_10000\": {\n");
    for (i, (family, ra, co)) in speedups.iter().enumerate() {
        let sep = if i + 1 == speedups.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{family}\": {{\"range_aware\": {ra:.1}, \"compiled\": {co:.1}}}{sep}\n"
        ));
    }
    json.push_str("  }\n}\n");

    let path = ars_bench::experiments::repo_root().join("BENCH_minhash.json");
    std::fs::write(&path, json).expect("write BENCH_minhash.json");
    println!("\nwrote {}", path.display());
}
