//! Figure 12: lookup path lengths.
//!
//! * 12(a): mean and 1st/99th percentile overlay hops per identifier
//!   lookup as the number of peers grows from 100 to 5000 (system storing
//!   50,000 partitions).
//! * 12(b): probability distribution of path length in a 1000-node
//!   network.
//!
//! Usage: `cargo run --release -p ars-bench --bin fig12`

use ars_bench::experiments::results_path;
use ars_common::csv::{fmt_f64, CsvTable};
use ars_common::stats::discrete_pdf;
use ars_common::Summary;
use ars_core::{RangeSelectNetwork, SystemConfig};
use ars_workload::uniform_trace;

/// Populate with 10k unique ranges, then run 2,000 queries and collect
/// every identifier-lookup hop count.
fn hop_samples(n_peers: usize, seed: u64) -> Vec<usize> {
    let mut net = RangeSelectNetwork::new(n_peers, SystemConfig::default().with_seed(seed));
    let store = uniform_trace(10_000, 0, 1000, 7);
    for q in store.queries() {
        net.store_partition(q);
    }
    let queries = uniform_trace(2_000, 0, 1000, 8);
    let outs = net.run_trace(queries.queries());
    outs.into_iter().flat_map(|o| o.hops).collect()
}

fn main() {
    println!("# Figure 12(a) — lookup path length vs number of peers");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>14}",
        "peers", "mean", "p01", "p99", "0.5*log2(N)"
    );
    let mut csv_a = CsvTable::new(["peers", "mean", "p01", "p99", "half_log2_n"]);
    for n_peers in [100usize, 250, 500, 1000, 2500, 5000] {
        let hops = hop_samples(n_peers, 1201);
        let s = Summary::from_counts(hops.iter().copied());
        let expect = 0.5 * (n_peers as f64).log2();
        println!(
            "{n_peers:>8} {:>8.2} {:>8.1} {:>8.1} {expect:>14.2}",
            s.mean, s.p01, s.p99
        );
        csv_a.push_row([
            n_peers.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.p01),
            fmt_f64(s.p99),
            fmt_f64(expect),
        ]);
    }
    let path_a = results_path("fig12a_path_length_vs_peers.csv");
    csv_a.write_to(&path_a).expect("write CSV");

    println!("\n# Figure 12(b) — PDF of path length, 1000-node network");
    println!("{:>6} {:>12}", "hops", "probability");
    let hops = hop_samples(1000, 1202);
    let pdf = discrete_pdf(&hops);
    let mut csv_b = CsvTable::new(["hops", "probability"]);
    for (h, p) in &pdf {
        println!("{h:>6} {p:>12.4}");
        csv_b.push_row([h.to_string(), fmt_f64(*p)]);
    }
    let path_b = results_path("fig12b_path_length_pdf.csv");
    csv_b.write_to(&path_b).expect("write CSV");
    println!("\nwrote {} and {}", path_a.display(), path_b.display());
}
