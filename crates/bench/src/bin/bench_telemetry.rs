//! Telemetry-overhead microbenchmark: the cost a no-op sink adds to the
//! query hot path, written to `BENCH_telemetry.json` at the repo root.
//!
//! The instrumented system makes a handful of telemetry calls *per
//! query* (one counter, a few histogram records, an event or span),
//! while each query computes `k × l` min-hashes. This harness times the
//! per-query identifier computation — the min-hash kernel's hot path —
//! and, separately, the per-query telemetry calls against a no-op sink
//! and (for information only) a recording sink. Timing the dispatch
//! directly instead of subtracting two kernel-scale measurements keeps
//! the comparison out of the noise floor: the quantities differ by
//! three orders of magnitude, and a subtraction of two ~10 µs medians
//! would swing by more than the entire effect being measured.
//!
//! Acceptance, asserted in-binary: the no-op sink's per-query dispatch
//! cost is **< 5%** of the per-query kernel cost for every hash family.
//! A regression here means telemetry dispatch grew from branch-on-None
//! to something that could slow the min-hash hot path.
//!
//! Usage: `cargo run --release -p ars-bench --bin bench_telemetry`

use ars_common::DetRng;
use ars_lsh::{HashGroups, LshFamilyKind, RangeSet};
use ars_telemetry::Telemetry;
use std::time::Instant;

const K: usize = 20;
const L: usize = 5;
const SAMPLES: usize = 15;
const MAX_NOOP_OVERHEAD_PCT: f64 = 5.0;

/// Median ns per call of `f`, over [`SAMPLES`] samples with an adaptively
/// calibrated batch size (~1 ms per sample).
fn median_ns(mut f: impl FnMut() -> u32) -> f64 {
    let mut batch: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        if start.elapsed().as_nanos() > 1_000_000 || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// One query's worth of kernel work: the `l` group identifiers of `q`.
fn identifiers_checksum(groups: &HashGroups, q: &RangeSet) -> u32 {
    groups.identifiers(q).iter().fold(0, |acc, &id| acc ^ id)
}

/// The per-query telemetry calls `finish_query` makes, against `tel`.
fn per_query_telemetry(tel: &Telemetry, checksum: u32) {
    tel.counter_add("core.queries", 1);
    tel.record("core.lookup.hops", u64::from(checksum % 7));
    tel.record("core.bucket.scan_len", u64::from(checksum % 13));
    tel.record("core.query.jaccard", u64::from(checksum % 1000));
}

struct Row {
    family: &'static str,
    path: &'static str,
    ns: f64,
}

fn main() {
    let mut rng = DetRng::new(29);
    let q = RangeSet::interval(5_000, 5_099);
    let mut rows: Vec<Row> = Vec::new();
    let mut overheads: Vec<(&'static str, f64)> = Vec::new();

    for kind in LshFamilyKind::PAPER_FAMILIES {
        let family = kind.name();
        let groups = HashGroups::generate(kind, K, L, &mut rng);
        let noop = Telemetry::noop();
        let recording = Telemetry::recording();

        let base_ns = median_ns(|| identifiers_checksum(&groups, &q));
        let mut i = 0u32;
        let noop_ns = median_ns(|| {
            i = i.wrapping_add(1);
            per_query_telemetry(&noop, i);
            i
        });
        let rec_ns = median_ns(|| {
            i = i.wrapping_add(1);
            per_query_telemetry(&recording, i);
            i
        });
        // Keep the recording sink's state from growing without bound
        // across calibration batches (histograms are fixed-size, but a
        // real sink would also carry events).
        recording.reset();

        let overhead = noop_ns / base_ns * 100.0;
        for (path, ns) in [
            ("kernel_per_query", base_ns),
            ("noop_dispatch", noop_ns),
            ("recording_dispatch", rec_ns),
        ] {
            println!("{family:<30} {path:<19} {ns:>12.1} ns/query");
            rows.push(Row { family, path, ns });
        }
        println!("{family:<30} noop overhead       {overhead:>11.3} %");
        overheads.push((family, overhead));
    }

    for (family, overhead) in &overheads {
        assert!(
            *overhead < MAX_NOOP_OVERHEAD_PCT,
            "{family}: no-op telemetry dispatch is {overhead:.3}% of the \
             query kernel (budget {MAX_NOOP_OVERHEAD_PCT}%)"
        );
    }

    let mut json = String::from(
        "{\n  \"benchmark\": \"telemetry_overhead\",\n  \"unit\": \"ns_per_query\",\n  \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"family\": \"{}\", \"path\": \"{}\", \"median_ns\": {:.1}}}{sep}\n",
            r.family, r.path, r.ns
        ));
    }
    json.push_str("  ],\n  \"noop_overhead_percent\": {\n");
    for (i, (family, overhead)) in overheads.iter().enumerate() {
        let sep = if i + 1 == overheads.len() { "" } else { "," };
        json.push_str(&format!("    \"{family}\": {overhead:.3}{sep}\n"));
    }
    json.push_str(&format!(
        "  }},\n  \"budget_percent\": {MAX_NOOP_OVERHEAD_PCT:.1}\n}}\n"
    ));

    let path = ars_bench::experiments::repo_root().join("BENCH_telemetry.json");
    std::fs::write(&path, json).expect("write BENCH_telemetry.json");
    println!("\nwrote {}", path.display());
}
