//! Benchmark and figure-reproduction harness (see the `src/bin` targets
//! and `benches/`). This library hosts shared experiment plumbing.

pub mod experiments;
