//! The append-only, CRC-checksummed record log.
//!
//! On-disk framing, per record:
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────┐
//! │ len: u32LE │ crc: u32LE │ payload (len B)  │
//! └────────────┴────────────┴──────────────────┘
//! ```
//!
//! `crc` is the CRC-32 of the length field *and* the payload, so a bit
//! flip anywhere in a record — including one that rewrites `len` and
//! would otherwise send the scanner off into the weeds — fails the
//! check. Recovery ([`recover`]) scans from the start and keeps the
//! **longest valid prefix**: it stops at the first record whose header is
//! truncated, whose length overruns the image, or whose checksum
//! mismatches. It never panics, whatever bytes it is handed.
//!
//! Snapshot files use the **lenient** scan ([`recover_lenient`]): a
//! record whose framing is intact but whose checksum fails is *skipped*
//! rather than ending the scan, so a corrupt newest snapshot falls back
//! to the last older one that still checks out.

use crate::crc::crc32;

/// Framing overhead per record (length + checksum).
pub const RECORD_HEADER: usize = 8;

/// Upper bound on a single record's payload; a parsed length above this
/// is treated as corruption, not an allocation request.
pub const MAX_RECORD: usize = 1 << 24;

/// Append one framed record to `out`.
pub fn append_record(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(payload.len() <= MAX_RECORD, "record over MAX_RECORD");
    let len = payload.len() as u32;
    let mut framed = Vec::with_capacity(RECORD_HEADER + payload.len());
    framed.extend_from_slice(&len.to_le_bytes());
    let mut checked = Vec::with_capacity(4 + payload.len());
    checked.extend_from_slice(&len.to_le_bytes());
    checked.extend_from_slice(payload);
    framed.extend_from_slice(&crc32(&checked).to_le_bytes());
    framed.extend_from_slice(payload);
    out.extend_from_slice(&framed);
}

/// Encode one record as a standalone byte vector.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    append_record(&mut out, payload);
    out
}

/// What a recovery scan found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Payloads of every valid record, in log order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of the image covered by valid records.
    pub valid_bytes: usize,
    /// Bytes past the last valid record (torn tail, corruption, junk).
    pub discarded_bytes: usize,
    /// Records with intact framing but a failed checksum that the
    /// lenient scan skipped (always 0 for the strict scan).
    pub corrupt_skipped: usize,
}

impl Recovery {
    /// True if the whole image parsed as valid records.
    pub fn is_clean(&self) -> bool {
        self.discarded_bytes == 0 && self.corrupt_skipped == 0
    }
}

enum ScanStep {
    Valid(usize),   // record end offset
    Corrupt(usize), // framing intact, checksum failed; record end offset
    Torn,           // truncated header/payload or implausible length
}

fn scan_one(image: &[u8], at: usize) -> ScanStep {
    let remaining = image.len() - at;
    if remaining < RECORD_HEADER {
        return ScanStep::Torn;
    }
    let len = u32::from_le_bytes(image[at..at + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(image[at + 4..at + 8].try_into().unwrap());
    if len > MAX_RECORD || len > remaining - RECORD_HEADER {
        return ScanStep::Torn;
    }
    let end = at + RECORD_HEADER + len;
    let mut checked = Vec::with_capacity(4 + len);
    checked.extend_from_slice(&image[at..at + 4]);
    checked.extend_from_slice(&image[at + RECORD_HEADER..end]);
    if crc32(&checked) == crc {
        ScanStep::Valid(end)
    } else {
        ScanStep::Corrupt(end)
    }
}

/// Strict scan: the longest valid prefix of `image` (see module docs).
pub fn recover(image: &[u8]) -> Recovery {
    let mut out = Recovery::default();
    let mut at = 0;
    while at < image.len() {
        match scan_one(image, at) {
            ScanStep::Valid(end) => {
                out.records.push(image[at + RECORD_HEADER..end].to_vec());
                at = end;
            }
            _ => break,
        }
    }
    out.valid_bytes = at;
    out.discarded_bytes = image.len() - at;
    out
}

/// Lenient scan: skip checksum-failed records whose framing is intact,
/// stop only when the framing itself is broken (see module docs).
pub fn recover_lenient(image: &[u8]) -> Recovery {
    let mut out = Recovery::default();
    let mut at = 0;
    let mut covered = 0;
    while at < image.len() {
        match scan_one(image, at) {
            ScanStep::Valid(end) => {
                out.records.push(image[at + RECORD_HEADER..end].to_vec());
                at = end;
                covered = end;
            }
            ScanStep::Corrupt(end) => {
                out.corrupt_skipped += 1;
                at = end;
                covered = end;
            }
            ScanStep::Torn => break,
        }
    }
    out.valid_bytes = covered;
    out.discarded_bytes = image.len() - covered;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            append_record(&mut out, p);
        }
        out
    }

    #[test]
    fn round_trip() {
        let img = image(&[b"alpha", b"", b"gamma-gamma"]);
        let rec = recover(&img);
        assert!(rec.is_clean());
        assert_eq!(
            rec.records,
            vec![b"alpha".to_vec(), vec![], b"gamma-gamma".to_vec()]
        );
        assert_eq!(rec.valid_bytes, img.len());
    }

    #[test]
    fn truncation_at_every_offset_yields_a_valid_prefix() {
        let img = image(&[b"one", b"two-two", b"three"]);
        let full = recover(&img).records;
        for cut in 0..=img.len() {
            let rec = recover(&img[..cut]);
            assert!(rec.records.len() <= full.len());
            assert_eq!(rec.records[..], full[..rec.records.len()], "cut at {cut}");
            assert_eq!(rec.valid_bytes + rec.discarded_bytes, cut);
        }
    }

    #[test]
    fn any_single_bit_flip_never_adds_a_phantom_record() {
        let img = image(&[b"first", b"second"]);
        let full = recover(&img).records;
        for byte in 0..img.len() {
            for bit in 0..8 {
                let mut bad = img.clone();
                bad[byte] ^= 1 << bit;
                let rec = recover(&bad);
                // Every recovered record is one of the originals, in
                // prefix order (a flip can only shorten the valid run).
                assert!(rec.records.len() <= full.len(), "flip {byte}:{bit}");
                assert_eq!(
                    rec.records[..],
                    full[..rec.records.len()],
                    "flip {byte}:{bit}"
                );
            }
        }
    }

    #[test]
    fn lenient_scan_skips_a_corrupt_middle_record() {
        let mut img = image(&[b"good-1", b"doomed", b"good-2"]);
        // Corrupt the middle record's payload (framing intact).
        let first_len = encode_record(b"good-1").len();
        img[first_len + RECORD_HEADER] ^= 0x40;
        let strict = recover(&img);
        assert_eq!(strict.records, vec![b"good-1".to_vec()], "strict stops");
        let lenient = recover_lenient(&img);
        assert_eq!(
            lenient.records,
            vec![b"good-1".to_vec(), b"good-2".to_vec()],
            "lenient skips the corrupt record and continues"
        );
        assert_eq!(lenient.corrupt_skipped, 1);
    }

    #[test]
    fn hostile_garbage_never_panics() {
        let mut junk = Vec::new();
        let mut x: u64 = 0x1234_5678;
        for _ in 0..4096 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            junk.push((x >> 56) as u8);
        }
        let _ = recover(&junk);
        let _ = recover_lenient(&junk);
        // A length field pointing far past the image must not allocate.
        let mut lie = Vec::new();
        lie.extend_from_slice(&u32::MAX.to_le_bytes());
        lie.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(recover(&lie).records.len(), 0);
    }
}
