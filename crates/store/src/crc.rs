//! CRC-32 (IEEE 802.3 polynomial), hand-rolled so the crate stays
//! dependency-free. Table-driven, one byte per step — plenty fast for the
//! simulated-disk volumes this crate handles, and bit-for-bit the
//! standard `crc32` every other tool computes.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (standard init `!0`, final xor `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(!0, data) ^ !0
}

/// Streaming update: feed successive chunks, starting from `!0`, and
/// finish with `^ !0`. [`crc32`] is the one-shot convenience.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = crc32(data);
        let mut state = !0;
        for chunk in data.chunks(7) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ !0, whole);
    }

    #[test]
    fn single_bit_flip_always_detected() {
        let data: Vec<u8> = (0..64u8).collect();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} missed");
            }
        }
    }
}
