//! A peer's durable bucket store: an op log plus snapshot/compaction.
//!
//! [`BucketStore`] persists a set of `(identifier, payload)` entries —
//! the payload is opaque bytes, so this crate needs no knowledge of the
//! range types layered above it — across two [`SimDisk`] files:
//!
//! * the **op log**: one CRC-framed record per [`BucketStore::place`] /
//!   [`BucketStore::evict`], tagged with the store's current snapshot
//!   *generation*;
//! * the **snapshot file**: full-state checkpoints appended by
//!   [`BucketStore::compact`], each carrying the generation it starts.
//!
//! Recovery ([`BucketStore::recover`]) reads the snapshot file with the
//! lenient scan (a corrupt newest checkpoint falls back to the last
//! older valid one — or to the empty state), then replays the strict
//! longest-valid-prefix of the op log, applying only ops whose
//! generation matches the checkpoint actually used; ops written after a
//! checkpoint that could not be read are ignored rather than misapplied
//! to an older base. The result is always a *valid* state — possibly
//! stale (that is what anti-entropy repair is for), never a panic.
//!
//! Durability window: ops reach the volatile write buffer immediately
//! and the durable image every `sync_every` ops (1 = write-through), so
//! a crash loses at most `sync_every - 1` tail ops — fewer if the crash
//! tears, more if it flips a bit inside the last synced record.

use crate::disk::{DiskStats, SimDisk, StorageFaults};
use crate::log::{append_record, recover, recover_lenient};
use std::collections::BTreeSet;

/// Op-record tags.
const TAG_PLACE: u8 = 1;
const TAG_EVICT: u8 = 2;

/// Tuning for a [`BucketStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Crash-fault surface of both backing disks.
    pub faults: StorageFaults,
    /// Sync the op log every this many ops (≥ 1; 1 = write-through).
    pub sync_every: usize,
    /// Compact (checkpoint + truncate the log) every this many ops;
    /// 0 disables automatic compaction.
    pub compact_every: usize,
}

impl Default for StoreConfig {
    /// Write-through on a perfect disk, no automatic compaction.
    fn default() -> StoreConfig {
        StoreConfig {
            faults: StorageFaults::none(),
            sync_every: 1,
            compact_every: 0,
        }
    }
}

impl StoreConfig {
    /// Builder-style: set the fault surface.
    pub fn with_faults(mut self, faults: StorageFaults) -> StoreConfig {
        self.faults = faults;
        self
    }

    /// Builder-style: set the sync interval.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn with_sync_every(mut self, n: usize) -> StoreConfig {
        assert!(n >= 1, "sync interval must be at least 1");
        self.sync_every = n;
        self
    }

    /// Builder-style: set the auto-compaction interval (0 = never).
    pub fn with_compact_every(mut self, n: usize) -> StoreConfig {
        self.compact_every = n;
        self
    }
}

/// One durable entry: an identifier plus an opaque payload.
pub type Entry = (u32, Vec<u8>);

/// What [`BucketStore::recover`] reconstructed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverReport {
    /// Entries in the recovered state, in deterministic (sorted) order.
    pub entries: Vec<Entry>,
    /// Generation of the checkpoint the recovery was based on.
    pub snapshot_gen: u32,
    /// Checkpoints skipped because their checksum failed.
    pub snapshots_skipped: usize,
    /// Log ops applied on top of the checkpoint.
    pub ops_applied: usize,
    /// Log ops skipped for belonging to an unreadable newer generation.
    pub ops_skipped: usize,
    /// Bytes discarded past the valid prefixes of both files (torn
    /// tails, corruption).
    pub discarded_bytes: usize,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
    let v = u32::from_le_bytes(bytes.get(*at..*at + 4)?.try_into().ok()?);
    *at += 4;
    Some(v)
}

fn get_slice<'a>(bytes: &'a [u8], at: &mut usize, len: usize) -> Option<&'a [u8]> {
    let s = bytes.get(*at..*at + len)?;
    *at += len;
    Some(s)
}

fn encode_op(tag: u8, gen: u32, ident: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + payload.len());
    out.push(tag);
    put_u32(&mut out, gen);
    put_u32(&mut out, ident);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    out
}

fn decode_op(bytes: &[u8]) -> Option<(u8, u32, u32, Vec<u8>)> {
    let mut at = 0;
    let tag = *bytes.first()?;
    at += 1;
    let gen = get_u32(bytes, &mut at)?;
    let ident = get_u32(bytes, &mut at)?;
    let len = get_u32(bytes, &mut at)? as usize;
    let payload = get_slice(bytes, &mut at, len)?;
    (at == bytes.len()).then(|| (tag, gen, ident, payload.to_vec()))
}

fn encode_snapshot(gen: u32, entries: &BTreeSet<Entry>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, gen);
    put_u32(&mut out, entries.len() as u32);
    for (ident, payload) in entries {
        put_u32(&mut out, *ident);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(payload);
    }
    out
}

fn decode_snapshot(bytes: &[u8]) -> Option<(u32, BTreeSet<Entry>)> {
    let mut at = 0;
    let gen = get_u32(bytes, &mut at)?;
    let n = get_u32(bytes, &mut at)? as usize;
    let mut entries = BTreeSet::new();
    for _ in 0..n {
        let ident = get_u32(bytes, &mut at)?;
        let len = get_u32(bytes, &mut at)? as usize;
        let payload = get_slice(bytes, &mut at, len)?;
        entries.insert((ident, payload.to_vec()));
    }
    (at == bytes.len()).then_some((gen, entries))
}

/// A peer's durable bucket store (see module docs).
#[derive(Debug, Clone)]
pub struct BucketStore {
    config: StoreConfig,
    log: SimDisk,
    snapshots: SimDisk,
    /// In-memory mirror of the durable state (what a snapshot captures).
    state: BTreeSet<Entry>,
    gen: u32,
    ops_since_sync: usize,
    ops_since_compact: usize,
    /// Op records appended over the store's lifetime.
    records_appended: u64,
    crashed: bool,
}

impl BucketStore {
    /// An empty store; `seed` drives both disks' fault randomness
    /// deterministically (the two disks fork distinct streams).
    pub fn new(config: StoreConfig, seed: u64) -> BucketStore {
        BucketStore {
            log: SimDisk::new(config.faults, seed ^ 0x109),
            snapshots: SimDisk::new(config.faults, seed ^ 0x54a9),
            config,
            state: BTreeSet::new(),
            gen: 0,
            ops_since_sync: 0,
            ops_since_compact: 0,
            records_appended: 0,
            crashed: false,
        }
    }

    fn log_op(&mut self, tag: u8, ident: u32, payload: &[u8]) {
        assert!(!self.crashed, "store used after crash without recover()");
        let op = encode_op(tag, self.gen, ident, payload);
        let mut framed = Vec::new();
        append_record(&mut framed, &op);
        self.log.append(&framed);
        self.records_appended += 1;
        self.ops_since_sync += 1;
        if self.ops_since_sync >= self.config.sync_every {
            self.log.sync();
            self.ops_since_sync = 0;
        }
        self.ops_since_compact += 1;
        if self.config.compact_every > 0 && self.ops_since_compact >= self.config.compact_every {
            self.compact();
        }
    }

    /// Record the placement of `(ident, payload)`. Returns false (and
    /// writes nothing) if the entry is already present.
    pub fn place(&mut self, ident: u32, payload: &[u8]) -> bool {
        if !self.state.insert((ident, payload.to_vec())) {
            return false;
        }
        self.log_op(TAG_PLACE, ident, payload);
        true
    }

    /// Record the eviction of `(ident, payload)`. Returns false (and
    /// writes nothing) if the entry was not present.
    pub fn evict(&mut self, ident: u32, payload: &[u8]) -> bool {
        if !self.state.remove(&(ident, payload.to_vec())) {
            return false;
        }
        self.log_op(TAG_EVICT, ident, payload);
        true
    }

    /// Force-sync the op log (fsync).
    pub fn sync(&mut self) {
        self.log.sync();
        self.ops_since_sync = 0;
    }

    /// Checkpoint the full state into the snapshot file and truncate the
    /// op log. Subsequent ops are tagged with the new generation, so a
    /// recovery that cannot read this checkpoint will not misapply them
    /// to an older base.
    pub fn compact(&mut self) {
        assert!(!self.crashed, "store used after crash without recover()");
        self.gen += 1;
        let mut framed = Vec::new();
        append_record(&mut framed, &encode_snapshot(self.gen, &self.state));
        self.snapshots.append(&framed);
        self.snapshots.sync();
        self.log.replace(Vec::new());
        self.ops_since_sync = 0;
        self.ops_since_compact = 0;
    }

    /// Crash the owning peer: both disks take their crash faults (lost
    /// un-synced suffixes, torn tails, bit flips) and the in-memory state
    /// is gone. Only [`BucketStore::recover`] may be called next.
    pub fn crash(&mut self) {
        self.log.crash();
        self.snapshots.crash();
        self.state.clear();
        self.crashed = true;
    }

    /// Recover from the durable images: latest readable checkpoint plus
    /// the longest valid log prefix (see module docs). Leaves the store
    /// compacted to the recovered state and ready for new ops. Never
    /// panics, whatever the disks contain.
    pub fn recover(&mut self) -> RecoverReport {
        let snap_scan = recover_lenient(self.snapshots.durable_contents());
        let mut snapshots_skipped = snap_scan.corrupt_skipped;
        let mut base_gen = 0u32;
        let mut state = BTreeSet::new();
        // Walk checkpoints newest-first; a checksum-valid record can
        // still be semantically short (e.g. torn mid-entry would fail
        // CRC, but be defensive), so fall back until one decodes.
        for snap in snap_scan.records.iter().rev() {
            match decode_snapshot(snap) {
                Some((gen, entries)) => {
                    base_gen = gen;
                    state = entries;
                    break;
                }
                None => snapshots_skipped += 1,
            }
        }
        let log_scan = recover(self.log.durable_contents());
        let mut ops_applied = 0;
        let mut ops_skipped = 0;
        for record in &log_scan.records {
            match decode_op(record) {
                Some((tag, gen, ident, payload)) if gen == base_gen => {
                    ops_applied += 1;
                    match tag {
                        TAG_PLACE => {
                            state.insert((ident, payload));
                        }
                        TAG_EVICT => {
                            state.remove(&(ident, payload));
                        }
                        _ => ops_skipped += 1,
                    }
                }
                _ => ops_skipped += 1,
            }
        }
        let report = RecoverReport {
            entries: state.iter().cloned().collect(),
            snapshot_gen: base_gen,
            snapshots_skipped,
            ops_applied,
            ops_skipped,
            discarded_bytes: log_scan.discarded_bytes + snap_scan.discarded_bytes,
        };
        // Reset to a clean, compacted image of the recovered state so
        // the store can serve (and crash) again.
        self.state = state;
        self.gen = base_gen + 1;
        let mut framed = Vec::new();
        append_record(&mut framed, &encode_snapshot(self.gen, &self.state));
        self.snapshots.replace(framed);
        self.log.replace(Vec::new());
        self.ops_since_sync = 0;
        self.ops_since_compact = 0;
        self.crashed = false;
        report
    }

    /// Current in-memory entries, in deterministic (sorted) order.
    pub fn entries(&self) -> impl Iterator<Item = &Entry> + '_ {
        self.state.iter()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True if the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Op records appended over the store's lifetime.
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Current snapshot generation.
    pub fn generation(&self) -> u32 {
        self.gen
    }

    /// Bytes in the op log (durable + pending).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Combined disk counters (log + snapshot file).
    pub fn disk_stats(&self) -> DiskStats {
        let (a, b) = (self.log.stats(), self.snapshots.stats());
        DiskStats {
            appended_bytes: a.appended_bytes + b.appended_bytes,
            synced_bytes: a.synced_bytes + b.synced_bytes,
            lost_bytes: a.lost_bytes + b.lost_bytes,
            torn_crashes: a.torn_crashes + b.torn_crashes,
            bit_flips: a.bit_flips + b.bit_flips,
            crashes: a.crashes + b.crashes,
        }
    }

    /// The store's tuning.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(store: &BucketStore) -> Vec<Entry> {
        store.entries().cloned().collect()
    }

    #[test]
    fn place_evict_round_trip_through_crash() {
        let mut s = BucketStore::new(StoreConfig::default(), 1);
        assert!(s.place(7, b"a"));
        assert!(!s.place(7, b"a"), "duplicate place is a no-op");
        assert!(s.place(7, b"b"));
        assert!(s.place(9, b"c"));
        assert!(s.evict(7, b"b"));
        assert!(!s.evict(7, b"zzz"), "evicting a stranger is a no-op");
        let before = entries(&s);
        s.crash();
        let report = s.recover();
        assert_eq!(report.entries, before);
        assert_eq!(entries(&s), before);
        assert_eq!(report.ops_applied, 4, "3 places + 1 evict replayed");
        assert_eq!(report.discarded_bytes, 0);
    }

    #[test]
    fn unsynced_tail_ops_are_lost_but_prefix_survives() {
        let config = StoreConfig::default().with_sync_every(100); // never auto-sync
        let mut s = BucketStore::new(config, 2);
        s.place(1, b"durable");
        s.sync();
        s.place(2, b"doomed-1");
        s.place(3, b"doomed-2");
        s.crash();
        let report = s.recover();
        assert_eq!(report.entries, vec![(1, b"durable".to_vec())]);
    }

    #[test]
    fn compaction_checkpoint_survives_crash() {
        let config = StoreConfig::default().with_compact_every(3);
        let mut s = BucketStore::new(config, 3);
        for i in 0..10u32 {
            s.place(i, &i.to_le_bytes());
        }
        assert!(s.generation() > 0, "auto-compaction ran");
        assert!(s.log_len() < 10 * 30, "log was truncated by compaction");
        let before = entries(&s);
        s.crash();
        assert_eq!(s.recover().entries, before);
    }

    #[test]
    fn recovery_after_recovery_is_stable() {
        let mut s = BucketStore::new(StoreConfig::default(), 4);
        for i in 0..20u32 {
            s.place(i % 5, format!("p{i}").as_bytes());
        }
        s.crash();
        let first = s.recover();
        // Append more after recovery; the log must keep working.
        assert!(s.place(99, b"post-recovery"));
        s.crash();
        let second = s.recover();
        let mut expected = first.entries.clone();
        expected.push((99, b"post-recovery".to_vec()));
        expected.sort();
        assert_eq!(second.entries, expected);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older_one() {
        // Force a bit flip at crash time: the newest checkpoint is the
        // disk tail, so with two checkpoints on file the flip hits the
        // newest and recovery must fall back.
        let faults = StorageFaults::none().with_bit_flip(1.0);
        let config = StoreConfig::default().with_faults(faults);
        let mut s = BucketStore::new(config, 5);
        s.place(1, b"old");
        s.compact(); // checkpoint gen 1: {(1, old)}
        s.place(2, b"new");
        s.compact(); // checkpoint gen 2: {(1, old), (2, new)}
        s.crash(); // flips a bit in the tail = inside checkpoint 2
        let report = s.recover();
        assert_eq!(report.snapshots_skipped, 1, "newest checkpoint corrupt");
        assert_eq!(report.snapshot_gen, 1, "fell back one generation");
        assert_eq!(report.entries, vec![(1, b"old".to_vec())]);
    }

    #[test]
    fn ops_after_unreadable_checkpoint_are_not_misapplied() {
        let faults = StorageFaults::none().with_bit_flip(1.0);
        let config = StoreConfig::default().with_faults(faults);
        let mut s = BucketStore::new(config, 6);
        s.place(1, b"base");
        s.compact(); // gen 1
                     // A payload wider than the crash-time flip window guarantees the
                     // flip lands inside checkpoint 2, not checkpoint 1.
        s.place(2, &[0x55; 100]);
        s.compact(); // gen 2: {(1, base), (2, big)}
        s.place(3, b"gen2-op"); // logged under gen 2
                                // Another wide record so the log disk's own tail flip corrupts
                                // this one, leaving the gen-2 op intact for the scanner.
        s.place(4, &[0x77; 100]);
        s.sync();
        s.crash(); // corrupts checkpoint 2 (disk tail)
        let report = s.recover();
        assert_eq!(report.snapshot_gen, 1);
        assert_eq!(report.ops_skipped, 1, "gen-2 op must not touch gen-1 base");
        assert_eq!(report.entries, vec![(1, b"base".to_vec())]);
    }

    #[test]
    fn crash_restart_is_deterministic_per_seed() {
        let faults = StorageFaults::none()
            .with_torn_write(0.5)
            .with_bit_flip(0.3);
        let config = StoreConfig::default()
            .with_faults(faults)
            .with_sync_every(4);
        let run = |seed| {
            let mut s = BucketStore::new(config, seed);
            let mut history = Vec::new();
            for round in 0..6u32 {
                for i in 0..15u32 {
                    s.place(i, &(round * 100 + i).to_le_bytes());
                }
                s.crash();
                history.push(s.recover());
            }
            history
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    #[should_panic(expected = "after crash")]
    fn use_after_crash_without_recover_is_rejected() {
        let mut s = BucketStore::new(StoreConfig::default(), 7);
        s.crash();
        s.place(1, b"x");
    }
}
