//! A simulated disk with a crash-fault surface.
//!
//! [`SimDisk`] models one append-only file the way a real OS page cache
//! does: [`SimDisk::append`] lands in a volatile write buffer, and only
//! [`SimDisk::sync`] (fsync) moves bytes to the durable image. A
//! [`SimDisk::crash`] then exercises the three storage faults the
//! recovery path must survive, all drawn from a seeded deterministic RNG
//! ([`StorageFaults`] holds the probabilities):
//!
//! * **lost un-synced suffix** — everything appended since the last sync
//!   vanishes (always; that is what "volatile" means);
//! * **torn tail write** — with probability `torn_write_p`, a *prefix* of
//!   the un-synced bytes does survive, modelling a write that was
//!   half-way to the platter when power failed (the dangerous case: the
//!   durable image now ends mid-record);
//! * **tail bit flip** — with probability `bit_flip_p`, one bit within
//!   the final sectors of the durable image flips, modelling a torn or
//!   silently corrupted sector that only a checksum can catch.
//!
//! Every fault is a pure function of `(faults, seed, operation sequence)`
//! so a crash replayed under the same `ARS_FAULT_SEED` is bit-identical.

/// splitmix64 — the crate's only RNG, kept local so `ars-store` stays
/// zero-dependency. Same generator the workspace's `DetRng` builds on.
#[derive(Debug, Clone)]
pub(crate) struct StoreRng(u64);

impl StoreRng {
    pub(crate) fn new(seed: u64) -> StoreRng {
        StoreRng(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli with probability `p`.
    pub(crate) fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// How many trailing durable bytes a crash-time bit flip can land in —
/// the "last sector" of the image.
const FLIP_WINDOW: usize = 64;

/// Probabilities of the crash-time storage faults (see module docs).
/// `default()` is a perfect disk: un-synced data is still lost on crash,
/// but synced bytes survive uncorrupted.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StorageFaults {
    /// Probability that a crash leaves a *partial prefix* of the
    /// un-synced bytes on the durable image (a torn tail write) rather
    /// than discarding them cleanly.
    pub torn_write_p: f64,
    /// Probability that a crash flips one bit in the tail of the durable
    /// image (a corrupted sector).
    pub bit_flip_p: f64,
}

fn check_p(p: f64) {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
}

impl StorageFaults {
    /// A perfect disk (the default).
    pub fn none() -> StorageFaults {
        StorageFaults::default()
    }

    /// Builder-style: set the torn-tail-write probability.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn with_torn_write(mut self, p: f64) -> StorageFaults {
        check_p(p);
        self.torn_write_p = p;
        self
    }

    /// Builder-style: set the crash-time bit-flip probability.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn with_bit_flip(mut self, p: f64) -> StorageFaults {
        check_p(p);
        self.bit_flip_p = p;
        self
    }

    /// True if a crash can never corrupt synced bytes or leave torn ones.
    pub fn is_benign(&self) -> bool {
        self.torn_write_p == 0.0 && self.bit_flip_p == 0.0
    }
}

/// Cumulative fault/traffic counters for one [`SimDisk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Bytes appended to the write buffer.
    pub appended_bytes: u64,
    /// Bytes made durable by `sync` (or surviving a torn crash).
    pub synced_bytes: u64,
    /// Un-synced bytes destroyed by crashes.
    pub lost_bytes: u64,
    /// Crashes that left a torn (partial) tail.
    pub torn_crashes: u64,
    /// Bits flipped in the durable image by crashes.
    pub bit_flips: u64,
    /// Crashes survived.
    pub crashes: u64,
}

/// One simulated append-only file (see module docs).
#[derive(Debug, Clone)]
pub struct SimDisk {
    durable: Vec<u8>,
    pending: Vec<u8>,
    faults: StorageFaults,
    rng: StoreRng,
    stats: DiskStats,
}

impl SimDisk {
    /// An empty disk with the given fault surface, deterministic per
    /// `seed`.
    pub fn new(faults: StorageFaults, seed: u64) -> SimDisk {
        SimDisk {
            durable: Vec::new(),
            pending: Vec::new(),
            faults,
            rng: StoreRng::new(seed),
            stats: DiskStats::default(),
        }
    }

    /// Append bytes to the volatile write buffer.
    pub fn append(&mut self, bytes: &[u8]) {
        self.stats.appended_bytes += bytes.len() as u64;
        self.pending.extend_from_slice(bytes);
    }

    /// Flush the write buffer to the durable image (fsync).
    pub fn sync(&mut self) {
        self.stats.synced_bytes += self.pending.len() as u64;
        self.durable.append(&mut self.pending);
    }

    /// Bytes that would survive a crash right now.
    pub fn durable_len(&self) -> usize {
        self.durable.len()
    }

    /// Bytes appended but not yet synced.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total logical length (durable + pending) — what a reader sees
    /// while the process is up.
    pub fn len(&self) -> usize {
        self.durable.len() + self.pending.len()
    }

    /// True if nothing has ever been written (or everything truncated).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The durable image — what a restart reads.
    pub fn durable_contents(&self) -> &[u8] {
        &self.durable
    }

    /// Atomically replace the file's contents (the simulated equivalent
    /// of write-to-temp + rename, used by compaction). The new contents
    /// are durable immediately.
    pub fn replace(&mut self, contents: Vec<u8>) {
        self.stats.synced_bytes += contents.len() as u64;
        self.pending.clear();
        self.durable = contents;
    }

    /// Fault/traffic counters.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Crash the process holding this disk: apply the fault surface to
    /// the un-synced suffix and (possibly) the durable tail, then drop
    /// the write buffer. The disk afterwards shows the post-restart view.
    pub fn crash(&mut self) {
        self.stats.crashes += 1;
        if !self.pending.is_empty() {
            if self.rng.chance(self.faults.torn_write_p) {
                // A torn tail write: a strict prefix of the pending bytes
                // made it to the platter.
                let kept = self.rng.below(self.pending.len() as u64) as usize;
                self.stats.torn_crashes += 1;
                self.stats.synced_bytes += kept as u64;
                self.stats.lost_bytes += (self.pending.len() - kept) as u64;
                self.durable.extend_from_slice(&self.pending[..kept]);
            } else {
                self.stats.lost_bytes += self.pending.len() as u64;
            }
            self.pending.clear();
        }
        if !self.durable.is_empty() && self.rng.chance(self.faults.bit_flip_p) {
            let window = self.durable.len().min(FLIP_WINDOW);
            let start = self.durable.len() - window;
            let byte = start + self.rng.below(window as u64) as usize;
            let bit = self.rng.below(8) as u8;
            self.durable[byte] ^= 1 << bit;
            self.stats.bit_flips += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_makes_bytes_durable() {
        let mut d = SimDisk::new(StorageFaults::none(), 1);
        d.append(b"hello");
        assert_eq!(d.durable_len(), 0);
        assert_eq!(d.pending_len(), 5);
        d.sync();
        assert_eq!(d.durable_contents(), b"hello");
        assert_eq!(d.pending_len(), 0);
    }

    #[test]
    fn crash_loses_unsynced_suffix_on_perfect_disk() {
        let mut d = SimDisk::new(StorageFaults::none(), 1);
        d.append(b"synced");
        d.sync();
        d.append(b"doomed");
        d.crash();
        assert_eq!(d.durable_contents(), b"synced");
        assert_eq!(d.stats().lost_bytes, 6);
        assert_eq!(d.stats().crashes, 1);
    }

    #[test]
    fn torn_write_keeps_a_strict_prefix() {
        let faults = StorageFaults::none().with_torn_write(1.0);
        let mut d = SimDisk::new(faults, 3);
        d.append(b"base");
        d.sync();
        d.append(b"0123456789");
        d.crash();
        let tail = &d.durable_contents()[4..];
        assert!(tail.len() < 10, "torn write must not keep everything");
        assert_eq!(tail, &b"0123456789"[..tail.len()], "prefix, in order");
        assert_eq!(d.stats().torn_crashes, 1);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit_in_the_tail() {
        let faults = StorageFaults::none().with_bit_flip(1.0);
        let mut d = SimDisk::new(faults, 7);
        let image: Vec<u8> = (0..200u8).cycle().take(500).collect();
        d.append(&image);
        d.sync();
        d.crash();
        let diff: Vec<usize> = (0..500)
            .filter(|&i| d.durable_contents()[i] != image[i])
            .collect();
        assert_eq!(diff.len(), 1, "exactly one corrupted byte");
        assert!(diff[0] >= 500 - FLIP_WINDOW, "flip lands in the tail");
        let delta = d.durable_contents()[diff[0]] ^ image[diff[0]];
        assert_eq!(delta.count_ones(), 1, "exactly one flipped bit");
        assert_eq!(d.stats().bit_flips, 1);
    }

    #[test]
    fn crashes_are_deterministic_per_seed() {
        let faults = StorageFaults::none()
            .with_torn_write(0.7)
            .with_bit_flip(0.5);
        let run = |seed| {
            let mut d = SimDisk::new(faults, seed);
            for i in 0..20u8 {
                d.append(&[i; 33]);
                if i % 3 == 0 {
                    d.sync();
                }
                if i % 5 == 4 {
                    d.crash();
                }
            }
            d.crash();
            d.durable_contents().to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds tear differently");
    }

    #[test]
    fn replace_is_atomic_and_durable() {
        let mut d = SimDisk::new(StorageFaults::none().with_torn_write(1.0), 2);
        d.append(b"old-old-old");
        d.sync();
        d.append(b"pending-junk");
        d.replace(b"fresh".to_vec());
        d.crash();
        assert_eq!(d.durable_contents(), b"fresh");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_probability_rejected() {
        let _ = StorageFaults::none().with_torn_write(2.0);
    }
}
