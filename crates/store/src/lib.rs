//! Durable bucket storage for the `ars` workspace.
//!
//! Zero-dependency crate supplying the persistence layer under
//! `ars_core::ChurnNetwork`'s crash/restart transitions:
//!
//! * [`SimDisk`] — a simulated append-only file with an fsync boundary
//!   and a deterministic crash-fault surface ([`StorageFaults`]): lost
//!   un-synced suffixes, torn tail writes, tail bit flips;
//! * [`log`] — CRC-32-framed records with longest-valid-prefix recovery
//!   (strict) and skip-corrupt scanning (lenient, for snapshot files);
//! * [`BucketStore`] — a peer's `(identifier, payload)` entries persisted
//!   as an op log plus generation-tagged checkpoints, with compaction and
//!   a never-panicking [`BucketStore::recover`].
//!
//! Everything is a pure function of the seed: the same crash schedule
//! under the same `ARS_FAULT_SEED` tears the same bytes, so recovery
//! behavior is replayable bit-for-bit.
//!
//! ```
//! use ars_store::{BucketStore, StoreConfig};
//!
//! let mut store = BucketStore::new(StoreConfig::default(), 42);
//! store.place(7, b"partition-bytes");
//! store.crash();
//! let recovered = store.recover();
//! assert_eq!(recovered.entries, vec![(7, b"partition-bytes".to_vec())]);
//! ```

#![warn(missing_docs)]

pub mod bucket;
pub mod crc;
pub mod disk;
pub mod log;

pub use bucket::{BucketStore, Entry, RecoverReport, StoreConfig};
pub use crc::crc32;
pub use disk::{DiskStats, SimDisk, StorageFaults};
pub use log::{append_record, encode_record, recover, recover_lenient, Recovery};
