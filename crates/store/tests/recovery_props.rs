//! Property tests for log recovery (ISSUE 4, satellite 1).
//!
//! * Truncating a valid log image at **every** byte offset recovers a
//!   valid checksummed prefix of the original records — deterministically
//!   exhaustive, then re-randomized by proptest over record shapes.
//! * Any single-bit flip anywhere in the image never yields a phantom
//!   record: recovery still returns a (possibly shorter) prefix.
//! * Re-appending after recovery yields a log that recovers to the
//!   recovered state plus the new records.
//! * The full [`BucketStore`] round-trips through arbitrary
//!   crash/recover schedules without panicking, and recovered states are
//!   reproducible bit-for-bit per seed.
//!
//! The seed honors `ARS_FAULT_SEED` (default 0), same as the workspace's
//! fault-injection suite, so CI sweeps seeds 0–3 over these properties.

use ars_store::{recover, recover_lenient, BucketStore, StorageFaults, StoreConfig};
use proptest::prelude::*;

fn fault_seed() -> u64 {
    std::env::var("ARS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Build a log image from payloads.
fn image(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in payloads {
        ars_store::append_record(&mut out, p);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncation at every byte offset of a random log image always
    /// recovers a valid prefix of the original record sequence.
    #[test]
    fn truncation_at_every_offset_recovers_a_prefix(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..40), 1..8),
    ) {
        let img = image(&payloads);
        let full = recover(&img);
        prop_assert!(full.is_clean());
        prop_assert_eq!(&full.records, &payloads);
        for cut in 0..=img.len() {
            let rec = recover(&img[..cut]);
            prop_assert!(rec.records.len() <= payloads.len());
            prop_assert_eq!(
                &rec.records[..], &payloads[..rec.records.len()],
                "cut at {} broke the prefix property", cut
            );
            prop_assert_eq!(rec.valid_bytes + rec.discarded_bytes, cut);
        }
    }

    /// Random single-bit flips: recovery never panics, never invents a
    /// record, and always returns a prefix of the original sequence.
    /// The lenient scan may additionally skip the damaged record but
    /// must only ever return original payloads.
    #[test]
    fn single_bit_flips_never_yield_phantom_records(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..32), 1..6),
        flip_pos in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let img = image(&payloads);
        let mut bad = img.clone();
        let byte = (flip_pos ^ fault_seed()) as usize % bad.len();
        bad[byte] ^= 1 << flip_bit;
        let strict = recover(&bad);
        prop_assert!(strict.records.len() <= payloads.len());
        prop_assert_eq!(&strict.records[..], &payloads[..strict.records.len()]);
        let lenient = recover_lenient(&bad);
        for r in &lenient.records {
            prop_assert!(payloads.contains(r), "lenient scan invented a record");
        }
    }

    /// Re-appending after recovery: the surviving prefix plus the new
    /// records is exactly what a second recovery returns.
    #[test]
    fn reappend_after_recovery_recovers_to_the_same_state(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..32), 1..6),
        cut_frac in 0.0f64..1.0,
        extra in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..32), 1..4),
    ) {
        let img = image(&payloads);
        let cut = (img.len() as f64 * cut_frac) as usize;
        let first = recover(&img[..cut]);
        // A real restart would truncate to the valid prefix and keep
        // appending from there.
        let mut resumed = img[..first.valid_bytes].to_vec();
        for p in &extra {
            ars_store::append_record(&mut resumed, p);
        }
        let second = recover(&resumed);
        prop_assert!(second.is_clean());
        let mut expected = first.records.clone();
        expected.extend(extra.iter().cloned());
        prop_assert_eq!(second.records, expected);
    }

    /// BucketStore under arbitrary place/evict/crash schedules with the
    /// full fault surface: recovery never panics, always yields a
    /// subset-consistent state, and replays bit-identically per seed.
    #[test]
    fn bucket_store_survives_arbitrary_crash_schedules(
        ops in prop::collection::vec((0u8..4, 0u32..16, any::<u8>()), 1..40),
        sync_every in 1usize..6,
        compact_every in 0usize..8,
        seed in 0u64..1_000,
    ) {
        let config = StoreConfig::default()
            .with_faults(StorageFaults::none().with_torn_write(0.5).with_bit_flip(0.3))
            .with_sync_every(sync_every)
            .with_compact_every(compact_every);
        let run = || {
            let mut store = BucketStore::new(config, seed ^ (fault_seed() << 32));
            let mut reports = Vec::new();
            for &(op, ident, byte) in &ops {
                match op {
                    0 | 1 => {
                        store.place(ident, &[byte, op]);
                    }
                    2 => {
                        store.evict(ident, &[byte, 0]);
                    }
                    _ => {
                        store.crash();
                        reports.push(store.recover());
                    }
                }
            }
            store.crash();
            reports.push(store.recover());
            reports
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b, "crash-recovery must replay bit-identically");
        // Each recovered state only ever contains entries we placed.
        for report in &a {
            for (ident, payload) in &report.entries {
                prop_assert!(*ident < 16);
                prop_assert_eq!(payload.len(), 2);
            }
        }
    }
}
