//! Aggregating query outcomes into the paper's figure series.

use crate::network::QueryOutcome;
use ars_common::stats::{pct_at_least, Histogram};

/// Recall thresholds used for the Figs. 8–10 curves (x-axis points from
/// 1.0 down to 0.0 as the paper draws them).
pub const RECALL_THRESHOLDS: [f64; 11] = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0];

/// The Figs. 6–7 series: a 10-bin histogram over `[0, 1]` of the Jaccard
/// similarity of each query's matched partition, as *percentages of
/// queries*. Queries with no match land in the first bin (similarity 0),
/// as in the paper's plots.
pub fn similarity_histogram(outcomes: &[QueryOutcome]) -> Histogram {
    let mut h = Histogram::new(0.0, 1.0, 10);
    for o in outcomes {
        h.record(o.similarity);
    }
    h
}

/// The Figs. 8–10 series: for each threshold `t` in
/// [`RECALL_THRESHOLDS`], the percentage of queries whose recall is ≥ `t`
/// ("percentage of queries answered up to a given portion").
pub fn recall_curve(outcomes: &[QueryOutcome]) -> Vec<(f64, f64)> {
    let recalls: Vec<f64> = outcomes.iter().map(|o| o.recall).collect();
    let pct = pct_at_least(&recalls, &RECALL_THRESHOLDS);
    RECALL_THRESHOLDS.iter().copied().zip(pct).collect()
}

/// Percentage of queries answered completely (recall = 1): the headline
/// number the paper quotes per configuration (≈30% min-wise, ≈35% approx,
/// ≈50% linear, ≈60% containment, ≈70% padded).
pub fn pct_fully_answered(outcomes: &[QueryOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    let n = outcomes.iter().filter(|o| o.recall >= 1.0).count();
    100.0 * n as f64 / outcomes.len() as f64
}

/// Mean recall across queries.
pub fn mean_recall(outcomes: &[QueryOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().map(|o| o.recall).sum::<f64>() / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_lsh::RangeSet;

    fn outcome(similarity: f64, recall: f64) -> QueryOutcome {
        QueryOutcome {
            query: RangeSet::interval(0, 1),
            best_match: if similarity > 0.0 {
                Some(RangeSet::interval(0, 1))
            } else {
                None
            },
            similarity,
            recall,
            exact: false,
            stored: false,
            hops: vec![],
            identifiers: vec![],
            peers_contacted: 0,
            attempts: 0,
            fell_back_to_source: false,
            partition_degraded: false,
        }
    }

    #[test]
    fn histogram_buckets_similarities() {
        let outs = vec![
            outcome(0.0, 0.0),
            outcome(0.95, 1.0),
            outcome(0.92, 0.9),
            outcome(0.45, 0.5),
        ];
        let h = similarity_histogram(&outs);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[9], 2); // two in [0.9, 1.0]
        assert_eq!(h.counts()[4], 1); // one in [0.4, 0.5)
        assert_eq!(h.counts()[0], 1); // the unmatched query
    }

    #[test]
    fn recall_curve_monotone_nonincreasing_in_threshold() {
        let outs: Vec<QueryOutcome> = (0..=10).map(|i| outcome(0.5, i as f64 / 10.0)).collect();
        let curve = recall_curve(&outs);
        assert_eq!(curve.len(), RECALL_THRESHOLDS.len());
        // Thresholds descend 1.0 → 0.0, so percentages ascend.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        // Everything has recall ≥ 0.
        assert_eq!(curve.last().unwrap().1, 100.0);
        // Exactly one of 11 has recall ≥ 1.0.
        assert!((curve[0].1 - 100.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn fully_answered_percentage() {
        let outs = vec![outcome(1.0, 1.0), outcome(0.5, 0.5), outcome(0.0, 0.0)];
        assert!((pct_fully_answered(&outs) - 100.0 / 3.0).abs() < 1e-9);
        assert_eq!(pct_fully_answered(&[]), 0.0);
    }

    #[test]
    fn mean_recall_basic() {
        let outs = vec![outcome(1.0, 1.0), outcome(0.0, 0.0)];
        assert!((mean_recall(&outs) - 0.5).abs() < 1e-12);
        assert_eq!(mean_recall(&[]), 0.0);
    }
}
