//! Hash buckets: the per-identifier partition lists peers keep.
//!
//! "Each contacted peer checks the list of partitions that it has
//! associated with the identifier and finds the best match for the query
//! partition in the list" (§4). A [`Bucket`] is that list; best-match
//! search supports both measures of §5.2.

use crate::config::MatchMeasure;
use ars_lsh::RangeSet;

/// The stored partitions of one identifier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bucket {
    ranges: Vec<RangeSet>,
}

/// A candidate match found in a bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// The stored partition's range.
    pub range: RangeSet,
    /// Score under the configured measure (1.0 = perfect).
    pub score: f64,
}

impl Bucket {
    /// An empty bucket.
    pub fn new() -> Bucket {
        Bucket::default()
    }

    /// Insert a partition range. Duplicate ranges are kept once.
    /// Returns true if the range was newly inserted.
    pub fn insert(&mut self, range: RangeSet) -> bool {
        if self.ranges.contains(&range) {
            return false;
        }
        self.ranges.push(range);
        true
    }

    /// Stored ranges, in insertion order.
    pub fn ranges(&self) -> &[RangeSet] {
        &self.ranges
    }

    /// Number of stored partitions.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True if the bucket holds nothing.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Best match for `query` under `measure`, or `None` when the bucket is
    /// empty. Ties keep the earliest-stored partition (deterministic).
    pub fn best_match(&self, query: &RangeSet, measure: MatchMeasure) -> Option<Match> {
        best_of(self.ranges.iter(), query, measure)
    }

    /// True if the bucket holds this exact range.
    pub fn contains(&self, range: &RangeSet) -> bool {
        self.ranges.contains(range)
    }

    /// Remove this exact range. Returns true if it was present — the
    /// key-migration and durable-eviction paths need removal to be
    /// observable so logs and ledgers stay exact.
    pub fn remove(&mut self, range: &RangeSet) -> bool {
        match self.ranges.iter().position(|r| r == range) {
            Some(at) => {
                self.ranges.remove(at);
                true
            }
            None => false,
        }
    }
}

/// Score one candidate under a measure.
pub fn score(query: &RangeSet, candidate: &RangeSet, measure: MatchMeasure) -> f64 {
    match measure {
        MatchMeasure::Jaccard => query.jaccard(candidate),
        MatchMeasure::Containment => query.containment_in(candidate),
    }
}

/// Best-scoring candidate from an iterator (first wins ties).
pub fn best_of<'a, I: Iterator<Item = &'a RangeSet>>(
    candidates: I,
    query: &RangeSet,
    measure: MatchMeasure,
) -> Option<Match> {
    let mut best: Option<Match> = None;
    for r in candidates {
        let s = score(query, r, measure);
        let better = match &best {
            None => true,
            Some(b) => s > b.score,
        };
        if better {
            best = Some(Match {
                range: r.clone(),
                score: s,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: u32, hi: u32) -> RangeSet {
        RangeSet::interval(lo, hi)
    }

    #[test]
    fn insert_dedups() {
        let mut b = Bucket::new();
        assert!(b.insert(r(0, 10)));
        assert!(!b.insert(r(0, 10)));
        assert!(b.insert(r(0, 11)));
        assert_eq!(b.len(), 2);
        assert!(b.contains(&r(0, 10)));
        assert!(!b.contains(&r(0, 12)));
    }

    #[test]
    fn empty_bucket_no_match() {
        let b = Bucket::new();
        assert!(b.best_match(&r(0, 5), MatchMeasure::Jaccard).is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn best_match_jaccard_picks_highest_overlap() {
        let mut b = Bucket::new();
        b.insert(r(0, 100)); // J with [40,60] = 21/101
        b.insert(r(35, 65)); // J = 21/31
        b.insert(r(200, 300)); // J = 0
        let m = b.best_match(&r(40, 60), MatchMeasure::Jaccard).unwrap();
        assert_eq!(m.range, r(35, 65));
        assert!((m.score - 21.0 / 31.0).abs() < 1e-12);
    }

    #[test]
    fn measures_can_disagree() {
        // Containment prefers the broad superset; Jaccard the tight overlap.
        let q = r(40, 60);
        let broad = r(0, 1000); // containment 1.0, jaccard 21/1001
        let tight = r(45, 60); // containment 16/21, jaccard 16/21
        let mut b = Bucket::new();
        b.insert(broad.clone());
        b.insert(tight.clone());
        assert_eq!(
            b.best_match(&q, MatchMeasure::Containment).unwrap().range,
            broad
        );
        assert_eq!(
            b.best_match(&q, MatchMeasure::Jaccard).unwrap().range,
            tight
        );
    }

    #[test]
    fn exact_match_scores_one() {
        let mut b = Bucket::new();
        b.insert(r(30, 50));
        for m in [MatchMeasure::Jaccard, MatchMeasure::Containment] {
            let got = b.best_match(&r(30, 50), m).unwrap();
            assert_eq!(got.score, 1.0);
            assert_eq!(got.range, r(30, 50));
        }
    }

    #[test]
    fn ties_keep_first_inserted() {
        let q = r(10, 19);
        let left = r(0, 14); // overlap 5, union 20 → J = 0.25
        let right = r(15, 29); // overlap 5, union 20 → J = 0.25
        let mut b = Bucket::new();
        b.insert(left.clone());
        b.insert(right);
        assert_eq!(b.best_match(&q, MatchMeasure::Jaccard).unwrap().range, left);
    }

    #[test]
    fn score_function_direct() {
        assert_eq!(score(&r(0, 9), &r(0, 9), MatchMeasure::Jaccard), 1.0);
        assert_eq!(score(&r(0, 9), &r(100, 109), MatchMeasure::Jaccard), 0.0);
        assert_eq!(score(&r(0, 9), &r(0, 99), MatchMeasure::Containment), 1.0);
    }
}
