//! Durable bucket storage wiring: configuration and the on-disk codec.
//!
//! [`crate::ChurnNetwork`] can persist every peer's cached partitions to an
//! [`ars_store::BucketStore`] — an append-only CRC-framed op log plus
//! generation-tagged checkpoints over a simulated disk. This module holds
//! the glue that keeps `ars-store` payload-agnostic:
//!
//! * [`DurabilityConfig`] — per-system knobs (fault surface, sync cadence,
//!   compaction cadence) plus the per-peer seed derivation, configured via
//!   [`crate::SystemConfig::with_durability`];
//! * [`encode_range`] / [`decode_range`] — the byte codec for
//!   [`RangeSet`] payloads (interval list, little-endian u32 pairs),
//!   decoded defensively so a corrupt payload that slipped past the log
//!   CRC degrades to a dropped entry, never a panic;
//! * [`digest_bytes`] — the FNV-1a hash under the anti-entropy digests
//!   (hand-rolled so digests are stable across platforms and reruns).
//!
//! The storage fault surface is declared on the same [`FaultPlan`] that
//! drives the transport injector (`torn_write_p`, `bit_flip_p`); use
//! [`DurabilityConfig::from_fault_plan`] to carry it over, keeping one
//! seed-addressed fault vocabulary across the workspace.

use ars_lsh::RangeSet;
use ars_simnet::FaultPlan;
use ars_store::{StorageFaults, StoreConfig};

/// Durability knobs for a [`crate::ChurnNetwork`].
///
/// `None` in [`crate::SystemConfig::durability`] (the default) keeps the
/// paper's purely soft-state behavior: crashes lose everything and queries
/// rebuild the cache. `Some` gives every peer a [`ars_store::BucketStore`]
/// whose disks tear and flip bits per the configured fault surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityConfig {
    /// Crash-fault surface of every peer's simulated disks.
    pub faults: StorageFaults,
    /// Sync the op log every this many ops (≥ 1; 1 = write-through).
    pub sync_every: usize,
    /// Checkpoint + truncate the log every this many ops; 0 disables
    /// automatic compaction.
    pub compact_every: usize,
}

impl Default for DurabilityConfig {
    /// Write-through on a perfect disk, no automatic compaction.
    fn default() -> DurabilityConfig {
        DurabilityConfig {
            faults: StorageFaults::none(),
            sync_every: 1,
            compact_every: 0,
        }
    }
}

impl DurabilityConfig {
    /// Durable storage on perfect disks (crashes lose nothing synced).
    pub fn new() -> DurabilityConfig {
        DurabilityConfig::default()
    }

    /// Builder-style: set the storage fault surface.
    pub fn with_faults(mut self, faults: StorageFaults) -> DurabilityConfig {
        self.faults = faults;
        self
    }

    /// Builder-style: sync cadence.
    ///
    /// # Panics
    /// Panics if `every` is zero.
    pub fn with_sync_every(mut self, every: usize) -> DurabilityConfig {
        assert!(every >= 1, "sync cadence must be at least 1");
        self.sync_every = every;
        self
    }

    /// Builder-style: compaction cadence (0 disables).
    pub fn with_compact_every(mut self, every: usize) -> DurabilityConfig {
        self.compact_every = every;
        self
    }

    /// Adopt the storage fault surface declared on a [`FaultPlan`]
    /// (`torn_write_p`, `bit_flip_p`), keeping the transport and storage
    /// fault vocabularies on one seed-addressed plan.
    pub fn from_fault_plan(plan: &FaultPlan) -> DurabilityConfig {
        DurabilityConfig::default().with_faults(
            StorageFaults::none()
                .with_torn_write(plan.torn_write_p)
                .with_bit_flip(plan.bit_flip_p),
        )
    }

    /// The [`StoreConfig`] for one peer's [`ars_store::BucketStore`].
    pub fn store_config(&self) -> StoreConfig {
        StoreConfig::default()
            .with_faults(self.faults)
            .with_sync_every(self.sync_every)
            .with_compact_every(self.compact_every)
    }

    /// Per-peer disk seed: splitmix-style spread of the peer id over the
    /// system seed, so every peer tears different bytes while the whole
    /// fleet stays a pure function of `(system seed, peer id)`.
    pub fn seed_for(&self, system_seed: u64, peer: u32) -> u64 {
        system_seed ^ (peer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD757_AB1E
    }
}

/// Encode a [`RangeSet`] as a durable payload: `n` (u32 LE) followed by
/// `n` `(lo, hi)` u32 LE pairs, in the set's normalized interval order.
/// Deterministic — equal sets encode to equal bytes, which is what the
/// anti-entropy digests rely on.
pub fn encode_range(range: &RangeSet) -> Vec<u8> {
    let intervals = range.intervals();
    let mut out = Vec::with_capacity(4 + intervals.len() * 8);
    out.extend_from_slice(&(intervals.len() as u32).to_le_bytes());
    for &(lo, hi) in intervals {
        out.extend_from_slice(&lo.to_le_bytes());
        out.extend_from_slice(&hi.to_le_bytes());
    }
    out
}

/// Decode a payload written by [`encode_range`]. Returns `None` for any
/// malformed input — wrong length, inverted interval, trailing bytes —
/// so recovery can drop a damaged entry instead of panicking.
pub fn decode_range(bytes: &[u8]) -> Option<RangeSet> {
    if bytes.len() < 4 {
        return None;
    }
    let n = u32::from_le_bytes(bytes[..4].try_into().ok()?) as usize;
    if bytes.len() != 4 + n.checked_mul(8)? {
        return None;
    }
    let mut intervals = Vec::with_capacity(n);
    for i in 0..n {
        let at = 4 + i * 8;
        let lo = u32::from_le_bytes(bytes[at..at + 4].try_into().ok()?);
        let hi = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().ok()?);
        if lo > hi {
            return None;
        }
        intervals.push((lo, hi));
    }
    Some(RangeSet::from_intervals(intervals))
}

/// FNV-1a over a byte string — the hash under the per-bucket anti-entropy
/// digests. Hand-rolled (not `std`'s hasher) so digest values are stable
/// across platforms, toolchains, and reruns: repair traces must be
/// byte-identical per seed.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: u32, hi: u32) -> RangeSet {
        RangeSet::interval(lo, hi)
    }

    #[test]
    fn range_round_trips_through_the_codec() {
        for set in [
            r(0, 0),
            r(30, 50),
            RangeSet::from_intervals([(1, 5), (10, 20), (100, u32::MAX)]),
        ] {
            assert_eq!(decode_range(&encode_range(&set)), Some(set));
        }
    }

    #[test]
    fn malformed_payloads_decode_to_none() {
        assert_eq!(decode_range(&[]), None);
        assert_eq!(decode_range(&[1, 0, 0]), None, "short header");
        assert_eq!(decode_range(&1u32.to_le_bytes()), None, "missing body");
        // Inverted interval.
        let mut bad = encode_range(&r(10, 20));
        bad[4..8].copy_from_slice(&30u32.to_le_bytes());
        assert_eq!(decode_range(&bad), None);
        // Trailing garbage.
        let mut long = encode_range(&r(10, 20));
        long.push(0);
        assert_eq!(decode_range(&long), None);
        // Length field claiming more than the buffer holds.
        assert_eq!(decode_range(&u32::MAX.to_le_bytes()), None);
    }

    #[test]
    fn equal_sets_encode_identically() {
        let a = RangeSet::from_intervals([(5, 10), (12, 20)]);
        let b = RangeSet::from_intervals([(12, 20), (5, 10)]);
        assert_eq!(encode_range(&a), encode_range(&b));
        assert_eq!(
            digest_bytes(&encode_range(&a)),
            digest_bytes(&encode_range(&b))
        );
    }

    #[test]
    fn digest_is_the_reference_fnv1a() {
        // FNV-1a test vectors.
        assert_eq!(digest_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fault_plan_surface_carries_over() {
        let plan = FaultPlan::default().with_storage_faults(0.25, 0.05);
        let d = DurabilityConfig::from_fault_plan(&plan);
        assert_eq!(
            d.faults,
            StorageFaults::none()
                .with_torn_write(0.25)
                .with_bit_flip(0.05)
        );
        assert_eq!(d.sync_every, 1);
    }

    #[test]
    fn per_peer_seeds_differ() {
        let d = DurabilityConfig::default();
        assert_ne!(d.seed_for(7, 1), d.seed_for(7, 2));
        assert_eq!(d.seed_for(7, 1), d.seed_for(7, 1));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_sync_cadence_rejected() {
        DurabilityConfig::default().with_sync_every(0);
    }
}
