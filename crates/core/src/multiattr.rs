//! Multi-attribute range selections — the paper's first future-work item
//! (§6: "the problem of locating horizontal partitions obtained by
//! multiattribute selections").
//!
//! A multi-attribute partition is the set of tuples satisfying a
//! *conjunction* of ranges, one per attribute — as a set, the Cartesian
//! product of the per-attribute value ranges. That product structure
//! gives closed forms for both similarity measures:
//!
//! * `|Q ∩ R| = Π_i |Q_i ∩ R_i|` and `|Q| = Π_i |Q_i|`, so Jaccard and
//!   containment extend directly;
//! * a natural LSH: hash each attribute's range with its own `l × k`
//!   groups and XOR the per-attribute group identifiers — two
//!   multi-ranges share a group identifier when **all** attributes'
//!   identifiers agree, i.e. with probability `≈ Π_i p_iᵏ`, amplified to
//!   `1 − (1 − Π p_iᵏ)ˡ` over `l` groups. Setting one attribute reduces
//!   exactly to the paper's single-attribute scheme.

use crate::config::{MatchMeasure, Placement, SystemConfig};
use ars_chord::{Id, Ring};
use ars_common::{DetRng, FxHashMap};
use ars_lsh::{HashGroups, RangeSet};
use std::collections::BTreeMap;
use std::fmt;

/// A conjunction of ranges over named attributes (all must hold).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MultiRange {
    by_attr: BTreeMap<String, RangeSet>,
}

impl fmt::Display for MultiRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (a, r) in &self.by_attr {
            if !first {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a} ∈ {r}")?;
            first = false;
        }
        Ok(())
    }
}

impl MultiRange {
    /// Build from attribute/range pairs.
    ///
    /// # Panics
    /// Panics on an empty conjunction, a duplicate attribute, or an empty
    /// range.
    pub fn new<S: Into<String>, I: IntoIterator<Item = (S, RangeSet)>>(parts: I) -> MultiRange {
        let mut by_attr = BTreeMap::new();
        for (attr, range) in parts {
            let attr = attr.into();
            assert!(!range.is_empty(), "empty range for attribute {attr}");
            assert!(
                by_attr.insert(attr.clone(), range).is_none(),
                "duplicate attribute {attr}"
            );
        }
        assert!(
            !by_attr.is_empty(),
            "a MultiRange needs at least one attribute"
        );
        MultiRange { by_attr }
    }

    /// The attribute names, sorted.
    pub fn attrs(&self) -> impl Iterator<Item = &str> {
        self.by_attr.keys().map(String::as_str)
    }

    /// The range for one attribute.
    pub fn range(&self, attr: &str) -> Option<&RangeSet> {
        self.by_attr.get(attr)
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.by_attr.len()
    }

    /// Cardinality of the product set `Π |R_i|`.
    pub fn len(&self) -> u128 {
        self.by_attr.values().map(|r| r.len() as u128).product()
    }

    /// True if (impossible by construction) any side is empty.
    pub fn is_empty(&self) -> bool {
        self.by_attr.values().any(RangeSet::is_empty)
    }

    /// `|self ∩ other|` as product sets. Zero when the attribute sets
    /// differ (conjunctions over different attributes describe fragments
    /// of different shapes and cannot answer each other).
    pub fn intersection_len(&self, other: &MultiRange) -> u128 {
        if self.by_attr.len() != other.by_attr.len() {
            return 0;
        }
        let mut product: u128 = 1;
        for (attr, r) in &self.by_attr {
            match other.by_attr.get(attr) {
                Some(o) => product *= r.intersection_len(o) as u128,
                None => return 0,
            }
            if product == 0 {
                return 0;
            }
        }
        product
    }

    /// Jaccard similarity of the product sets.
    pub fn jaccard(&self, other: &MultiRange) -> f64 {
        let inter = self.intersection_len(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            return 1.0;
        }
        inter as f64 / union as f64
    }

    /// Containment `|Q ∩ R| / |Q|`.
    pub fn containment_in(&self, other: &MultiRange) -> f64 {
        let q = self.len();
        if q == 0 {
            return 1.0;
        }
        self.intersection_len(other) as f64 / q as f64
    }
}

/// Per-attribute hash groups with aligned `l`, combined by XOR.
#[derive(Debug, Clone)]
pub struct MultiAttrGroups {
    per_attr: BTreeMap<String, HashGroups>,
    l: usize,
}

impl MultiAttrGroups {
    /// Generate groups for a set of attributes (all sharing `kind`, `k`,
    /// `l`, but with independent functions per attribute).
    ///
    /// # Panics
    /// Panics if `attrs` is empty.
    pub fn generate<S: Into<String>, I: IntoIterator<Item = S>>(
        attrs: I,
        config: &SystemConfig,
        rng: &mut DetRng,
    ) -> MultiAttrGroups {
        let per_attr: BTreeMap<String, HashGroups> = attrs
            .into_iter()
            .map(|a| {
                (
                    a.into(),
                    HashGroups::generate(config.family, config.k, config.l, rng),
                )
            })
            .collect();
        assert!(!per_attr.is_empty(), "need at least one attribute");
        MultiAttrGroups {
            per_attr,
            l: config.l,
        }
    }

    /// The `l` combined identifiers of a multi-range: XOR across
    /// attributes of the per-attribute group identifiers.
    ///
    /// # Panics
    /// Panics if the multi-range references an attribute without groups.
    pub fn identifiers(&self, mr: &MultiRange) -> Vec<u32> {
        let mut combined = vec![0u32; self.l];
        for attr in mr.attrs() {
            let groups = self
                .per_attr
                .get(attr)
                .unwrap_or_else(|| panic!("no hash groups for attribute {attr}"));
            let ids = groups.identifiers(mr.range(attr).expect("attr present"));
            for (c, id) in combined.iter_mut().zip(ids) {
                *c ^= id;
            }
        }
        // Mix in the attribute *names* so conjunctions over different
        // attribute sets never share buckets by accident.
        let mut tag: u32 = 0x811C_9DC5;
        for attr in mr.attrs() {
            for b in attr.bytes() {
                tag = (tag ^ b as u32).wrapping_mul(0x0100_0193);
            }
        }
        for c in &mut combined {
            *c ^= tag;
        }
        combined
    }
}

/// Outcome of a multi-attribute query.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiQueryOutcome {
    /// The query.
    pub query: MultiRange,
    /// Best-matching cached multi-range partition.
    pub best_match: Option<MultiRange>,
    /// Product-set Jaccard similarity with the match.
    pub similarity: f64,
    /// Product-set containment of the query in the match.
    pub recall: f64,
    /// True when the match equals the query exactly.
    pub exact: bool,
    /// Per-identifier lookup hops.
    pub hops: Vec<usize>,
}

/// The paper's system generalized to multi-attribute partitions.
pub struct MultiAttrNetwork {
    config: SystemConfig,
    ring: Ring,
    groups: MultiAttrGroups,
    /// identifier → cached multi-range partitions (the buckets; ownership
    /// of an identifier follows the ring exactly as in the base system).
    cache: FxHashMap<u32, Vec<MultiRange>>,
    rng: DetRng,
}

impl MultiAttrNetwork {
    /// Build over `n_peers` with groups for the given attributes.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(
        n_peers: usize,
        attrs: I,
        config: SystemConfig,
    ) -> MultiAttrNetwork {
        let mut rng = DetRng::new(config.seed);
        let mut group_rng = rng.fork();
        let ring_seed = rng.next_u64();
        let ring = Ring::from_seed(n_peers, ring_seed);
        let groups = MultiAttrGroups::generate(attrs, &config, &mut group_rng);
        MultiAttrNetwork {
            config,
            ring,
            groups,
            cache: FxHashMap::default(),
            rng,
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total cached (identifier, multi-range) entries.
    pub fn total_partitions(&self) -> usize {
        self.cache.values().map(Vec::len).sum()
    }

    fn place(&self, identifier: u32) -> Id {
        match self.config.placement {
            Placement::Uniformized => Id(ars_chord::sha1::sha1_u32(&identifier.to_be_bytes())),
            Placement::Direct => Id(identifier),
        }
    }

    /// Execute the generalized §4 procedure for a multi-range.
    pub fn query(&mut self, q: &MultiRange) -> MultiQueryOutcome {
        let identifiers = self.groups.identifiers(q);
        let origin = {
            let ids = self.ring.node_ids();
            ids[self.rng.gen_index(ids.len())]
        };
        let mut hops = Vec::with_capacity(identifiers.len());
        let mut best: Option<(MultiRange, f64)> = None;
        for &ident in &identifiers {
            let (_owner, h) = self.ring.lookup(origin, self.place(ident));
            hops.push(h);
            if let Some(bucket) = self.cache.get(&ident) {
                for candidate in bucket {
                    let score = match self.config.matching {
                        MatchMeasure::Jaccard => q.jaccard(candidate),
                        MatchMeasure::Containment => q.containment_in(candidate),
                    };
                    let better = match &best {
                        None => true,
                        Some((_, b)) => score > *b,
                    };
                    if better {
                        best = Some((candidate.clone(), score));
                    }
                }
            }
        }
        let exact = best.as_ref().map(|(m, _)| m == q).unwrap_or(false);
        if self.config.cache_on_miss && !exact {
            for &ident in &identifiers {
                let bucket = self.cache.entry(ident).or_default();
                if !bucket.contains(q) {
                    bucket.push(q.clone());
                }
            }
        }
        let (similarity, recall, best_match) = match &best {
            Some((m, _)) => (q.jaccard(m), q.containment_in(m), Some(m.clone())),
            None => (0.0, 0.0, None),
        };
        MultiQueryOutcome {
            query: q.clone(),
            best_match,
            similarity,
            recall,
            exact,
            hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mr(age: (u32, u32), date: (u32, u32)) -> MultiRange {
        MultiRange::new([
            ("age", RangeSet::interval(age.0, age.1)),
            ("date", RangeSet::interval(date.0, date.1)),
        ])
    }

    #[test]
    fn product_set_cardinalities() {
        let a = mr((0, 9), (0, 4)); // 10 × 5 = 50
        assert_eq!(a.len(), 50);
        let b = mr((5, 14), (0, 4)); // overlap ages 5..=9 → 5 × 5 = 25
        assert_eq!(a.intersection_len(&b), 25);
        // Jaccard = 25 / (50 + 50 − 25) = 1/3.
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-12);
        // Containment = 25/50.
        assert!((a.containment_in(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn brute_force_product_set_agreement() {
        // Check the closed forms against explicit tuple enumeration.
        let a = mr((2, 6), (10, 13));
        let b = mr((4, 9), (12, 20));
        let tuples = |m: &MultiRange| {
            let mut out = std::collections::HashSet::new();
            for x in m.range("age").unwrap().iter() {
                for y in m.range("date").unwrap().iter() {
                    out.insert((x, y));
                }
            }
            out
        };
        let ta = tuples(&a);
        let tb = tuples(&b);
        assert_eq!(a.len(), ta.len() as u128);
        assert_eq!(a.intersection_len(&b), ta.intersection(&tb).count() as u128);
    }

    #[test]
    fn different_attribute_sets_do_not_match() {
        let a = MultiRange::new([("age", RangeSet::interval(0, 9))]);
        let b = mr((0, 9), (0, 9));
        assert_eq!(a.intersection_len(&b), 0);
        assert_eq!(a.jaccard(&b), 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attribute_rejected() {
        MultiRange::new([
            ("age", RangeSet::interval(0, 1)),
            ("age", RangeSet::interval(2, 3)),
        ]);
    }

    #[test]
    fn identifiers_depend_on_every_attribute() {
        let config = SystemConfig::default().with_seed(5);
        let mut rng = DetRng::new(9);
        let groups = MultiAttrGroups::generate(["age", "date"], &config, &mut rng);
        let base = mr((30, 50), (100, 200));
        let age_moved = mr((500, 600), (100, 200));
        let date_moved = mr((30, 50), (700, 900));
        let ids = groups.identifiers(&base);
        assert_eq!(ids.len(), 5);
        // Identical input ⇒ identical identifiers; a clearly different
        // range on *either* attribute ⇒ different identifiers. (A barely
        // different range may legitimately collide — that is the point of
        // LSH — so the test uses disjoint replacements.)
        assert_eq!(ids, groups.identifiers(&base));
        assert_ne!(ids, groups.identifiers(&age_moved));
        assert_ne!(ids, groups.identifiers(&date_moved));
    }

    #[test]
    fn cache_miss_then_exact_hit() {
        let mut net =
            MultiAttrNetwork::new(40, ["age", "date"], SystemConfig::default().with_seed(3));
        let q = mr((30, 50), (36_524, 37_619));
        let miss = net.query(&q);
        assert!(miss.best_match.is_none());
        let hit = net.query(&q);
        assert!(hit.exact);
        assert_eq!(hit.recall, 1.0);
        assert!(net.total_partitions() >= 1);
    }

    #[test]
    fn similar_conjunctions_often_match() {
        // Both attributes nearly identical ⇒ per-attribute collision
        // probabilities multiply but stay high.
        let mut hits = 0;
        for seed in 0..10 {
            let mut net =
                MultiAttrNetwork::new(40, ["age", "date"], SystemConfig::default().with_seed(seed));
            net.query(&mr((30, 50), (100, 200)));
            let out = net.query(&mr((30, 49), (100, 199)));
            if out.best_match.is_some() {
                hits += 1;
            }
        }
        assert!(hits >= 5, "only {hits}/10 similar conjunctions matched");
    }

    #[test]
    fn dissimilar_conjunctions_do_not_match() {
        let mut net =
            MultiAttrNetwork::new(40, ["age", "date"], SystemConfig::default().with_seed(8));
        net.query(&mr((0, 20), (0, 50)));
        let out = net.query(&mr((500, 600), (800, 900)));
        assert!(out.best_match.is_none() || out.similarity == 0.0);
    }

    #[test]
    fn single_attribute_reduces_to_base_scheme() {
        // With one attribute the multi-attr machinery behaves like the
        // paper's base system: similar single ranges match.
        let mut net = MultiAttrNetwork::new(40, ["age"], SystemConfig::default().with_seed(2));
        let q1 = MultiRange::new([("age", RangeSet::interval(30, 50))]);
        let q2 = MultiRange::new([("age", RangeSet::interval(30, 50))]);
        net.query(&q1);
        assert!(net.query(&q2).exact);
    }
}
