//! The protocol as explicit messages over `ars-simnet`.
//!
//! [`crate::RangeSelectNetwork`] computes routing outcomes directly; this
//! module runs the *same* §4 procedure as peer-to-peer messages — greedy
//! Chord forwarding of `Route` envelopes, bucket search at the owner, a
//! `MatchReply` back to the querying peer, and `Store` messages on a miss
//! — over the deterministic event simulator. A binary wire encoding
//! ([`ProtoMsg`] implements [`Wire`]) pins down what would actually cross
//! a TCP connection.
//!
//! The integration test `tests/proto_equivalence.rs` holds this rendition
//! equal, query for query, to the direct-call one.

use crate::bucket::Match;
use crate::config::{MatchMeasure, Placement, SystemConfig};
use crate::network::QueryOutcome;
use crate::peer::Peer;
use ars_chord::{Id, Ring};
use ars_common::{DetRng, FxHashMap};
use ars_lsh::{HashGroups, RangeSet};
use ars_simnet::codec::{get_seq, get_u32, get_u64, get_u8, put_seq, CodecError, Wire};
use ars_simnet::{ConstantLatency, FaultPlan, Node, NodeCtx, SimNet, ThreadedNet};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::{Arc, Mutex};

/// A serializable range (interval list).
type WireRange = Vec<(u32, u32)>;

fn to_wire(r: &RangeSet) -> WireRange {
    r.intervals().to_vec()
}

fn from_wire(w: &[(u32, u32)]) -> RangeSet {
    RangeSet::from_intervals(w.iter().copied())
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoMsg {
    /// An envelope being routed toward the owner of ring position `key`.
    Route {
        /// Ring position being located (the placed identifier).
        key: u32,
        /// The partition identifier (bucket name at the owner).
        ident: u32,
        /// Overlay hops taken so far.
        hops: u32,
        /// The request to execute at the owner.
        payload: Payload,
    },
    /// Owner → origin: result of a `FindMatch`.
    MatchReply {
        /// Request id this answers.
        request: u64,
        /// Identifier that was searched.
        identifier: u32,
        /// Hops the request took to reach the owner.
        hops: u32,
        /// Best match, if the bucket was non-empty.
        best: Option<(WireRange, f64)>,
    },
    /// Owner → origin: a `Store` was applied.
    StoreAck {
        /// Request id this answers.
        request: u64,
    },
}

/// What to do once the owner of the key is reached.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Search the identifier's bucket for the best match.
    FindMatch {
        /// Request id (echoed in the reply).
        request: u64,
        /// Peer index to reply to.
        origin: u32,
        /// The (already padded) query range.
        range: WireRange,
    },
    /// Cache a partition range under the identifier.
    Store {
        /// Request id (echoed in the ack).
        request: u64,
        /// Peer index to ack to.
        origin: u32,
        /// The partition range to store.
        range: WireRange,
    },
}

impl Wire for ProtoMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ProtoMsg::Route {
                key,
                ident,
                hops,
                payload,
            } => {
                buf.put_u8(0);
                buf.put_u32(*key);
                buf.put_u32(*ident);
                buf.put_u32(*hops);
                payload.encode(buf);
            }
            ProtoMsg::MatchReply {
                request,
                identifier,
                hops,
                best,
            } => {
                buf.put_u8(1);
                buf.put_u64(*request);
                buf.put_u32(*identifier);
                buf.put_u32(*hops);
                match best {
                    None => buf.put_u8(0),
                    Some((range, score)) => {
                        buf.put_u8(1);
                        put_seq(buf, range, |b, &(lo, hi)| {
                            b.put_u32(lo);
                            b.put_u32(hi);
                        });
                        buf.put_f64(*score);
                    }
                }
            }
            ProtoMsg::StoreAck { request } => {
                buf.put_u8(2);
                buf.put_u64(*request);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match get_u8(buf)? {
            0 => Ok(ProtoMsg::Route {
                key: get_u32(buf)?,
                ident: get_u32(buf)?,
                hops: get_u32(buf)?,
                payload: Payload::decode(buf)?,
            }),
            1 => {
                let request = get_u64(buf)?;
                let identifier = get_u32(buf)?;
                let hops = get_u32(buf)?;
                let best = match get_u8(buf)? {
                    0 => None,
                    1 => {
                        let range = get_seq(buf, |b| Ok((get_u32(b)?, get_u32(b)?)))?;
                        if buf.remaining() < 8 {
                            return Err(CodecError::Truncated);
                        }
                        let score = buf.get_f64();
                        Some((range, score))
                    }
                    t => return Err(CodecError::BadTag(t)),
                };
                Ok(ProtoMsg::MatchReply {
                    request,
                    identifier,
                    hops,
                    best,
                })
            }
            2 => Ok(ProtoMsg::StoreAck {
                request: get_u64(buf)?,
            }),
            t => Err(CodecError::BadTag(t)),
        }
    }
}

impl Wire for Payload {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Payload::FindMatch {
                request,
                origin,
                range,
            } => {
                buf.put_u8(0);
                buf.put_u64(*request);
                buf.put_u32(*origin);
                put_seq(buf, range, |b, &(lo, hi)| {
                    b.put_u32(lo);
                    b.put_u32(hi);
                });
            }
            Payload::Store {
                request,
                origin,
                range,
            } => {
                buf.put_u8(1);
                buf.put_u64(*request);
                buf.put_u32(*origin);
                put_seq(buf, range, |b, &(lo, hi)| {
                    b.put_u32(lo);
                    b.put_u32(hi);
                });
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let tag = get_u8(buf)?;
        let request = get_u64(buf)?;
        let origin = get_u32(buf)?;
        let range = get_seq(buf, |b| Ok((get_u32(b)?, get_u32(b)?)))?;
        match tag {
            0 => Ok(Payload::FindMatch {
                request,
                origin,
                range,
            }),
            1 => Ok(Payload::Store {
                request,
                origin,
                range,
            }),
            t => Err(CodecError::BadTag(t)),
        }
    }
}

/// Shared, immutable ring knowledge each peer node routes with.
#[derive(Debug)]
struct RingInfo {
    ring: Ring,
    /// Ring id → simnet peer index.
    index_of: FxHashMap<u32, usize>,
}

/// A reply collected at the querying peer, surfaced to the driver.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedReply {
    /// Request id.
    pub request: u64,
    /// Identifier searched.
    pub identifier: u32,
    /// Routing hops to the owner.
    pub hops: u32,
    /// Best match found in the bucket, if any.
    pub best: Option<Match>,
}

type ReplySink = Arc<Mutex<Vec<CollectedReply>>>;

/// One peer as a simnet node.
struct PeerNode {
    id: Id,
    info: Arc<RingInfo>,
    storage: Peer,
    matching: MatchMeasure,
    use_local_index: bool,
    sink: ReplySink,
}

impl PeerNode {
    /// Forward a route envelope one hop, or handle it if we own the key.
    fn route(
        &mut self,
        ctx: &mut NodeCtx<'_, ProtoMsg>,
        key: u32,
        ident: u32,
        hops: u32,
        payload: Payload,
    ) {
        let key_id = Id(key);
        let owner = self.info.ring.successor_of(key_id);
        if owner == self.id {
            self.handle_owned(ctx, ident, hops, payload);
            return;
        }
        // Greedy Chord forwarding using this node's finger table.
        let table = self.info.ring.finger_table(self.id);
        let succ = table.successor();
        let next = if key_id.in_open_closed(self.id, succ) {
            succ
        } else {
            table.closest_preceding(key_id).unwrap_or(succ)
        };
        let next_idx = self.info.index_of[&next.0];
        ctx.send(
            next_idx,
            ProtoMsg::Route {
                key,
                ident,
                hops: hops + 1,
                payload,
            },
        );
    }

    fn handle_owned(
        &mut self,
        ctx: &mut NodeCtx<'_, ProtoMsg>,
        ident: u32,
        hops: u32,
        payload: Payload,
    ) {
        match payload {
            Payload::FindMatch {
                request,
                origin,
                range,
            } => {
                let q = from_wire(&range);
                let best = if self.use_local_index {
                    self.storage.best_across_buckets(&q, self.matching)
                } else {
                    self.storage.best_in_bucket(ident, &q, self.matching)
                };
                ctx.send(
                    origin as usize,
                    ProtoMsg::MatchReply {
                        request,
                        identifier: ident,
                        hops,
                        best: best.map(|m| (to_wire(&m.range), m.score)),
                    },
                );
            }
            Payload::Store {
                request,
                origin,
                range,
            } => {
                self.storage.store(ident, from_wire(&range));
                ctx.send(origin as usize, ProtoMsg::StoreAck { request });
            }
        }
    }
}

impl Node<ProtoMsg> for PeerNode {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, ProtoMsg>, _from: usize, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Route {
                key,
                ident,
                hops,
                payload,
            } => self.route(ctx, key, ident, hops, payload),
            ProtoMsg::MatchReply {
                request,
                identifier,
                hops,
                best,
            } => {
                self.sink
                    .lock()
                    .expect("sink poisoned")
                    .push(CollectedReply {
                        request,
                        identifier,
                        hops,
                        best: best.map(|(range, score)| Match {
                            range: from_wire(&range),
                            score,
                        }),
                    });
            }
            ProtoMsg::StoreAck { .. } => {}
        }
    }
}

/// Driver running the full query procedure over the message simulator.
pub struct ProtoNetwork {
    net: SimNet<ProtoMsg, ConstantLatency>,
    info: Arc<RingInfo>,
    groups: HashGroups,
    config: SystemConfig,
    sink: ReplySink,
    rng: DetRng,
    next_request: u64,
    /// True when a transport loss model is active: missing replies are then
    /// treated as timeouts (no match) instead of protocol violations.
    lossy: bool,
}

impl ProtoNetwork {
    /// Build a message-passing network mirroring
    /// [`crate::RangeSelectNetwork::new`] — identical seed handling, so the
    /// ring, the hash groups and the per-query origin choice line up
    /// exactly with the direct-call rendition.
    pub fn new(n_peers: usize, config: SystemConfig) -> ProtoNetwork {
        assert!(
            config.placement_mode == crate::config::PlacementMode::Independent,
            "the message-passing rendition models independent placement only"
        );
        let mut rng = DetRng::new(config.seed);
        let mut group_rng = rng.fork();
        let ring_seed = rng.next_u64();
        let ring = Ring::from_seed(n_peers, ring_seed);
        let groups = HashGroups::generate(config.family, config.k, config.l, &mut group_rng);
        let index_of: FxHashMap<u32, usize> = ring
            .node_ids()
            .iter()
            .enumerate()
            .map(|(i, id)| (id.0, i))
            .collect();
        let info = Arc::new(RingInfo { ring, index_of });
        let sink: ReplySink = Arc::new(Mutex::new(Vec::new()));
        let nodes: Vec<Box<dyn Node<ProtoMsg>>> = info
            .ring
            .node_ids()
            .iter()
            .map(|&id| {
                Box::new(PeerNode {
                    id,
                    info: info.clone(),
                    storage: Peer::new(id),
                    matching: config.matching,
                    use_local_index: config.use_local_index,
                    sink: sink.clone(),
                }) as Box<dyn Node<ProtoMsg>>
            })
            .collect();
        let mut net = SimNet::new(nodes, ConstantLatency(50));
        // Meter wire bytes: the framed binary encoding is what a TCP
        // deployment would move.
        net.set_meter(|m: &ProtoMsg| ars_simnet::codec::frame(m).len() as u64);
        ProtoNetwork {
            net,
            info,
            groups,
            config,
            sink,
            rng,
            next_request: 0,
            lossy: false,
        }
    }

    /// Like [`ProtoNetwork::new`] but with a lossy transport: every message
    /// is independently dropped with probability `loss`. Dropped requests
    /// and replies surface as timed-out lookups (treated as "no match"),
    /// exactly as a lost TCP connection would.
    pub fn new_lossy(
        n_peers: usize,
        config: SystemConfig,
        loss: f64,
        loss_seed: u64,
    ) -> ProtoNetwork {
        let mut net = ProtoNetwork::new(n_peers, config);
        net.net.set_loss(loss, loss_seed);
        net.lossy = true;
        net
    }

    /// Like [`ProtoNetwork::new`] but with an arbitrary seeded
    /// [`FaultPlan`] — drops, duplication, extra delay, node crash and
    /// pause windows — executed by the simulator's fault injector. Under
    /// any plan, queries complete with well-formed (possibly degraded)
    /// outcomes: lost replies read as timeouts, duplicated replies are
    /// deduplicated by request id, and crashed peers simply never answer.
    pub fn new_faulty(
        n_peers: usize,
        config: SystemConfig,
        plan: FaultPlan,
        fault_seed: u64,
    ) -> ProtoNetwork {
        let mut net = ProtoNetwork::new(n_peers, config);
        let benign = plan.is_benign();
        net.net.set_faults(plan, fault_seed);
        net.lossy = !benign;
        net
    }

    /// Messages dropped by the loss model so far.
    pub fn messages_dropped(&self) -> u64 {
        self.net.stats().dropped
    }

    /// Wire bytes the protocol has moved so far (framed binary encoding).
    pub fn bytes_sent(&self) -> u64 {
        self.net.stats().bytes
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.net.len()
    }

    /// True if the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
    }

    /// Messages delivered so far (protocol overhead accounting).
    pub fn messages_delivered(&self) -> u64 {
        self.net.stats().delivered
    }

    /// Ring position of an identifier under the configured placement.
    fn place(&self, identifier: u32) -> u32 {
        match self.config.placement {
            Placement::Uniformized => ars_chord::sha1::sha1_u32(&identifier.to_be_bytes()),
            Placement::Direct => identifier,
        }
    }

    /// Execute one query through the message protocol. Semantically
    /// identical to [`crate::RangeSelectNetwork::query`].
    pub fn query(&mut self, q: &RangeSet) -> QueryOutcome {
        assert!(!q.is_empty(), "cannot query an empty range");
        let hashed_range = if self.config.padding > 0.0 {
            q.pad(self.config.padding)
        } else {
            q.clone()
        };
        let identifiers = self.groups.identifiers(&hashed_range);
        let origin_idx = {
            let ids = self.info.ring.node_ids();
            self.rng.gen_index(ids.len())
        };

        // Fire one FindMatch per *distinct* identifier — the direct
        // path's within-query dedup, mirrored: a duplicate would route
        // to the same owner and return the same reply.
        let base_request = self.next_request;
        let mut routed: Vec<u32> = Vec::with_capacity(identifiers.len());
        for &ident in &identifiers {
            if routed.contains(&ident) {
                continue;
            }
            let request = base_request + routed.len() as u64;
            routed.push(ident);
            self.net.inject(
                origin_idx,
                origin_idx,
                ProtoMsg::Route {
                    key: self.place(ident),
                    ident,
                    hops: 0,
                    payload: Payload::FindMatch {
                        request,
                        origin: origin_idx as u32,
                        range: to_wire(&hashed_range),
                    },
                },
            );
        }
        self.next_request += routed.len() as u64;
        self.net.run(u64::MAX);

        // Collect the l replies for this batch.
        let mut replies: Vec<CollectedReply> = {
            let mut sink = self.sink.lock().expect("sink poisoned");
            sink.drain(..)
                .filter(|r| r.request >= base_request)
                .collect()
        };
        replies.sort_by_key(|r| r.request);
        // A duplicating fault plan can deliver the same MatchReply twice;
        // request ids make the extra copies harmless.
        replies.dedup_by_key(|r| r.request);
        if !self.lossy {
            assert_eq!(
                replies.len(),
                routed.len(),
                "every FindMatch must be answered on a lossless transport"
            );
        }

        // Best across replies; ties resolve to the earliest identifier,
        // matching the direct-call network's iteration order.
        let mut best: Option<Match> = None;
        for r in &replies {
            if let Some(m) = &r.best {
                let better = match &best {
                    None => true,
                    Some(b) => m.score > b.score,
                };
                if better {
                    best = Some(m.clone());
                }
            }
        }
        let exact = best
            .as_ref()
            .map(|m| m.range == hashed_range)
            .unwrap_or(false);

        // Store on miss.
        let mut stored = false;
        if self.config.cache_on_miss && !exact {
            for &ident in &identifiers {
                let request = self.next_request;
                self.next_request += 1;
                self.net.inject(
                    origin_idx,
                    origin_idx,
                    ProtoMsg::Route {
                        key: self.place(ident),
                        ident,
                        hops: 0,
                        payload: Payload::Store {
                            request,
                            origin: origin_idx as u32,
                            range: to_wire(&hashed_range),
                        },
                    },
                );
            }
            self.net.run(u64::MAX);
            stored = true;
        }

        let (similarity, recall, best_match) = match &best {
            Some(m) => (
                q.jaccard(&m.range),
                q.containment_in(&m.range),
                Some(m.range.clone()),
            ),
            None => (0.0, 0.0, None),
        };
        let hops: Vec<usize> = replies.iter().map(|r| r.hops as usize).collect();
        let attempts = routed.len();
        // With every reply lost (possible only under faults), the origin
        // would fall back to fetching from the source relations.
        let fell_back_to_source = replies.is_empty();
        QueryOutcome {
            query: q.clone(),
            best_match,
            similarity,
            recall,
            exact,
            stored,
            hops,
            identifiers,
            peers_contacted: 0, // not tracked in the message rendition
            attempts,
            fell_back_to_source,
            partition_degraded: false,
        }
    }
}

/// The protocol over OS threads: every peer is a thread exchanging
/// [`ProtoMsg`]s through crossbeam channels ([`ThreadedNet`]). Query
/// results are identical to [`ProtoNetwork`] and
/// [`crate::RangeSelectNetwork`] — concurrency changes delivery order, not
/// outcomes, because replies are keyed by request id.
pub struct ThreadedProtoNetwork {
    net: ThreadedNet<ProtoMsg>,
    info: Arc<RingInfo>,
    groups: HashGroups,
    config: SystemConfig,
    sink: ReplySink,
    rng: DetRng,
    next_request: u64,
}

impl ThreadedProtoNetwork {
    /// Spawn one thread per peer, mirroring [`ProtoNetwork::new`]'s seed
    /// handling (same ring, groups, and origin choices).
    pub fn spawn(n_peers: usize, config: SystemConfig) -> ThreadedProtoNetwork {
        let mut rng = DetRng::new(config.seed);
        let mut group_rng = rng.fork();
        let ring_seed = rng.next_u64();
        let ring = Ring::from_seed(n_peers, ring_seed);
        let groups = HashGroups::generate(config.family, config.k, config.l, &mut group_rng);
        let index_of: FxHashMap<u32, usize> = ring
            .node_ids()
            .iter()
            .enumerate()
            .map(|(i, id)| (id.0, i))
            .collect();
        let info = Arc::new(RingInfo { ring, index_of });
        let sink: ReplySink = Arc::new(Mutex::new(Vec::new()));
        let nodes: Vec<Box<dyn Node<ProtoMsg> + Send>> = info
            .ring
            .node_ids()
            .iter()
            .map(|&id| {
                Box::new(PeerNode {
                    id,
                    info: info.clone(),
                    storage: Peer::new(id),
                    matching: config.matching,
                    use_local_index: config.use_local_index,
                    sink: sink.clone(),
                }) as Box<dyn Node<ProtoMsg> + Send>
            })
            .collect();
        let net = ThreadedNet::spawn(nodes);
        ThreadedProtoNetwork {
            net,
            info,
            groups,
            config,
            sink,
            rng,
            next_request: 0,
        }
    }

    /// Number of peers (threads).
    pub fn len(&self) -> usize {
        self.net.len()
    }

    /// True if the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
    }

    fn place(&self, identifier: u32) -> u32 {
        match self.config.placement {
            Placement::Uniformized => ars_chord::sha1::sha1_u32(&identifier.to_be_bytes()),
            Placement::Direct => identifier,
        }
    }

    /// Execute one query across the peer threads. Blocks until the
    /// protocol quiesces.
    ///
    /// # Panics
    /// Panics if the network fails to quiesce within 30 seconds (a wedged
    /// peer thread).
    pub fn query(&mut self, q: &RangeSet) -> QueryOutcome {
        assert!(!q.is_empty(), "cannot query an empty range");
        let hashed_range = if self.config.padding > 0.0 {
            q.pad(self.config.padding)
        } else {
            q.clone()
        };
        let identifiers = self.groups.identifiers(&hashed_range);
        let origin_idx = self.rng.gen_index(self.info.ring.node_ids().len());

        // One FindMatch per *distinct* identifier, as in [`ProtoNetwork`].
        let base_request = self.next_request;
        let mut routed: Vec<u32> = Vec::with_capacity(identifiers.len());
        for &ident in &identifiers {
            if routed.contains(&ident) {
                continue;
            }
            let request = base_request + routed.len() as u64;
            routed.push(ident);
            self.net.inject(
                origin_idx,
                origin_idx,
                ProtoMsg::Route {
                    key: self.place(ident),
                    ident,
                    hops: 0,
                    payload: Payload::FindMatch {
                        request,
                        origin: origin_idx as u32,
                        range: to_wire(&hashed_range),
                    },
                },
            );
        }
        self.next_request += routed.len() as u64;
        assert!(
            self.net
                .await_quiescence(std::time::Duration::from_secs(30)),
            "peer threads failed to quiesce"
        );

        let mut replies: Vec<CollectedReply> = {
            let mut sink = self.sink.lock().expect("sink poisoned");
            sink.drain(..)
                .filter(|r| r.request >= base_request)
                .collect()
        };
        replies.sort_by_key(|r| r.request);
        assert_eq!(
            replies.len(),
            routed.len(),
            "every FindMatch must be answered"
        );

        let mut best: Option<Match> = None;
        for r in &replies {
            if let Some(m) = &r.best {
                let better = match &best {
                    None => true,
                    Some(b) => m.score > b.score,
                };
                if better {
                    best = Some(m.clone());
                }
            }
        }
        let exact = best
            .as_ref()
            .map(|m| m.range == hashed_range)
            .unwrap_or(false);

        let mut stored = false;
        if self.config.cache_on_miss && !exact {
            for &ident in &identifiers {
                let request = self.next_request;
                self.next_request += 1;
                self.net.inject(
                    origin_idx,
                    origin_idx,
                    ProtoMsg::Route {
                        key: self.place(ident),
                        ident,
                        hops: 0,
                        payload: Payload::Store {
                            request,
                            origin: origin_idx as u32,
                            range: to_wire(&hashed_range),
                        },
                    },
                );
            }
            assert!(
                self.net
                    .await_quiescence(std::time::Duration::from_secs(30)),
                "peer threads failed to quiesce after store"
            );
            stored = true;
        }

        let (similarity, recall, best_match) = match &best {
            Some(m) => (
                q.jaccard(&m.range),
                q.containment_in(&m.range),
                Some(m.range.clone()),
            ),
            None => (0.0, 0.0, None),
        };
        let hops: Vec<usize> = replies.iter().map(|r| r.hops as usize).collect();
        let attempts = routed.len();
        QueryOutcome {
            query: q.clone(),
            best_match,
            similarity,
            recall,
            exact,
            stored,
            hops,
            identifiers,
            peers_contacted: 0,
            attempts,
            fell_back_to_source: false,
            partition_degraded: false,
        }
    }

    /// Stop all peer threads.
    pub fn shutdown(self) {
        self.net.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_simnet::codec::{deframe, frame};

    fn r(lo: u32, hi: u32) -> RangeSet {
        RangeSet::interval(lo, hi)
    }

    #[test]
    fn wire_roundtrip_all_variants() {
        let msgs = vec![
            ProtoMsg::Route {
                key: 0xDEAD_BEEF,
                ident: 0xBEEF_DEAD,
                hops: 3,
                payload: Payload::FindMatch {
                    request: 42,
                    origin: 7,
                    range: vec![(30, 50), (60, 70)],
                },
            },
            ProtoMsg::Route {
                key: 1,
                ident: 2,
                hops: 0,
                payload: Payload::Store {
                    request: 9,
                    origin: 0,
                    range: vec![(0, 0)],
                },
            },
            ProtoMsg::MatchReply {
                request: 42,
                identifier: 5,
                hops: 2,
                best: Some((vec![(30, 50)], 0.75)),
            },
            ProtoMsg::MatchReply {
                request: 43,
                identifier: 6,
                hops: 1,
                best: None,
            },
            ProtoMsg::StoreAck { request: 9 },
        ];
        for m in msgs {
            let (decoded, rest) = deframe::<ProtoMsg>(frame(&m)).unwrap();
            assert_eq!(decoded, m);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn wire_rejects_bad_tag() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        let mut framed = BytesMut::new();
        framed.put_u32(buf.len() as u32);
        framed.extend_from_slice(&buf);
        assert!(matches!(
            deframe::<ProtoMsg>(framed.freeze()),
            Err(CodecError::BadTag(99))
        ));
    }

    #[test]
    fn first_query_misses_then_hits() {
        let mut net = ProtoNetwork::new(20, SystemConfig::default().with_seed(7));
        let out1 = net.query(&r(30, 50));
        assert!(out1.best_match.is_none());
        assert!(out1.stored);
        let out2 = net.query(&r(30, 50));
        assert!(out2.exact);
        assert_eq!(out2.recall, 1.0);
    }

    #[test]
    fn messages_flow_through_overlay() {
        let mut net = ProtoNetwork::new(30, SystemConfig::default().with_seed(3));
        net.query(&r(0, 10));
        // 5 FindMatch routes (multi-hop) + 5 replies + 5 Stores + 5 acks at
        // minimum.
        assert!(net.messages_delivered() >= 20);
        // Every message has a nonzero framed encoding; a query moves at
        // least ~30 bytes per message.
        assert!(net.bytes_sent() >= net.messages_delivered() * 15);
    }

    #[test]
    fn lossy_transport_degrades_gracefully() {
        let mut net = ProtoNetwork::new_lossy(30, SystemConfig::default().with_seed(21), 0.3, 99);
        let trace_queries: Vec<RangeSet> = (0..60)
            .map(|i| RangeSet::interval(i * 10, i * 10 + 40))
            .collect();
        let mut answered = 0;
        for q in &trace_queries {
            let out = net.query(q);
            if out.best_match.is_some() {
                answered += 1;
            }
        }
        // With 30% loss some messages vanish but the system never wedges.
        assert!(net.messages_dropped() > 0, "loss model must fire");
        // Re-queries can still hit when the store messages survived.
        let _ = answered;
        let q = RangeSet::interval(5, 45);
        net.query(&q);
        let again = net.query(&q);
        // No assertion on hit/miss — only that outcomes stay well-formed.
        assert!(again.recall >= 0.0 && again.recall <= 1.0);
    }

    #[test]
    fn lossless_equals_lossy_at_zero_probability() {
        let mut a = ProtoNetwork::new(15, SystemConfig::default().with_seed(4));
        let mut b = ProtoNetwork::new_lossy(15, SystemConfig::default().with_seed(4), 0.0, 1);
        for lo in [0u32, 50, 100] {
            let q = RangeSet::interval(lo, lo + 30);
            assert_eq!(a.query(&q).best_match, b.query(&q).best_match);
        }
    }

    #[test]
    fn hops_reported_per_identifier() {
        let mut net = ProtoNetwork::new(50, SystemConfig::default().with_seed(5));
        let out = net.query(&r(10, 20));
        assert_eq!(out.hops.len(), 5);
        for &h in &out.hops {
            assert!(h <= 32, "hop count {h} exceeds Chord bound");
        }
    }
}
