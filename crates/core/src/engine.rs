//! The concurrent query engine: per-shard commit, per-shard RNG streams,
//! and a long-lived worker-peer runtime.
//!
//! The batched path in [`crate::network`] parallelizes hashing and
//! routing but funnels every commit through one sequential loop to keep
//! outcomes bit-identical to [`RangeSelectNetwork::query`] — so batch
//! throughput is bounded by a single core no matter how wide the machine
//! is. This module breaks that ceiling by partitioning the network's
//! mutable state into **shards**:
//!
//! * each shard owns a slice of the peers (by ring position), a segment
//!   of the [`IdentifierCache`], and its own [`NetworkStats`]
//!   accumulator, each behind its own lock;
//! * each shard has its own deterministic RNG stream, split off the
//!   network generator with [`DetRng::split_streams`] — stream 0
//!   continues the unsplit sequence exactly, so a one-shard engine
//!   reproduces the sequential path bit for bit;
//! * commits for queries touching disjoint shard sets run concurrently;
//!   commits that share a shard are ordered by a deterministic
//!   conflict scheduler (below), so the *outcomes* are identical across
//!   every worker count and schedule.
//!
//! # The equivalence contract
//!
//! The sequential path promises bit-identical replay. The engine relaxes
//! that to **equivalent modulo commutative reordering**:
//!
//! * **Outcomes are schedule-invariant** — in fact bitwise equal across
//!   worker counts at a fixed shard count, because the conflict scheduler
//!   commits any two queries that touch a common shard in submission
//!   order, and commits that reorder freely touch disjoint peers (so
//!   they commute). Changing the *shard count* changes which RNG stream
//!   draws each origin, so outcomes differ across shard counts only in
//!   origin-dependent fields (`hops`); identifiers, owners, matches, and
//!   recall are origin-independent.
//! * **Ledgers are conserved** — stats and cache counters are sums of
//!   commutative additions, so the merged totals are schedule-invariant:
//!   cache `hits + misses == queries`, `lookups == Σ attempts`, etc. The
//!   hit/miss *split* may differ from the sequential path when two
//!   workers race to first-compute the same range (both miss), which is
//!   exactly the relaxation; with one worker the split is sequential-
//!   exact (asserted in tests).
//!
//! # The conflict scheduler
//!
//! Prepared queries enroll in submission order; each shard keeps a FIFO
//! of enrolled queries that will touch it. A query commits when it is at
//! the head of *every* owner shard's FIFO — so two conflicting commits
//! always apply in submission order (making the outcome deterministic),
//! while disjoint commits proceed concurrently on different workers, and
//! a shard's locks are, by construction, never contended by two commits
//! at once.
//!
//! # The worker runtime
//!
//! [`QueryEngine`] spawns a pool of worker threads draining jobs from a
//! shared MPMC channel: `Prepare` jobs hash/route a query against the
//! immutable ring snapshot, `Commit` jobs apply scheduled commits.
//! [`QueryEngine::submit`] applies backpressure once
//! [`SystemConfig::engine_queue`] queries are in flight;
//! [`QueryEngine::drain`] waits the pipeline empty and returns outcomes
//! in submission order; [`QueryEngine::shutdown`] joins the workers and
//! merges the shards back into the donor network (peers union, stats and
//! cache-counter sums, cache segments re-concatenated and re-trimmed,
//! RNG advanced to stream 0's final state).

use crate::config::{PlacementMode, SystemConfig};
use crate::network::{
    commit_layered, commit_routed, place_identifier, plan_layered, IdentifierCache, LayeredPlan,
    NetworkStats, PeerAccess, QueryOutcome, RangeSelectNetwork, StatsSink,
};
use crate::peer::Peer;
use crate::resilient::BASE_SERVICE;
use ars_chord::{Id, Ring};
use ars_common::{DetRng, FxHashMap, FxHasher};
use ars_lsh::{HashGroups, RangeSet};
use ars_telemetry::Telemetry;
use parking_lot::{Mutex, MutexGuard};
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Tuning knobs for one engine run, normally taken from
/// [`SystemConfig`] via [`EngineOptions::from_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// State shards (≥ 1). Fixed per run; affects RNG stream assignment,
    /// so outcomes are comparable only at equal shard counts.
    pub shards: usize,
    /// Worker threads; `0` = one per available core. Never affects
    /// outcomes, only the schedule.
    pub workers: usize,
    /// In-flight query bound before [`QueryEngine::submit`] blocks.
    pub queue: usize,
}

impl EngineOptions {
    /// The engine knobs configured on `config`.
    pub fn from_config(config: &SystemConfig) -> EngineOptions {
        EngineOptions {
            shards: config.engine_shards,
            workers: config.engine_workers,
            queue: config.engine_queue,
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Shard index owning ring position `peer` out of `nshards`.
/// Multiplicative hashing spreads the (already SHA-1-uniformized) ring
/// positions evenly regardless of shard count.
fn shard_of(peer: u32, nshards: usize) -> usize {
    (((peer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % nshards as u64) as usize
}

/// Identifier-cache segment for a hashed range.
fn segment_of(range: &RangeSet, nshards: usize) -> usize {
    let mut h = FxHasher::default();
    range.hash(&mut h);
    (h.finish() % nshards as u64) as usize
}

/// Telemetry counter names for the first shards (counter names must be
/// `&'static str`); shards beyond the table still merge into the global
/// stats, they just don't get an individual counter.
const SHARD_QUERIES: [&str; 8] = [
    "engine.shard0.queries",
    "engine.shard1.queries",
    "engine.shard2.queries",
    "engine.shard3.queries",
    "engine.shard4.queries",
    "engine.shard5.queries",
    "engine.shard6.queries",
    "engine.shard7.queries",
];
const SHARD_CACHE_HITS: [&str; 8] = [
    "engine.shard0.cache.hits",
    "engine.shard1.cache.hits",
    "engine.shard2.cache.hits",
    "engine.shard3.cache.hits",
    "engine.shard4.cache.hits",
    "engine.shard5.cache.hits",
    "engine.shard6.cache.hits",
    "engine.shard7.cache.hits",
];
const SHARD_CACHE_MISSES: [&str; 8] = [
    "engine.shard0.cache.misses",
    "engine.shard1.cache.misses",
    "engine.shard2.cache.misses",
    "engine.shard3.cache.misses",
    "engine.shard4.cache.misses",
    "engine.shard5.cache.misses",
    "engine.shard6.cache.misses",
    "engine.shard7.cache.misses",
];
const SHARD_CACHE_EVICTIONS: [&str; 8] = [
    "engine.shard0.cache.evictions",
    "engine.shard1.cache.evictions",
    "engine.shard2.cache.evictions",
    "engine.shard3.cache.evictions",
    "engine.shard4.cache.evictions",
    "engine.shard5.cache.evictions",
    "engine.shard6.cache.evictions",
    "engine.shard7.cache.evictions",
];

/// The peers owned by one shard.
struct ShardCore {
    peers: FxHashMap<u32, Peer>,
}

/// One independently locked slice of the network's mutable state. The
/// three locks are separate on purpose: prepares touch only `cache`,
/// commits touch `core` (and `stats` transiently), so the two pipeline
/// stages never contend with each other.
struct Shard {
    core: Mutex<ShardCore>,
    cache: Mutex<IdentifierCache>,
    stats: Mutex<NetworkStats>,
}

/// Why the engine pipeline is poisoned. Returned by
/// [`QueryEngine::drain`] / [`QueryEngine::shutdown`] instead of
/// deadlocking when a worker panics mid-pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A worker panicked while processing the given query. The panic was
    /// caught at the job boundary: the worker thread survives, the
    /// conflict scheduler is released (a panicked prepare enrolls a
    /// tombstone so the submission-order watermark still advances; a
    /// panicked commit pops its shard FIFOs), and the first failure is
    /// latched until shutdown.
    WorkerPanicked {
        /// Sequence number of the poisoned query.
        seq: u64,
        /// Pipeline stage that panicked (`"prepare"` or `"commit"`).
        stage: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::WorkerPanicked {
                seq,
                stage,
                message,
            } => {
                write!(
                    f,
                    "engine worker panicked in {stage} of query {seq}: {message}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Why a non-blocking submission was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The in-flight bound ([`EngineOptions::queue`]) is reached.
    /// [`QueryEngine::submit`] would have blocked; [`QueryEngine::try_submit`]
    /// refuses instead so the caller can shed load upstream.
    QueueFull,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "engine queue full"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What [`QueryEngine::submit_timed`] decided about a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted: the query will be served and appear in drain output.
    Accepted(u64),
    /// Doomed: the virtual queue could not start the query within its
    /// deadline, so the scheduler drops it at dequeue — it occupies no
    /// server time, produces no outcome, and is counted in
    /// [`AdmissionStats::shed`] (never silently).
    Shed(u64),
}

impl Admission {
    /// The sequence number assigned either way.
    pub fn seq(&self) -> u64 {
        match *self {
            Admission::Accepted(seq) | Admission::Shed(seq) => seq,
        }
    }

    /// True when the query was shed.
    pub fn is_shed(&self) -> bool {
        matches!(self, Admission::Shed(_))
    }
}

/// The admission-control ledger of one engine run. On a healthy run
/// (no worker panics) the books balance:
/// `submitted == completed + shed + queued`, with `rejected` counted
/// separately (a rejected query never entered the pipeline and holds no
/// sequence number).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries that entered the pipeline (sequence numbers assigned).
    pub submitted: u64,
    /// [`QueryEngine::try_submit`] refusals — never entered the pipeline.
    pub rejected: u64,
    /// Deadline-doomed queries dropped by the scheduler at dequeue.
    pub shed: u64,
    /// Queries that committed and produced an outcome.
    pub completed: u64,
    /// Queries still in flight.
    pub queued: u64,
}

/// Render a caught panic payload for [`EngineError::WorkerPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A query after its read-only phase: hashed, identifiers resolved (via
/// the owning cache segment), routes computed against the immutable ring
/// — everything the commit needs, plus the sorted set of shards it will
/// lock.
struct Prepared {
    query: RangeSet,
    hashed: RangeSet,
    identifiers: Vec<u32>,
    plan: PreparedPlan,
    shards: Vec<usize>,
}

/// The routed form of a prepared query, one variant per placement mode.
enum PreparedPlan {
    /// Independent placement: one resolved route per identifier
    /// (duplicates share the memoized route; the commit skips their
    /// lookup).
    Independent(Vec<(Id, usize)>),
    /// Layered placement: the single arc lookup plus walk/candidate sets.
    Layered(LayeredPlan),
}

/// The shared immutable context plus the shard array.
struct EngineCore {
    config: SystemConfig,
    groups: HashGroups,
    /// Anchor-sketch group for layered placement (unused under the
    /// default independent mode).
    anchors: HashGroups,
    ring: Ring,
    telemetry: Telemetry,
    nshards: usize,
    shards: Vec<Shard>,
    /// Test-only fault hook: a query equal to the range panics at the
    /// named stage, exercising the worker supervision path.
    #[cfg(test)]
    poison: Mutex<Option<(RangeSet, &'static str)>>,
}

/// [`PeerAccess`] over the locked owner shards of one commit.
struct ShardedView<'a> {
    nshards: usize,
    guards: Vec<(usize, MutexGuard<'a, ShardCore>)>,
}

impl PeerAccess for ShardedView<'_> {
    fn peer(&self, id: u32) -> Option<&Peer> {
        let s = shard_of(id, self.nshards);
        let (_, guard) = self.guards.iter().find(|(i, _)| *i == s)?;
        guard.peers.get(&id)
    }
    fn peer_mut(&mut self, id: u32) -> Option<&mut Peer> {
        let s = shard_of(id, self.nshards);
        let (_, guard) = self.guards.iter_mut().find(|(i, _)| *i == s)?;
        guard.peers.get_mut(&id)
    }
}

/// [`StatsSink`] routing lookup counts to the owner's shard and query
/// counts to the query's home shard (`seq % nshards`). Each add takes
/// the target shard's stats lock transiently; adds commute, so placement
/// plus merge reproduces the global totals.
struct ShardStats<'a> {
    shards: &'a [Shard],
    nshards: usize,
    home: usize,
}

impl StatsSink for ShardStats<'_> {
    fn on_lookup(&mut self, owner: Id, hops: usize) {
        let mut stats = self.shards[shard_of(owner.0, self.nshards)].stats.lock();
        stats.lookups += 1;
        stats.total_hops += hops as u64;
    }
    fn on_dedup_saved(&mut self) {
        self.shards[self.home].stats.lock().dedup_saved_lookups += 1;
    }
    fn on_walk(&mut self, steps: usize) {
        self.shards[self.home].stats.lock().walk_steps += steps as u64;
    }
    fn on_probes(&mut self, count: usize) {
        self.shards[self.home].stats.lock().probe_checks += count as u64;
    }
    fn on_query(&mut self, matched: bool, exact: bool, stored: bool) {
        let mut stats = self.shards[self.home].stats.lock();
        stats.queries += 1;
        if matched {
            stats.matched += 1;
        }
        if exact {
            stats.exact += 1;
        }
        if stored {
            stats.stored += 1;
        }
    }
}

impl EngineCore {
    /// Partition `net`'s mutable state (peers, identifier cache) into
    /// `nshards` shards, leaving the network hollow until
    /// [`Self::reassemble`] puts everything back.
    fn from_network(net: &mut RangeSelectNetwork, nshards: usize) -> EngineCore {
        let mut peer_maps: Vec<FxHashMap<u32, Peer>> =
            (0..nshards).map(|_| FxHashMap::default()).collect();
        for (id, peer) in net.peers.drain() {
            peer_maps[shard_of(id, nshards)].insert(id, peer);
        }
        let segments = net
            .ident_cache
            .split_segments(nshards, |r| segment_of(r, nshards));
        let shards = peer_maps
            .into_iter()
            .zip(segments)
            .map(|(peers, cache)| Shard {
                core: Mutex::new(ShardCore { peers }),
                cache: Mutex::new(cache),
                stats: Mutex::new(NetworkStats::default()),
            })
            .collect();
        EngineCore {
            config: net.config.clone(),
            groups: net.groups.clone(),
            anchors: net.anchors.clone(),
            ring: net.ring.clone(),
            telemetry: net.telemetry.clone(),
            nshards,
            shards,
            #[cfg(test)]
            poison: Mutex::new(None),
        }
    }

    /// Panic if the fault hook marks this query for the given stage.
    #[cfg(test)]
    fn check_poison(&self, q: &RangeSet, stage: &str) {
        if let Some((poisoned, at)) = self.poison.lock().as_ref() {
            if *at == stage && poisoned == q {
                panic!("poisoned query reached {stage}");
            }
        }
    }

    /// The read-only phase: pad, resolve identifiers through the owning
    /// cache segment, route every identifier from `origin` against the
    /// immutable ring, and record which shards the commit will touch.
    fn prepare(&self, q: &RangeSet, origin: Id) -> Prepared {
        assert!(!q.is_empty(), "cannot query an empty range");
        #[cfg(test)]
        self.check_poison(q, "prepare");
        let hashed = if self.config.padding > 0.0 {
            q.pad(self.config.padding)
        } else {
            q.clone()
        };
        let segment = segment_of(&hashed, self.nshards);
        let cached = {
            let mut cache = self.shards[segment].cache.lock();
            match cache.get_hit(&hashed) {
                Some(ids) => {
                    self.telemetry.counter_add("core.ident_cache.hits", 1);
                    Some(ids)
                }
                None => {
                    cache.note_miss();
                    self.telemetry.counter_add("core.ident_cache.misses", 1);
                    None
                }
            }
        };
        let identifiers = match cached {
            Some(ids) => ids,
            None => {
                // Hash outside the lock — the k·l min-hashes dominate the
                // prepare cost and are pure. Two workers racing on the
                // same fresh range both miss (the relaxation); `insert`
                // deduplicates the entry itself.
                let ids = self.groups.identifiers(&hashed);
                let evicted = self.shards[segment]
                    .cache
                    .lock()
                    .insert(hashed.clone(), ids.clone());
                if evicted > 0 {
                    self.telemetry
                        .counter_add("core.ident_cache.evictions", evicted);
                }
                ids
            }
        };
        let (plan, mut shards) = match self.config.placement_mode {
            PlacementMode::Independent => {
                // Route each distinct identifier once (duplicates reuse
                // the memoized route), mirroring the sequential path.
                let mut memo: FxHashMap<u32, (Id, usize)> = FxHashMap::default();
                let routes: Vec<(Id, usize)> = identifiers
                    .iter()
                    .map(|&ident| {
                        *memo.entry(ident).or_insert_with(|| {
                            self.ring
                                .lookup(origin, place_identifier(&self.config, ident))
                        })
                    })
                    .collect();
                let shards: Vec<usize> = routes
                    .iter()
                    .map(|&(owner, _)| shard_of(owner.0, self.nshards))
                    .collect();
                (PreparedPlan::Independent(routes), shards)
            }
            PlacementMode::Layered => {
                let plan = plan_layered(
                    &self.config,
                    &self.groups,
                    &self.anchors,
                    &self.ring,
                    origin,
                    &hashed,
                    &identifiers,
                );
                // The commit touches every walked peer and every store
                // target's owner.
                let shards: Vec<usize> = plan
                    .visited
                    .iter()
                    .map(|&id| shard_of(id.0, self.nshards))
                    .chain(
                        plan.store_targets
                            .iter()
                            .map(|&(_, owner)| shard_of(owner.0, self.nshards)),
                    )
                    .collect();
                (PreparedPlan::Layered(plan), shards)
            }
        };
        shards.sort_unstable();
        shards.dedup();
        Prepared {
            query: q.clone(),
            hashed,
            identifiers,
            plan,
            shards,
        }
    }

    /// Apply one scheduled commit: lock the owner shards, replay the
    /// shared commit procedure against the sharded view. The conflict
    /// scheduler guarantees no other in-flight commit holds any of these
    /// shards, so the locks are uncontended by construction.
    fn commit(&self, seq: u64, prepared: Prepared) -> QueryOutcome {
        #[cfg(test)]
        self.check_poison(&prepared.query, "commit");
        let guards: Vec<(usize, MutexGuard<'_, ShardCore>)> = prepared
            .shards
            .iter()
            .map(|&s| (s, self.shards[s].core.lock()))
            .collect();
        let mut view = ShardedView {
            nshards: self.nshards,
            guards,
        };
        let mut stats = ShardStats {
            shards: &self.shards,
            nshards: self.nshards,
            home: (seq % self.nshards as u64) as usize,
        };
        match prepared.plan {
            PreparedPlan::Independent(routes) => commit_routed(
                &self.config,
                &self.telemetry,
                &mut view,
                &mut stats,
                &prepared.query,
                prepared.hashed,
                prepared.identifiers,
                routes,
                false,
            ),
            PreparedPlan::Layered(plan) => commit_layered(
                &self.config,
                &self.telemetry,
                &mut view,
                &mut stats,
                &prepared.query,
                prepared.hashed,
                prepared.identifiers,
                plan,
                false,
            ),
        }
    }

    /// Merge the shards back into `net`: peers union, per-shard stats and
    /// cache counters summed (exported as `engine.shardN.*` telemetry
    /// counters for the first shards), cache segments re-concatenated in
    /// shard order and re-trimmed to the global capacity.
    fn reassemble(self, net: &mut RangeSelectNetwork) {
        for (i, shard) in self.shards.into_iter().enumerate() {
            let core = shard.core.into_inner();
            net.peers.extend(core.peers);
            let stats = shard.stats.into_inner();
            if stats.queries > 0 && i < SHARD_QUERIES.len() {
                self.telemetry.counter_add(SHARD_QUERIES[i], stats.queries);
            }
            net.stats.merge(&stats);
            let segment = shard.cache.into_inner();
            if i < SHARD_QUERIES.len() {
                if segment.hits() > 0 {
                    self.telemetry
                        .counter_add(SHARD_CACHE_HITS[i], segment.hits());
                }
                if segment.misses() > 0 {
                    self.telemetry
                        .counter_add(SHARD_CACHE_MISSES[i], segment.misses());
                }
                if segment.evictions() > 0 {
                    self.telemetry
                        .counter_add(SHARD_CACHE_EVICTIONS[i], segment.evictions());
                }
            }
            net.ident_cache.absorb(segment);
        }
        self.telemetry
            .gauge_set("core.ident_cache.size", net.ident_cache.len() as u64);
    }
}

/// The deterministic conflict scheduler. Queries enroll strictly in
/// submission order (`watermark`), joining the FIFO of every shard their
/// commit will touch; a query is dispatched for commit once it heads all
/// of its FIFOs, and on completion releases its successors.
struct Sched {
    /// Next sequence number to enroll; prepares finishing out of order
    /// park in `pending` until their turn. `None` marks a tombstone — a
    /// query whose prepare panicked; it advances the watermark without
    /// joining any shard FIFO, so its successors are not wedged.
    watermark: u64,
    pending: FxHashMap<u64, Option<Prepared>>,
    /// Enrolled but not yet committed.
    enrolled: FxHashMap<u64, Prepared>,
    /// Per-shard FIFOs of enrolled sequence numbers.
    queues: Vec<VecDeque<u64>>,
    /// Enrolled queries → number of owner FIFOs they do not yet head.
    blocked: FxHashMap<u64, usize>,
}

impl Sched {
    fn new(nshards: usize) -> Sched {
        Sched {
            watermark: 0,
            pending: FxHashMap::default(),
            enrolled: FxHashMap::default(),
            queues: (0..nshards).map(|_| VecDeque::new()).collect(),
            blocked: FxHashMap::default(),
        }
    }
}

/// Work items on the engine channel.
enum Job {
    /// Hash + route query `seq` from the given origin.
    Prepare(u64, RangeSet, Id),
    /// Apply the scheduled commit of query `seq`.
    Commit(u64),
    /// Query `seq` was admission-doomed: drop it here, at dequeue —
    /// counted, tombstoned through the scheduler so successors advance,
    /// never prepared or committed.
    Shed(u64),
    /// Worker shutdown (one per worker).
    Stop,
}

/// State shared between the controller and the workers.
struct Shared {
    core: EngineCore,
    sched: Mutex<Sched>,
    tx: crossbeam::channel::Sender<Job>,
    results: Mutex<FxHashMap<u64, QueryOutcome>>,
    /// In-flight query count, guarded by a std mutex so the controller
    /// can block on the condvar for backpressure and drain.
    flow: StdMutex<usize>,
    flow_cv: Condvar,
    queue_cap: usize,
    /// First worker panic, latched until shutdown. Once set, the engine
    /// is poisoned: `drain`/`shutdown` report it instead of outcomes.
    failure: Mutex<Option<EngineError>>,
    /// Sequence numbers shed at dequeue (drain skips them).
    shed_set: Mutex<HashSet<u64>>,
    /// Cumulative shed count (survives drains).
    shed_count: AtomicU64,
    /// Cumulative committed-outcome count (survives drains).
    completed: AtomicU64,
}

impl Shared {
    /// Enroll newly prepared queries in submission order and dispatch any
    /// that are immediately unblocked. A `None` entry is a tombstone for
    /// a query whose prepare panicked: the watermark moves past it so
    /// later queries still commit.
    fn enroll(&self, seq: u64, prepared: Option<Prepared>) {
        let mut sched = self.sched.lock();
        sched.pending.insert(seq, prepared);
        loop {
            let next = sched.watermark;
            let Some(slot) = sched.pending.remove(&next) else {
                break;
            };
            sched.watermark += 1;
            let Some(prepared) = slot else {
                continue;
            };
            let mut waits = 0usize;
            for &s in &prepared.shards {
                sched.queues[s].push_back(next);
                if sched.queues[s].len() > 1 {
                    waits += 1;
                }
            }
            sched.enrolled.insert(next, prepared);
            if waits == 0 {
                let _ = self.tx.send(Job::Commit(next));
            } else {
                sched.blocked.insert(next, waits);
            }
        }
    }

    /// Latch the first worker panic (later ones are dropped — the first
    /// is the root cause; the rest are usually collateral).
    fn record_failure(
        &self,
        seq: u64,
        stage: &'static str,
        payload: Box<dyn std::any::Any + Send>,
    ) {
        let mut failure = self.failure.lock();
        if failure.is_none() {
            *failure = Some(EngineError::WorkerPanicked {
                seq,
                stage,
                message: panic_message(payload.as_ref()),
            });
        }
        self.core.telemetry.counter_add("engine.worker_panics", 1);
    }

    /// Free one in-flight slot and wake the controller.
    fn finish_one(&self) {
        let mut inflight = self.flow.lock().unwrap_or_else(|e| e.into_inner());
        *inflight -= 1;
        drop(inflight);
        self.flow_cv.notify_all();
    }

    /// Pop `seq` from its owner FIFOs and dispatch any successor that
    /// now heads all of its own.
    fn release(&self, seq: u64, owner_shards: &[usize]) {
        let mut sched = self.sched.lock();
        for &s in owner_shards {
            let popped = sched.queues[s].pop_front();
            debug_assert_eq!(popped, Some(seq), "commit out of shard-FIFO order");
            if let Some(&next) = sched.queues[s].front() {
                let waits = sched
                    .blocked
                    .get_mut(&next)
                    .expect("waiting query has a blocked entry");
                *waits -= 1;
                if *waits == 0 {
                    sched.blocked.remove(&next);
                    let _ = self.tx.send(Job::Commit(next));
                }
            }
        }
    }
}

fn worker_loop(shared: &Shared, rx: &crossbeam::channel::Receiver<Job>) {
    loop {
        match rx.recv() {
            Err(_) | Ok(Job::Stop) => break,
            Ok(Job::Prepare(seq, query, origin)) => {
                // Supervise the job, not the thread: a panicking query
                // must not take a worker down (the pool would starve) or
                // wedge the watermark (successors would never enroll).
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.core.prepare(&query, origin)
                }));
                match result {
                    Ok(prepared) => shared.enroll(seq, Some(prepared)),
                    Err(payload) => {
                        shared.record_failure(seq, "prepare", payload);
                        shared.enroll(seq, None);
                        shared.finish_one();
                    }
                }
            }
            Ok(Job::Commit(seq)) => {
                let prepared = shared
                    .sched
                    .lock()
                    .enrolled
                    .remove(&seq)
                    .expect("scheduled commit was enrolled");
                let owner_shards = prepared.shards.clone();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.core.commit(seq, prepared)
                }));
                // Release the shard FIFOs even on panic — successors
                // sharing a shard must not deadlock behind a dead commit.
                // (parking_lot mutexes do not poison; an unwound commit
                // may leave partial peer state, which the latched error
                // makes visible.)
                shared.release(seq, &owner_shards);
                match result {
                    Ok(outcome) => {
                        shared.results.lock().insert(seq, outcome);
                        shared.completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(payload) => shared.record_failure(seq, "commit", payload),
                }
                shared.finish_one();
            }
            Ok(Job::Shed(seq)) => {
                // The shed is *executed* here, at dequeue — the slot it
                // held applied real backpressure until now — and counted
                // in three places (telemetry, the cumulative counter, the
                // drain skip-set), never silently.
                shared.core.telemetry.counter_add("engine.shed", 1);
                shared.shed_count.fetch_add(1, Ordering::Relaxed);
                shared.shed_set.lock().insert(seq);
                shared.enroll(seq, None);
                shared.finish_one();
            }
        }
    }
}

/// A long-lived concurrent query engine over a [`RangeSelectNetwork`].
///
/// [`Self::launch`] takes the network by value, partitions its state
/// into shards, and spawns the worker pool; [`Self::submit`] feeds
/// queries (blocking once the in-flight bound is hit);
/// [`Self::drain`] waits for quiescence and returns outcomes in
/// submission order; [`Self::shutdown`] merges everything back and
/// returns the network, which then behaves as if the engine's queries
/// had run through it directly (modulo the documented relaxations).
///
/// ```
/// use ars_core::engine::{EngineOptions, QueryEngine};
/// use ars_core::{RangeSelectNetwork, SystemConfig};
/// use ars_lsh::RangeSet;
///
/// let net = RangeSelectNetwork::new(50, SystemConfig::default());
/// let mut engine = QueryEngine::launch(
///     net,
///     EngineOptions { shards: 4, workers: 2, queue: 64 },
/// );
/// engine.submit(&RangeSet::interval(30, 50));
/// engine.submit(&RangeSet::interval(30, 50));
/// let (net, outcomes) = engine.shutdown();
/// let outcomes = outcomes.expect("no worker panicked");
/// assert_eq!(outcomes.len(), 2);
/// assert_eq!(net.stats().queries, 2);
/// ```
pub struct QueryEngine {
    shared: Arc<Shared>,
    donor: RangeSelectNetwork,
    streams: Vec<DetRng>,
    next_seq: u64,
    drained_upto: u64,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// [`Self::try_submit`] refusals.
    rejected: u64,
    /// Virtual instant the single-server queue model frees up — admission
    /// state for [`Self::submit_timed`].
    vclock_finish: u64,
    /// Last arrival passed to [`Self::submit_timed`] (must not decrease).
    last_arrival: u64,
    /// Virtual service cost per admitted query in the admission model.
    service_cost: u64,
}

impl QueryEngine {
    /// Partition `net` into shards and spawn the worker pool.
    ///
    /// # Panics
    /// Panics if `opts.shards` or `opts.queue` is zero.
    pub fn launch(mut net: RangeSelectNetwork, opts: EngineOptions) -> QueryEngine {
        assert!(opts.shards >= 1, "engine needs at least 1 shard");
        assert!(opts.queue >= 1, "engine queue must admit at least 1 query");
        let nworkers = opts.resolved_workers();
        let streams = net.rng.split_streams(opts.shards);
        let core = EngineCore::from_network(&mut net, opts.shards);
        let (tx, rx) = crossbeam::channel::unbounded();
        let shared = Arc::new(Shared {
            core,
            sched: Mutex::new(Sched::new(opts.shards)),
            tx,
            results: Mutex::new(FxHashMap::default()),
            flow: StdMutex::new(0),
            flow_cv: Condvar::new(),
            queue_cap: opts.queue,
            failure: Mutex::new(None),
            shed_set: Mutex::new(HashSet::new()),
            shed_count: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let workers = (0..nworkers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = rx.clone();
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        QueryEngine {
            shared,
            donor: net,
            streams,
            next_seq: 0,
            drained_upto: 0,
            workers,
            rejected: 0,
            vclock_finish: 0,
            last_arrival: 0,
            service_cost: BASE_SERVICE,
        }
    }

    /// Submit a query, blocking while the in-flight bound is reached.
    /// Returns the query's sequence number (its index in drain order).
    /// The origin peer is drawn here, from the home shard's RNG stream,
    /// so draws happen in submission order regardless of schedule.
    ///
    /// # Panics
    /// Panics if `q` is empty.
    pub fn submit(&mut self, q: &RangeSet) -> u64 {
        assert!(!q.is_empty(), "cannot query an empty range");
        let seq = self.next_seq;
        self.next_seq += 1;
        let home = (seq % self.streams.len() as u64) as usize;
        let origin = {
            let node_ids = self.shared.core.ring.node_ids();
            node_ids[self.streams[home].gen_index(node_ids.len())]
        };
        {
            let mut inflight = self.shared.flow.lock().unwrap_or_else(|e| e.into_inner());
            while *inflight >= self.shared.queue_cap {
                inflight = self
                    .shared
                    .flow_cv
                    .wait(inflight)
                    .unwrap_or_else(|e| e.into_inner());
            }
            *inflight += 1;
        }
        self.shared
            .tx
            .send(Job::Prepare(seq, q.clone(), origin))
            .expect("engine workers alive");
        seq
    }

    /// Non-blocking [`Self::submit`]: refuses with
    /// [`SubmitError::QueueFull`] when the in-flight bound is reached,
    /// so an overloaded engine pushes back instead of queueing unbounded
    /// wait time. A refused query consumes no sequence number and no
    /// randomness — admitting the same queries later reproduces the same
    /// outcomes.
    ///
    /// # Panics
    /// Panics if `q` is empty.
    pub fn try_submit(&mut self, q: &RangeSet) -> Result<u64, SubmitError> {
        assert!(!q.is_empty(), "cannot query an empty range");
        {
            let mut inflight = self.shared.flow.lock().unwrap_or_else(|e| e.into_inner());
            if *inflight >= self.shared.queue_cap {
                drop(inflight);
                self.rejected += 1;
                self.shared.core.telemetry.counter_add("engine.rejected", 1);
                return Err(SubmitError::QueueFull);
            }
            *inflight += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let home = (seq % self.streams.len() as u64) as usize;
        let origin = {
            let node_ids = self.shared.core.ring.node_ids();
            node_ids[self.streams[home].gen_index(node_ids.len())]
        };
        self.shared
            .tx
            .send(Job::Prepare(seq, q.clone(), origin))
            .expect("engine workers alive");
        Ok(seq)
    }

    /// Deadline-aware submission: the query arrives at virtual time
    /// `arrival` and is worthless once its start would exceed
    /// `arrival + deadline`.
    ///
    /// Admission is judged against a deterministic single-server queue
    /// model: each admitted query occupies the virtual server for
    /// [`Self::set_service_cost`] units, so a query starts at
    /// `max(server-free instant, arrival)`. A query that cannot start in
    /// time is *doomed at admission* (deterministically — no thread
    /// schedule involved) and *shed at dequeue* by the scheduler: it
    /// holds an in-flight slot until a worker drops it (so doomed load
    /// still applies backpressure), then vanishes from drain output,
    /// counted in [`AdmissionStats::shed`] and the `engine.shed`
    /// telemetry counter. Shed queries consume no randomness: the
    /// admitted subsequence reproduces bit-identically.
    ///
    /// Blocks for an in-flight slot like [`Self::submit`].
    ///
    /// # Panics
    /// Panics if `q` is empty or `arrival` decreases between calls.
    pub fn submit_timed(&mut self, q: &RangeSet, arrival: u64, deadline: u64) -> Admission {
        assert!(!q.is_empty(), "cannot query an empty range");
        assert!(
            arrival >= self.last_arrival,
            "arrivals must be non-decreasing"
        );
        self.last_arrival = arrival;
        let seq = self.next_seq;
        self.next_seq += 1;
        let start = self.vclock_finish.max(arrival);
        let shed = start > arrival.saturating_add(deadline);
        if !shed {
            // Only served work occupies the virtual server; shedding is
            // what keeps the queue from collapsing under a burst.
            self.vclock_finish = start + self.service_cost;
        }
        {
            let mut inflight = self.shared.flow.lock().unwrap_or_else(|e| e.into_inner());
            while *inflight >= self.shared.queue_cap {
                inflight = self
                    .shared
                    .flow_cv
                    .wait(inflight)
                    .unwrap_or_else(|e| e.into_inner());
            }
            *inflight += 1;
        }
        if shed {
            self.shared
                .tx
                .send(Job::Shed(seq))
                .expect("engine workers alive");
            return Admission::Shed(seq);
        }
        let home = (seq % self.streams.len() as u64) as usize;
        let origin = {
            let node_ids = self.shared.core.ring.node_ids();
            node_ids[self.streams[home].gen_index(node_ids.len())]
        };
        self.shared
            .tx
            .send(Job::Prepare(seq, q.clone(), origin))
            .expect("engine workers alive");
        Admission::Accepted(seq)
    }

    /// Set the virtual service cost per query in the admission model
    /// (default [`BASE_SERVICE`]).
    ///
    /// # Panics
    /// Panics if `cost` is zero.
    pub fn set_service_cost(&mut self, cost: u64) {
        assert!(cost > 0, "service cost must be positive");
        self.service_cost = cost;
    }

    /// The admission-control ledger so far. On a healthy run,
    /// `submitted == completed + shed + queued`.
    pub fn admission(&self) -> AdmissionStats {
        AdmissionStats {
            submitted: self.next_seq,
            rejected: self.rejected,
            shed: self.shared.shed_count.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            queued: self.in_flight() as u64,
        }
    }

    /// Queries submitted but not yet committed.
    pub fn in_flight(&self) -> usize {
        *self.shared.flow.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arm the test-only fault hook: the next query equal to `q` panics
    /// at `stage` (`"prepare"` or `"commit"`).
    #[cfg(test)]
    fn poison(&self, q: RangeSet, stage: &'static str) {
        *self.shared.core.poison.lock() = Some((q, stage));
    }

    /// Wait until every submitted query has committed (or tombstoned, or
    /// been shed), then return their outcomes in submission order (only
    /// those not already drained; shed queries produce no outcome).
    ///
    /// The wait always terminates: a worker panic is caught at the job
    /// boundary, frees its in-flight slot, and latches an
    /// [`EngineError`], which this returns instead of the outcomes. Once
    /// poisoned, the engine stays poisoned — later drains (and
    /// [`Self::shutdown`]) keep reporting the first failure.
    pub fn drain(&mut self) -> Result<Vec<QueryOutcome>, EngineError> {
        {
            let mut inflight = self.shared.flow.lock().unwrap_or_else(|e| e.into_inner());
            while *inflight > 0 {
                inflight = self
                    .shared
                    .flow_cv
                    .wait(inflight)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        let mut results = self.shared.results.lock();
        let mut shed = self.shared.shed_set.lock();
        if let Some(err) = self.shared.failure.lock().clone() {
            // Drop whatever partial results this window produced; the
            // batch is not trustworthy once a commit unwound mid-flight.
            for seq in self.drained_upto..self.next_seq {
                results.remove(&seq);
                shed.remove(&seq);
            }
            self.drained_upto = self.next_seq;
            return Err(err);
        }
        let outcomes = (self.drained_upto..self.next_seq)
            .filter_map(|seq| {
                if shed.remove(&seq) {
                    // Shed at dequeue: no outcome, by design — already
                    // counted in `AdmissionStats::shed`.
                    return None;
                }
                Some(results.remove(&seq).expect("committed query has a result"))
            })
            .collect();
        self.drained_upto = self.next_seq;
        Ok(outcomes)
    }

    /// Drain, stop the workers, and merge the shards back into the
    /// network. Returns the network and any outcomes not yet drained —
    /// or the latched [`EngineError`] if a worker panicked, in which case
    /// the merged network may contain a partially applied commit.
    pub fn shutdown(mut self) -> (RangeSelectNetwork, Result<Vec<QueryOutcome>, EngineError>) {
        let outcomes = self.drain();
        for _ in 0..self.workers.len() {
            let _ = self.shared.tx.send(Job::Stop);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let shared = Arc::try_unwrap(self.shared)
            .ok()
            .expect("joined workers released the engine state");
        let mut net = self.donor;
        shared.core.reassemble(&mut net);
        // Advance the network generator to stream 0's final state: a
        // later plain `query` continues the deterministic sequence.
        net.rng = self.streams.swap_remove(0);
        (net, outcomes)
    }
}

impl RangeSelectNetwork {
    /// The engine's single-threaded inline reference: the same shard
    /// partitioning, per-shard RNG streams, cache segments, and commit
    /// procedure as [`Self::query_batch_concurrent`], executed one query
    /// at a time in submission order on the calling thread. This is the
    /// oracle the schedule-invariance suite compares the concurrent
    /// engine against; with `shards == 1` it reproduces [`Self::query`]
    /// run in a loop bit for bit (outcomes, stats, and cache accounting).
    pub fn query_trace_sharded(
        &mut self,
        queries: &[RangeSet],
        shards: usize,
    ) -> Vec<QueryOutcome> {
        assert!(shards >= 1, "engine needs at least 1 shard");
        let mut streams = self.rng.split_streams(shards);
        let core = EngineCore::from_network(self, shards);
        let mut outcomes = Vec::with_capacity(queries.len());
        for (seq, q) in queries.iter().enumerate() {
            let home = seq % shards;
            let origin = {
                let node_ids = core.ring.node_ids();
                node_ids[streams[home].gen_index(node_ids.len())]
            };
            let prepared = core.prepare(q, origin);
            outcomes.push(core.commit(seq as u64, prepared));
        }
        core.reassemble(self);
        self.rng = streams.swap_remove(0);
        outcomes
    }

    /// Run `queries` through the concurrent engine with a single worker —
    /// sharded state, pipelined prepare/commit, sequential-exact cache
    /// accounting. Outcomes are bitwise equal to
    /// [`Self::query_trace_sharded`] at the same shard count.
    pub fn query_batch_sharded(
        &mut self,
        queries: &[RangeSet],
        shards: usize,
    ) -> Vec<QueryOutcome> {
        let opts = EngineOptions {
            shards,
            workers: 1,
            queue: self.config.engine_queue,
        };
        self.query_batch_concurrent_with(queries, opts)
    }

    /// Run `queries` through the concurrent engine configured by
    /// [`SystemConfig`] (`engine_shards` / `engine_workers` /
    /// `engine_queue`). Outcomes are schedule-invariant: bitwise equal
    /// across worker counts, equal to [`Self::query_trace_sharded`] at
    /// the same shard count.
    pub fn query_batch_concurrent(&mut self, queries: &[RangeSet]) -> Vec<QueryOutcome> {
        let opts = EngineOptions::from_config(&self.config);
        self.query_batch_concurrent_with(queries, opts)
    }

    /// [`Self::query_batch_concurrent`] with explicit engine options.
    pub fn query_batch_concurrent_with(
        &mut self,
        queries: &[RangeSet],
        opts: EngineOptions,
    ) -> Vec<QueryOutcome> {
        let telemetry = self.telemetry.clone();
        let span = telemetry.span(
            "engine.batch",
            &[
                ("queries", queries.len().into()),
                ("shards", opts.shards.into()),
                ("workers", opts.resolved_workers().into()),
            ],
        );
        let net = std::mem::replace(self, RangeSelectNetwork::placeholder());
        let mut engine = QueryEngine::launch(net, opts);
        for q in queries {
            engine.submit(q);
        }
        let (net, outcomes) = engine.shutdown();
        *self = net;
        // The batch API has no error channel; a worker panic propagates
        // as a panic on the calling thread (previously it deadlocked or
        // aborted, so this is strictly more diagnosable).
        let outcomes = outcomes.expect("engine worker panicked");
        telemetry.span_end(span, &[("queries", outcomes.len().into())]);
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: u32, hi: u32) -> RangeSet {
        RangeSet::interval(lo, hi)
    }

    fn trace() -> Vec<RangeSet> {
        let mut qs = Vec::new();
        for i in 0..60u32 {
            let lo = (i * 41) % 900;
            qs.push(r(lo, lo + 12 + (i % 5) * 25));
            if i % 4 == 0 {
                qs.push(r(100, 160)); // popular repeat
            }
        }
        qs
    }

    #[test]
    fn shard_of_in_bounds_and_spread() {
        for nshards in [1usize, 2, 4, 7, 16] {
            let mut seen = vec![false; nshards];
            for p in 0..10_000u32 {
                let s = shard_of(p.wrapping_mul(2_654_435_761), nshards);
                assert!(s < nshards);
                seen[s] = true;
            }
            assert!(seen.iter().all(|&b| b), "{nshards} shards not all hit");
        }
    }

    #[test]
    fn single_shard_engine_reproduces_sequential_accounting() {
        // Satellite: one shard == the old global cache + global RNG,
        // exactly — outcomes (including hops), stats, and every cache
        // counter.
        for capacity in [0usize, 3] {
            let config = SystemConfig::default()
                .with_seed(77)
                .with_padding(0.1)
                .with_ident_cache_capacity(capacity);
            let mut seq = RangeSelectNetwork::new(40, config.clone());
            let mut eng = RangeSelectNetwork::new(40, config);
            let qs = trace();
            let out_seq: Vec<QueryOutcome> = qs.iter().map(|q| seq.query(q)).collect();
            let out_eng = eng.query_trace_sharded(&qs, 1);
            assert_eq!(out_seq, out_eng, "capacity {capacity}");
            assert_eq!(seq.stats(), eng.stats());
            let (sc, ec) = (seq.identifier_cache(), eng.identifier_cache());
            assert_eq!(sc.hits(), ec.hits());
            assert_eq!(sc.misses(), ec.misses());
            assert_eq!(sc.evictions(), ec.evictions());
            assert_eq!(sc.len(), ec.len());
            // And the engine-run network continues the same RNG stream.
            assert_eq!(seq.query(&r(5, 50)), eng.query(&r(5, 50)));
        }
    }

    #[test]
    fn single_worker_engine_matches_inline_reference() {
        for shards in [1usize, 2, 4, 7] {
            let config = SystemConfig::default().with_seed(21);
            let mut inline = RangeSelectNetwork::new(40, config.clone());
            let mut engine = RangeSelectNetwork::new(40, config);
            let qs = trace();
            let out_inline = inline.query_trace_sharded(&qs, shards);
            let out_engine = engine.query_batch_sharded(&qs, shards);
            assert_eq!(out_inline, out_engine, "shards {shards}");
            assert_eq!(inline.stats(), engine.stats());
            assert_eq!(
                inline.identifier_cache().hits(),
                engine.identifier_cache().hits(),
                "single worker prepares in submission order"
            );
            assert_eq!(
                inline.identifier_cache().misses(),
                engine.identifier_cache().misses()
            );
        }
    }

    #[test]
    fn layered_engine_matches_layered_sequential() {
        // One shard: the engine must reproduce the layered sequential
        // path bit for bit, same as the independent-mode guarantee.
        let layered = SystemConfig::default()
            .with_seed(61)
            .with_placement_mode(PlacementMode::Layered)
            .with_probes(8);
        let mut seq = RangeSelectNetwork::new(40, layered.clone());
        let mut eng = RangeSelectNetwork::new(40, layered.clone());
        let qs = trace();
        let out_seq: Vec<QueryOutcome> = qs.iter().map(|q| seq.query(q)).collect();
        let out_eng = eng.query_trace_sharded(&qs, 1);
        assert_eq!(out_seq, out_eng);
        assert_eq!(seq.stats(), eng.stats());
        assert!(
            seq.stats().walk_steps > 0,
            "layered queries walk successors"
        );

        // Multi-shard, real worker pool: invariant against the inline
        // sharded reference.
        let reference = {
            let mut net = RangeSelectNetwork::new(40, layered.clone());
            net.query_trace_sharded(&qs, 4)
        };
        for workers in [1usize, 4] {
            let mut net = RangeSelectNetwork::new(40, layered.clone());
            let opts = EngineOptions {
                shards: 4,
                workers,
                queue: 32,
            };
            let out = net.query_batch_concurrent_with(&qs, opts);
            assert_eq!(reference, out, "workers {workers}");
        }
    }

    #[test]
    fn concurrent_outcomes_invariant_across_worker_counts() {
        let shards = 4;
        let qs = trace();
        let reference = {
            let mut net = RangeSelectNetwork::new(40, SystemConfig::default().with_seed(33));
            net.query_trace_sharded(&qs, shards)
        };
        for workers in [1usize, 2, 3, 8] {
            let mut net = RangeSelectNetwork::new(40, SystemConfig::default().with_seed(33));
            let opts = EngineOptions {
                shards,
                workers,
                queue: 64,
            };
            let out = net.query_batch_concurrent_with(&qs, opts);
            assert_eq!(reference, out, "workers {workers}");
        }
    }

    #[test]
    fn concurrent_conserves_cache_ledger() {
        let qs = trace();
        let mut net = RangeSelectNetwork::new(40, SystemConfig::default().with_seed(9));
        let opts = EngineOptions {
            shards: 4,
            workers: 4,
            queue: 32,
        };
        let out = net.query_batch_concurrent_with(&qs, opts);
        assert_eq!(out.len(), qs.len());
        let cache = net.identifier_cache();
        assert_eq!(
            cache.hits() + cache.misses(),
            qs.len() as u64,
            "each query does exactly one cache lookup"
        );
        assert_eq!(net.stats().queries, qs.len() as u64);
        assert_eq!(
            net.stats().lookups,
            out.iter().map(|o| o.attempts as u64).sum::<u64>()
        );
    }

    #[test]
    fn streaming_submit_drain_shutdown() {
        let config = SystemConfig::default().with_seed(55);
        let net = RangeSelectNetwork::new(30, config.clone());
        let mut engine = QueryEngine::launch(
            net,
            EngineOptions {
                shards: 4,
                workers: 2,
                queue: 8,
            },
        );
        let qs = trace();
        let (head, tail) = qs.split_at(qs.len() / 2);
        for q in head {
            engine.submit(q);
        }
        let first = engine.drain().expect("no worker panicked");
        assert_eq!(first.len(), head.len());
        assert_eq!(engine.in_flight(), 0);
        for q in tail {
            engine.submit(q);
        }
        let (net, second) = engine.shutdown();
        let second = second.expect("no worker panicked");
        assert_eq!(second.len(), tail.len());
        assert_eq!(net.stats().queries, qs.len() as u64);

        // The streamed run equals one batched run of the whole trace.
        let mut batched = RangeSelectNetwork::new(30, config);
        let out = batched.query_batch_concurrent_with(
            &qs,
            EngineOptions {
                shards: 4,
                workers: 2,
                queue: 8,
            },
        );
        let streamed: Vec<QueryOutcome> = first.into_iter().chain(second).collect();
        assert_eq!(out, streamed);
        assert_eq!(batched.stats(), net.stats());
    }

    #[test]
    fn tiny_queue_backpressure_makes_progress() {
        let net = RangeSelectNetwork::new(20, SystemConfig::default().with_seed(3));
        let mut engine = QueryEngine::launch(
            net,
            EngineOptions {
                shards: 2,
                workers: 2,
                queue: 1,
            },
        );
        for q in trace() {
            engine.submit(&q);
            assert!(engine.in_flight() <= 1);
        }
        let (net, out) = engine.shutdown();
        let out = out.expect("no worker panicked");
        assert_eq!(out.len(), trace().len());
        assert_eq!(net.stats().queries, trace().len() as u64);
    }

    #[test]
    fn empty_batch_is_identity() {
        let config = SystemConfig::default().with_seed(13);
        let mut a = RangeSelectNetwork::new(25, config.clone());
        let mut b = RangeSelectNetwork::new(25, config);
        let out = a.query_batch_concurrent_with(
            &[],
            EngineOptions {
                shards: 8,
                workers: 2,
                queue: 4,
            },
        );
        assert!(out.is_empty());
        assert_eq!(a.stats().queries, 0);
        // State roundtrips: identical subsequent behaviour.
        assert_eq!(a.query(&r(1, 40)), b.query(&r(1, 40)));
    }

    #[test]
    fn network_usable_after_concurrent_batch() {
        // `query_batch_concurrent` swaps the network out and back in; a
        // plain query afterwards must see the cached partitions.
        let mut net = RangeSelectNetwork::new(30, SystemConfig::default().with_seed(71));
        net.query_batch_concurrent_with(
            &[r(200, 260), r(200, 260)],
            EngineOptions {
                shards: 4,
                workers: 2,
                queue: 16,
            },
        );
        let out = net.query(&r(200, 260));
        assert!(out.exact, "partition cached by the engine must be found");
    }

    #[test]
    fn per_shard_counters_sum_to_totals() {
        let mut net = RangeSelectNetwork::new(30, SystemConfig::default().with_seed(17));
        let tel = ars_telemetry::Telemetry::recording();
        net.set_telemetry(tel.clone());
        let qs = trace();
        net.query_batch_concurrent_with(
            &qs,
            EngineOptions {
                shards: 4,
                workers: 2,
                queue: 32,
            },
        );
        let snap = tel.snapshot();
        let per_shard: u64 = (0..4).map(|i| snap.counter(SHARD_QUERIES[i])).sum();
        assert_eq!(per_shard, qs.len() as u64);
        let hits: u64 = (0..4).map(|i| snap.counter(SHARD_CACHE_HITS[i])).sum();
        let misses: u64 = (0..4).map(|i| snap.counter(SHARD_CACHE_MISSES[i])).sum();
        assert_eq!(hits, net.identifier_cache().hits());
        assert_eq!(misses, net.identifier_cache().misses());
        assert_eq!(hits + misses, qs.len() as u64);
    }

    #[test]
    fn engine_emits_batch_span_not_query_spans() {
        let mut net = RangeSelectNetwork::new(20, SystemConfig::default().with_seed(5));
        let tel = ars_telemetry::Telemetry::recording();
        net.set_telemetry(tel.clone());
        net.query_batch_concurrent_with(
            &trace(),
            EngineOptions {
                shards: 2,
                workers: 2,
                queue: 16,
            },
        );
        let starts: Vec<_> = tel
            .events()
            .into_iter()
            .filter(|e| e.kind == ars_telemetry::EventKind::SpanStart)
            .collect();
        assert_eq!(starts.len(), 1, "one engine.batch span, no per-query spans");
        assert_eq!(starts[0].name, "engine.batch");
    }

    #[test]
    fn prepare_panic_latches_error_and_successors_still_commit() {
        let net = RangeSelectNetwork::new(30, SystemConfig::default().with_seed(19));
        let mut engine = QueryEngine::launch(
            net,
            EngineOptions {
                shards: 4,
                workers: 2,
                queue: 8,
            },
        );
        engine.poison(r(666, 700), "prepare");
        engine.submit(&r(10, 50));
        engine.submit(&r(666, 700)); // panics mid-prepare
                                     // Successors enroll past the tombstone — the watermark must not
                                     // wedge behind the dead query (the old deadlock).
        for i in 0..20u32 {
            engine.submit(&r(i * 30 + 1, i * 30 + 40));
        }
        let err = engine.drain().expect_err("poisoned batch must error");
        match &err {
            EngineError::WorkerPanicked {
                seq,
                stage,
                message,
            } => {
                assert_eq!(*seq, 1);
                assert_eq!(*stage, "prepare");
                assert!(message.contains("poisoned"), "got: {message}");
            }
        }
        // Poisoned stays poisoned; shutdown reports the same failure but
        // still hands the network back.
        let (net, outcomes) = engine.shutdown();
        assert_eq!(outcomes, Err(err));
        assert_eq!(net.len(), 30);
    }

    #[test]
    fn commit_panic_releases_conflicting_successors() {
        let net = RangeSelectNetwork::new(30, SystemConfig::default().with_seed(23));
        let mut engine = QueryEngine::launch(
            net,
            EngineOptions {
                shards: 2,
                workers: 2,
                queue: 16,
            },
        );
        engine.poison(r(400, 460), "commit");
        // Identical queries own the same shards, so every successor
        // queues in the panicking commit's FIFOs: the release on unwind
        // is what keeps this from deadlocking.
        for _ in 0..8 {
            engine.submit(&r(400, 460));
        }
        let err = engine.drain().expect_err("commit panic must latch");
        match err {
            EngineError::WorkerPanicked { stage, .. } => assert_eq!(stage, "commit"),
        }
        assert_eq!(engine.in_flight(), 0, "every slot freed despite panics");
    }

    #[test]
    fn try_submit_rejects_at_capacity_without_consuming_anything() {
        let config = SystemConfig::default().with_seed(41);
        let net = RangeSelectNetwork::new(30, config.clone());
        let mut engine = QueryEngine::launch(
            net,
            EngineOptions {
                shards: 2,
                workers: 2,
                queue: 4,
            },
        );
        // Force the full condition deterministically (workers drain real
        // submissions too fast to observe it reliably): pin the in-flight
        // gauge at capacity, which is exactly what try_submit consults.
        *engine.shared.flow.lock().unwrap() = 4;
        assert_eq!(engine.try_submit(&r(10, 60)), Err(SubmitError::QueueFull));
        assert_eq!(engine.try_submit(&r(10, 60)), Err(SubmitError::QueueFull));
        *engine.shared.flow.lock().unwrap() = 0;
        assert_eq!(engine.admission().rejected, 2);
        assert_eq!(engine.admission().submitted, 0, "no seq consumed");
        // A refusal consumed no RNG: the engine replays a twin that never
        // saw the refusals.
        let seq = engine.try_submit(&r(10, 60)).expect("capacity free again");
        assert_eq!(seq, 0);
        let (_, outcomes) = engine.shutdown();
        let outcomes = outcomes.expect("no worker panicked");

        let mut twin = RangeSelectNetwork::new(30, config);
        let expected = twin.query_batch_sharded(&[r(10, 60)], 2);
        assert_eq!(outcomes, expected);
    }

    #[test]
    fn submit_timed_sheds_doomed_queries_and_balances_ledger() {
        let config = SystemConfig::default().with_seed(47);
        let net = RangeSelectNetwork::new(30, config.clone());
        let mut engine = QueryEngine::launch(
            net,
            EngineOptions {
                shards: 2,
                workers: 2,
                queue: 64,
            },
        );
        engine.set_service_cost(100);
        let qs = trace();
        // Everything arrives at t=0 with a 250-unit deadline: the virtual
        // server fits exactly three 100-unit services before any further
        // query would start later than its deadline allows.
        let admitted: Vec<bool> = qs
            .iter()
            .map(|q| !engine.submit_timed(q, 0, 250).is_shed())
            .collect();
        assert_eq!(admitted.iter().filter(|&&a| a).count(), 3);
        assert!(admitted[..3].iter().all(|&a| a), "FIFO admits the head");
        let outcomes = engine.drain().expect("no worker panicked");
        assert_eq!(outcomes.len(), 3, "shed queries produce no outcome");
        let ledger = engine.admission();
        assert_eq!(ledger.submitted, qs.len() as u64);
        assert_eq!(ledger.shed, qs.len() as u64 - 3);
        assert_eq!(ledger.completed, 3);
        assert_eq!(ledger.queued, 0);
        assert_eq!(
            ledger.submitted,
            ledger.completed + ledger.shed + ledger.queued,
            "admission ledger must balance"
        );
        let (net, rest) = engine.shutdown();
        rest.expect("no worker panicked");
        assert_eq!(net.stats().queries, 3, "shed work never touched a shard");

        // Shed queries consume no randomness: a twin that only ever saw
        // the admitted prefix produces bit-identical outcomes.
        let mut twin = RangeSelectNetwork::new(30, config);
        let expected = twin.query_batch_sharded(&qs[..3], 2);
        assert_eq!(outcomes, expected);
    }

    #[test]
    fn submit_timed_with_slack_admits_everything() {
        let net = RangeSelectNetwork::new(30, SystemConfig::default().with_seed(53));
        let mut engine = QueryEngine::launch(
            net,
            EngineOptions {
                shards: 2,
                workers: 2,
                queue: 64,
            },
        );
        engine.set_service_cost(100);
        let qs = trace();
        for (i, q) in qs.iter().enumerate() {
            // Arrivals keep pace with the service rate: nothing is doomed.
            let adm = engine.submit_timed(q, i as u64 * 100, 250);
            assert!(!adm.is_shed(), "query {i} wrongly shed");
        }
        let outcomes = engine.drain().expect("no worker panicked");
        assert_eq!(outcomes.len(), qs.len());
        assert_eq!(engine.admission().shed, 0);
    }

    #[test]
    fn shed_telemetry_counts_match_ledger() {
        let mut net = RangeSelectNetwork::new(20, SystemConfig::default().with_seed(59));
        let tel = ars_telemetry::Telemetry::recording();
        net.set_telemetry(tel.clone());
        let mut engine = QueryEngine::launch(
            net,
            EngineOptions {
                shards: 2,
                workers: 2,
                queue: 32,
            },
        );
        for q in trace() {
            engine.submit_timed(&q, 0, 150);
        }
        engine.drain().expect("no worker panicked");
        let ledger = engine.admission();
        assert!(ledger.shed > 0, "overload scenario must shed");
        assert_eq!(tel.snapshot().counter("engine.shed"), ledger.shed);
        engine.shutdown().1.expect("no worker panicked");
    }

    #[test]
    #[should_panic(expected = "arrivals must be non-decreasing")]
    fn submit_timed_rejects_time_travel() {
        let net = RangeSelectNetwork::new(10, SystemConfig::default());
        let mut engine = QueryEngine::launch(
            net,
            EngineOptions {
                shards: 1,
                workers: 1,
                queue: 8,
            },
        );
        engine.submit_timed(&r(1, 30), 100, 500);
        engine.submit_timed(&r(1, 30), 99, 500);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn engine_rejects_empty_range() {
        let net = RangeSelectNetwork::new(5, SystemConfig::default());
        let mut engine = QueryEngine::launch(
            net,
            EngineOptions {
                shards: 2,
                workers: 1,
                queue: 4,
            },
        );
        engine.submit(&RangeSet::empty());
    }
}
