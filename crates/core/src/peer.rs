//! Per-peer storage state: identifier buckets and the §5.3 local index.

use crate::bucket::{best_of, Bucket, Match};
use crate::config::MatchMeasure;
use crate::index::IntervalIndex;
use ars_chord::Id;
use ars_common::FxHashMap;
use ars_lsh::RangeSet;

/// One peer's cached-partition store.
///
/// A peer owns every identifier between its ring predecessor (exclusive)
/// and itself (inclusive); each owned identifier that has been stored to
/// has a [`Bucket`]. The optional *local index* (§5.3) additionally lets a
/// lookup consider partitions in **all** of the peer's buckets, trading
/// per-lookup work for recall.
#[derive(Debug, Clone, Default)]
pub struct Peer {
    /// Ring position.
    pub id: Id,
    buckets: FxHashMap<u32, Bucket>,
    /// §5.3 local index over everything in `buckets`, maintained on store.
    index: IntervalIndex,
}

impl Peer {
    /// A peer at ring position `id` with no cached partitions.
    pub fn new(id: Id) -> Peer {
        Peer {
            id,
            buckets: FxHashMap::default(),
            index: IntervalIndex::new(),
        }
    }

    /// Store a partition range under `identifier`. Returns true if newly
    /// stored.
    pub fn store(&mut self, identifier: u32, range: RangeSet) -> bool {
        let inserted = self
            .buckets
            .entry(identifier)
            .or_default()
            .insert(range.clone());
        if inserted {
            self.index.insert(range);
        }
        inserted
    }

    /// The bucket for `identifier`, if any partition was ever stored there.
    pub fn bucket(&self, identifier: u32) -> Option<&Bucket> {
        self.buckets.get(&identifier)
    }

    /// Best match for `query` looking only at `identifier`'s bucket
    /// (the paper's base procedure).
    pub fn best_in_bucket(
        &self,
        identifier: u32,
        query: &RangeSet,
        measure: MatchMeasure,
    ) -> Option<Match> {
        self.buckets
            .get(&identifier)
            .and_then(|b| b.best_match(query, measure))
    }

    /// Best match across **all** buckets this peer holds — the §5.3 local
    /// index, answered through a flattened interval tree
    /// ([`IntervalIndex`]): only candidates overlapping the query are
    /// scored.
    pub fn best_across_buckets(&self, query: &RangeSet, measure: MatchMeasure) -> Option<Match> {
        self.index.best_match(query, measure)
    }

    /// Reference implementation of [`Self::best_across_buckets`] as a full
    /// scan — the ablation baseline and test oracle for the index.
    pub fn best_across_buckets_scan(
        &self,
        query: &RangeSet,
        measure: MatchMeasure,
    ) -> Option<Match> {
        best_of(
            self.buckets.values().flat_map(|b| b.ranges().iter()),
            query,
            measure,
        )
    }

    /// Total partitions stored at this peer (the load metric of Fig. 11).
    pub fn partition_count(&self) -> usize {
        self.buckets.values().map(Bucket::len).sum()
    }

    /// Number of distinct identifiers with a non-empty bucket.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// True if this peer stores nothing.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// True if any bucket stores exactly this range.
    pub fn contains_range(&self, range: &RangeSet) -> bool {
        self.buckets.values().any(|b| b.contains(range))
    }

    /// Remove one stored range from `identifier`'s bucket. Returns true if
    /// it was present; an emptied bucket is dropped (so [`Self::bucket`]
    /// goes back to `None`, matching a never-stored identifier). The §5.3
    /// local index has no removal operation, so it is rebuilt from the
    /// surviving entries.
    pub fn evict(&mut self, identifier: u32, range: &RangeSet) -> bool {
        let Some(bucket) = self.buckets.get_mut(&identifier) else {
            return false;
        };
        if !bucket.remove(range) {
            return false;
        }
        if bucket.is_empty() {
            self.buckets.remove(&identifier);
        }
        self.index = IntervalIndex::new();
        for b in self.buckets.values() {
            for r in b.ranges() {
                self.index.insert(r.clone());
            }
        }
        true
    }

    /// Iterate over all stored (identifier, range) pairs without consuming
    /// them — the re-replication sweep reads every peer's inventory to
    /// restore the successor-replication invariant after churn.
    pub fn entries(&self) -> impl Iterator<Item = (u32, &RangeSet)> + '_ {
        self.buckets
            .iter()
            .flat_map(|(&ident, bucket)| bucket.ranges().iter().map(move |r| (ident, r)))
    }

    /// Drain all stored (identifier, range) pairs — used when a peer leaves
    /// gracefully and hands its keys to its successor.
    pub fn drain(&mut self) -> Vec<(u32, RangeSet)> {
        let mut out = Vec::new();
        for (ident, bucket) in self.buckets.drain() {
            for r in bucket.ranges() {
                out.push((ident, r.clone()));
            }
        }
        self.index = IntervalIndex::new();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: u32, hi: u32) -> RangeSet {
        RangeSet::interval(lo, hi)
    }

    #[test]
    fn store_and_count() {
        let mut p = Peer::new(Id(42));
        assert!(p.is_empty());
        assert!(p.store(7, r(0, 10)));
        assert!(p.store(7, r(20, 30)));
        assert!(!p.store(7, r(0, 10))); // dedup within bucket
        assert!(p.store(9, r(0, 10))); // same range, different bucket: kept
        assert_eq!(p.partition_count(), 3);
        assert_eq!(p.bucket_count(), 2);
    }

    #[test]
    fn best_in_bucket_scoped_to_identifier() {
        let mut p = Peer::new(Id(1));
        p.store(7, r(0, 10));
        p.store(9, r(100, 110));
        let q = r(100, 110);
        // Identifier 7's bucket does not see the exact match under id 9.
        let m7 = p.best_in_bucket(7, &q, MatchMeasure::Jaccard).unwrap();
        assert_eq!(m7.score, 0.0);
        let m9 = p.best_in_bucket(9, &q, MatchMeasure::Jaccard).unwrap();
        assert_eq!(m9.score, 1.0);
        assert!(p.best_in_bucket(999, &q, MatchMeasure::Jaccard).is_none());
    }

    #[test]
    fn index_agrees_with_scan() {
        let mut p = Peer::new(Id(2));
        for i in 0..50u32 {
            p.store(i % 7, r(i * 13 % 800, i * 13 % 800 + 40));
        }
        for lo in [0u32, 100, 400, 700] {
            let q = r(lo, lo + 60);
            for m in [MatchMeasure::Jaccard, MatchMeasure::Containment] {
                let a = p.best_across_buckets(&q, m).unwrap();
                let b = p.best_across_buckets_scan(&q, m).unwrap();
                assert_eq!(a.score, b.score, "query {q} measure {m:?}");
            }
        }
    }

    #[test]
    fn local_index_sees_all_buckets() {
        let mut p = Peer::new(Id(1));
        p.store(7, r(0, 10));
        p.store(9, r(100, 110));
        let q = r(100, 110);
        let m = p.best_across_buckets(&q, MatchMeasure::Jaccard).unwrap();
        assert_eq!(m.score, 1.0);
        assert_eq!(m.range, r(100, 110));
    }

    #[test]
    fn local_index_empty_peer() {
        let p = Peer::new(Id(0));
        assert!(p
            .best_across_buckets(&r(0, 1), MatchMeasure::Jaccard)
            .is_none());
    }

    #[test]
    fn entries_iterates_without_consuming() {
        let mut p = Peer::new(Id(1));
        p.store(7, r(0, 10));
        p.store(7, r(20, 30));
        p.store(9, r(100, 110));
        let mut seen: Vec<(u32, RangeSet)> = p.entries().map(|(i, r)| (i, r.clone())).collect();
        seen.sort_by(|a, b| (a.0, a.1.intervals()).cmp(&(b.0, b.1.intervals())));
        assert_eq!(seen, vec![(7, r(0, 10)), (7, r(20, 30)), (9, r(100, 110))]);
        assert_eq!(p.partition_count(), 3, "entries must not drain");
    }

    #[test]
    fn evict_removes_exactly_one_entry_and_repairs_the_index() {
        let mut p = Peer::new(Id(1));
        p.store(7, r(0, 10));
        p.store(7, r(20, 30));
        p.store(9, r(100, 110));
        assert!(!p.evict(7, &r(50, 60)), "absent range");
        assert!(!p.evict(999, &r(0, 10)), "absent bucket");
        assert!(p.evict(7, &r(0, 10)));
        assert!(!p.evict(7, &r(0, 10)), "second evict is a no-op");
        assert_eq!(p.partition_count(), 2);
        // The evicted range is gone from the local index too.
        let m = p.best_across_buckets(&r(0, 10), MatchMeasure::Jaccard);
        assert!(
            m.map(|m| m.score < 1.0).unwrap_or(true),
            "evicted range must not be matchable"
        );
        // Emptying a bucket drops it entirely.
        assert!(p.evict(9, &r(100, 110)));
        assert!(p.bucket(9).is_none());
    }

    #[test]
    fn drain_hands_over_everything() {
        let mut p = Peer::new(Id(1));
        p.store(7, r(0, 10));
        p.store(9, r(100, 110));
        let mut handed = p.drain();
        handed.sort_by_key(|(i, _)| *i);
        assert_eq!(handed.len(), 2);
        assert_eq!(handed[0], (7, r(0, 10)));
        assert_eq!(handed[1], (9, r(100, 110)));
        assert!(p.is_empty());
        assert_eq!(p.partition_count(), 0);
    }
}
