//! The range-selection system over a *live* Chord network.
//!
//! The experiment harness measures steady state over a static ring
//! ([`crate::RangeSelectNetwork`]); this module composes the same §4 query
//! procedure with [`ars_chord::DynamicNetwork`] so peers can join, leave,
//! and crash mid-stream:
//!
//! * a graceful **leave** hands the peer's buckets to its ring successor
//!   (who becomes the owner of its identifier interval), so cached
//!   partitions survive;
//! * an abrupt **fail** loses the peer's buckets — subsequent queries miss
//!   and re-cache, which is exactly the paper's soft-state story (cached
//!   partitions are rebuildable from the sources).
//!
//! With [`SystemConfig::with_replication`] set above 1, every cached
//! partition additionally lives at the first `r` alive successors of its
//! placed identifier, and [`ChurnNetwork::re_replicate`] restores that
//! invariant after each membership change — so abrupt failures stop losing
//! buckets. The companion [`ChurnNetwork::query_resilient`] path retries
//! failed lookups with deterministic backoff
//! ([`crate::resilient::RetryPolicy`]) and degrades to source fetch
//! instead of erroring.
//!
//! With [`SystemConfig::with_durability`] set, every peer additionally
//! persists its bucket placements and evictions to a crash-faulted
//! [`ars_store::BucketStore`], which splits the abrupt-departure story in
//! two: [`ChurnNetwork::fail`] still models a machine that never returns
//! (its disks are gone), while [`ChurnNetwork::crash`] parks the disks and
//! [`ChurnNetwork::restart`] replays them — recovering every entry that
//! survived the torn tail — before rejoining the ring. The
//! [`ChurnNetwork::anti_entropy_round`] repair loop then exchanges
//! per-bucket digests between replica owners and re-replicates only the
//! missing entries, converging to the same state as the oracle
//! [`ChurnNetwork::re_replicate`] sweep under a per-round budget.
//!
//! [`ChurnNetwork::partition`] splits the network into isolated islands:
//! each island's ring collapses onto its own members (split-brain),
//! queries keep being answered island-locally — flagged
//! [`QueryOutcome::partition_degraded`] when an identifier's global owner
//! is across the split — and cache writes land at island-local owners
//! only. [`ChurnNetwork::heal`] re-merges the rings; the anti-entropy
//! loop then reconciles the diverged replica sets back to the same fixed
//! point as the oracle sweep, which is the whole partition-tolerance
//! story: degraded availability during the window, convergence after it.

use crate::bucket::Match;
use crate::config::{Placement, SystemConfig};
use crate::durable::{decode_range, digest_bytes, encode_range};
use crate::network::{QueryOutcome, RangeSelectNetwork};
use crate::peer::Peer;
use crate::resilient::{
    BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker, FailureDetector, HedgePolicy,
    ResilienceStats, RetryPolicy, BASE_SERVICE, HOP_COST,
};
use ars_chord::dynamic::ChordError;
use ars_chord::{DynamicNetwork, Id};
use ars_common::{DetRng, FxHashMap};
use ars_lsh::{HashGroups, RangeSet};
use ars_store::BucketStore;
use ars_telemetry::Telemetry;

/// One row of [`ChurnNetwork::inventory`]: a `(peer, identifier,
/// intervals)` triple in the canonical comparison form.
pub type InventoryEntry = (u32, u32, Vec<(u32, u32)>);

/// What one [`ChurnNetwork::anti_entropy_round`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairRound {
    /// Per-(peer, identifier, owner) digest comparisons performed.
    pub digests_compared: u64,
    /// Entries pushed to replica owners that were missing them.
    pub entries_sent: u64,
    /// True if the per-round budget cut the sweep short — another round
    /// is needed before the network can be considered quiescent.
    pub hit_budget: bool,
}

/// The paper's system over a dynamic (churning) Chord network.
pub struct ChurnNetwork {
    config: SystemConfig,
    chord: DynamicNetwork,
    storage: FxHashMap<u32, Peer>,
    /// Durable bucket stores of alive peers (empty unless
    /// [`SystemConfig::with_durability`] is set).
    logs: FxHashMap<u32, BucketStore>,
    /// Parked disks of crashed-but-restartable peers. `None` values mark
    /// peers crashed without durability (nothing to replay at restart).
    crashed: FxHashMap<u32, Option<BucketStore>>,
    groups: HashGroups,
    rng: DetRng,
    retry: RetryPolicy,
    resilience: ResilienceStats,
    /// Probability that any single lookup attempt is lost in flight
    /// (request or reply dropped), exercising the retry path. 0 = clean.
    lookup_loss: f64,
    telemetry: Telemetry,
    /// Gray-slow peers: id → service-time multiplier (≥ 2). A slowed peer
    /// still answers correctly; it just takes `factor × BASE_SERVICE`
    /// virtual time to serve a fetch.
    slow: std::collections::BTreeMap<u32, u64>,
    /// Virtual clock, advanced by query latencies, probe sweeps, and
    /// backoff waits. Purely observational for the legacy paths; breaker
    /// cooldowns and hedge timing read it.
    clock: u64,
    /// Per-peer latency estimator feeding suspicion scores.
    detector: FailureDetector,
    /// Per-peer circuit breakers (populated lazily; only meaningful when
    /// `breaker_cfg` is set).
    breakers: std::collections::BTreeMap<u32, CircuitBreaker>,
    /// Breaker configuration; `None` (default) disables breakers.
    breaker_cfg: Option<BreakerConfig>,
    /// Hedged-lookup policy; `None` (default) disables hedging.
    hedge: Option<HedgePolicy>,
    /// Observed per-identifier fetch latencies — the distribution hedge
    /// delays adapt to (the same histogram shape the telemetry registry
    /// uses, so bench reports and hedge timing read identical quantiles).
    latency_hist: ars_telemetry::Hist,
}

impl ChurnNetwork {
    /// Grow a network to `n_peers` through the join protocol (each join
    /// followed by stabilization, as a slow deployment would).
    ///
    /// Returns [`ChordError::NotConverged`] if the ring fails to reach a
    /// consistent state while growing — impossible with the default
    /// stabilization effort, but reachable through
    /// [`Self::with_growth_rounds`].
    pub fn new(n_peers: usize, config: SystemConfig) -> Result<ChurnNetwork, ChordError> {
        Self::with_growth_rounds(n_peers, config, 32, 64)
    }

    /// Like [`Self::new`] but with explicit stabilization effort:
    /// `per_join_rounds` rounds after each join and at most `final_rounds`
    /// rounds of final convergence. Starving the protocol (e.g. zero
    /// per-join rounds and too few final rounds for the ring size) makes
    /// growth fail with [`ChordError::NotConverged`] instead of producing
    /// a silently broken network.
    pub fn with_growth_rounds(
        n_peers: usize,
        config: SystemConfig,
        per_join_rounds: usize,
        final_rounds: usize,
    ) -> Result<ChurnNetwork, ChordError> {
        assert!(n_peers >= 1);
        assert!(
            config.placement_mode == crate::config::PlacementMode::Independent,
            "layered placement is supported on the static-network query paths \
             (sequential, batched, engine), not under churn"
        );
        let mut rng = DetRng::new(config.seed);
        let mut group_rng = rng.fork();
        let groups = HashGroups::generate(config.family, config.k, config.l, &mut group_rng);
        let first = Id(rng.next_u32());
        let mut chord = DynamicNetwork::bootstrap(first, 8);
        let mut storage = FxHashMap::default();
        storage.insert(first.0, Peer::new(first));
        while chord.len() < n_peers {
            let id = Id(rng.next_u32());
            if chord.node_ids().contains(&id) {
                continue;
            }
            chord.join(id, first)?;
            chord.stabilize_all(per_join_rounds);
            storage.insert(id.0, Peer::new(id));
        }
        chord
            .stabilize_until_consistent(final_rounds)
            .ok_or(ChordError::NotConverged {
                rounds: final_rounds,
            })?;
        // Enable route caching only after growth: the join/stabilize storm
        // above would clear it on every round anyway.
        chord.set_route_cache_capacity(config.route_cache);
        let mut logs = FxHashMap::default();
        if config.durability.is_some() {
            for &pid in storage.keys() {
                if let Some(store) = Self::make_store(&config, pid) {
                    logs.insert(pid, store);
                }
            }
        }
        Ok(ChurnNetwork {
            config,
            chord,
            storage,
            logs,
            crashed: FxHashMap::default(),
            groups,
            rng,
            retry: RetryPolicy::default(),
            resilience: ResilienceStats::default(),
            lookup_loss: 0.0,
            telemetry: Telemetry::noop(),
            slow: std::collections::BTreeMap::new(),
            clock: 0,
            detector: FailureDetector::new(),
            breakers: std::collections::BTreeMap::new(),
            breaker_cfg: None,
            hedge: None,
            latency_hist: ars_telemetry::Hist::default(),
        })
    }

    /// Install a telemetry sink, shared with the underlying Chord network
    /// so `chord.*` lookup metrics and `resilient.*` retry metrics land in
    /// one recorder. Resilient queries open a `core.query` span
    /// (`path="resilient"`); retries emit `resilient.retry` events;
    /// re-replication emits one `replica.store` event per copy written.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.chord.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The installed telemetry handle (no-op by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Simulate message loss on the lookup path: each attempt (request or
    /// its reply) is independently lost with probability `p` and counts as
    /// a failed attempt, driving the retry machinery. Deterministic — the
    /// coin flips come from the network's seeded RNG stream.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_lookup_loss(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.lookup_loss = p;
    }

    /// Replace the retry policy used by [`Self::query_resilient`].
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        assert!(policy.attempts >= 1, "at least one attempt is required");
        self.retry = policy;
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Resilience counters (retries, fallbacks, re-replication work).
    pub fn resilience(&self) -> &ResilienceStats {
        &self.resilience
    }

    /// Mark `peer` gray-slow: it keeps answering correctly but every fetch
    /// it serves costs `factor × BASE_SERVICE` virtual time. This is the
    /// live-network rendition of [`ars_simnet::SlowWindow`] — a fault no
    /// crash/retry path notices, only the tail latency does.
    ///
    /// # Panics
    /// Panics unless `factor ≥ 2` (1 would be an invisible no-op).
    pub fn set_slow(&mut self, peer: Id, factor: u64) {
        assert!(factor >= 2, "slow factor must be at least 2");
        self.slow.insert(peer.0, factor);
    }

    /// Restore `peer` to healthy service time.
    pub fn clear_slow(&mut self, peer: Id) {
        self.slow.remove(&peer.0);
    }

    /// Deterministically slow `⌊fraction · n⌋` alive peers by `factor`,
    /// chosen stride-spaced through the sorted id order (every
    /// `⌈n/count⌉`-th peer). Stride spacing models independent gray
    /// failures scattered across the fleet: consecutive ring positions
    /// are never both slowed, so a key's replica chain always contains a
    /// healthy substitute. (A *contiguous* slow arc is a correlated
    /// failure-domain scenario — a different experiment.) Crucially for
    /// twin-run experiments, the *same* peers are slowed at every call
    /// with the same membership (no RNG consumed). Returns the victims.
    pub fn slow_fraction(&mut self, fraction: f64, factor: u64) -> Vec<Id> {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let mut ids = self.chord.node_ids();
        ids.sort_unstable();
        let count = (ids.len() as f64 * fraction).floor() as usize;
        if count == 0 {
            return Vec::new();
        }
        let stride = ids.len().div_ceil(count);
        let victims: Vec<Id> = ids.into_iter().step_by(stride).take(count).collect();
        for &v in &victims {
            self.set_slow(v, factor);
        }
        victims
    }

    /// Virtual service time of one fetch served by `peer`:
    /// `BASE_SERVICE`, multiplied by the peer's slow factor if gray-slow.
    pub fn service_time(&self, peer: Id) -> u64 {
        BASE_SERVICE * self.slow.get(&peer.0).copied().unwrap_or(1)
    }

    /// The virtual clock (advanced by queries, probes, and backoffs).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Enable hedged lookups: when a primary fetch would take longer than
    /// the adaptive delay derived from `policy` and the observed latency
    /// distribution, a backup lookup detours to the next replica holder
    /// and the first response wins. Requires replication ≥ 2 to have any
    /// effect (the backup must actually hold the data).
    pub fn enable_hedging(&mut self, policy: HedgePolicy) {
        self.hedge = Some(policy);
    }

    /// Enable per-peer circuit breakers: consecutive suspicious responses
    /// trip a peer open, fetches short-circuit straight to a replica while
    /// it cools down, and one half-open probe closes or re-trips it.
    pub fn enable_breakers(&mut self, config: BreakerConfig) {
        self.breaker_cfg = Some(config);
    }

    /// The per-peer failure detector (latency estimates, suspicion).
    pub fn detector(&self) -> &FailureDetector {
        &self.detector
    }

    /// Breaker state of `peer` at the current virtual clock, if breakers
    /// are enabled and the peer has been observed.
    pub fn breaker_state(&self, peer: Id) -> Option<BreakerState> {
        self.breakers.get(&peer.0).map(|b| b.state(self.clock))
    }

    /// The observed per-fetch latency histogram (what hedge delays and
    /// the tail bench read their quantiles from).
    pub fn observed_latency(&self) -> &ars_telemetry::Hist {
        &self.latency_hist
    }

    /// One health-probe sweep: contact every alive peer (sorted order,
    /// deterministic), feed its service time into the failure detector,
    /// and — when breakers are enabled — record the outcome against its
    /// breaker. Probes are honest traffic: each sweep counts `n` messages
    /// in [`ResilienceStats::probes_sent`] and advances the virtual clock
    /// by one `BASE_SERVICE` round (probes fan out in parallel). Returns
    /// the number of peers probed.
    ///
    /// Run a few sweeps while the fleet is healthy to teach the detector
    /// each peer's baseline; a peer that is slow from the very first
    /// observation becomes its own baseline (phi-accrual semantics) and
    /// only *degradation* relative to it is suspected.
    pub fn probe_peers(&mut self) -> usize {
        let mut ids = self.chord.node_ids();
        ids.sort_unstable();
        let now = self.clock;
        for &id in &ids {
            let svc = self.service_time(id);
            self.resilience.probes_sent += 1;
            self.telemetry.counter_add("resilient.probes", 1);
            self.note_response(id.0, svc, now);
        }
        self.clock += BASE_SERVICE;
        ids.len()
    }

    /// Judge one observed response (service time `svc` from `peer` at
    /// virtual time `now`) against the peer's learned baseline, drive its
    /// breaker, and absorb the sample into the detector. Estimates are
    /// *frozen* while a breaker is non-closed: samples from a degraded
    /// period must not drift the healthy baseline upward, or the
    /// half-open probe would compare the still-slow peer against its own
    /// degradation and wrongly re-close the breaker.
    fn note_response(&mut self, peer: u32, svc: u64, now: u64) {
        let suspicion = self.detector.suspicion(peer, svc);
        let Some(cfg) = self.breaker_cfg else {
            self.detector.observe(peer, svc);
            return;
        };
        let ok = suspicion < cfg.suspicion_threshold;
        let breaker = self
            .breakers
            .entry(peer)
            .or_insert_with(|| CircuitBreaker::new(cfg));
        if breaker.state(now) != BreakerState::Open
            && breaker.record(ok, now) == BreakerTransition::Opened
        {
            self.resilience.breaker_opens += 1;
            self.telemetry.counter_add("resilient.breaker_opens", 1);
        }
        if self
            .breakers
            .get(&peer)
            .is_none_or(|b| b.state(now) == BreakerState::Closed)
        {
            self.detector.observe(peer, svc);
        }
    }

    /// The avoid set for backup routing at `now`: the primary plus every
    /// peer whose breaker is currently open (sorted — `BTreeMap` order —
    /// so the set is deterministic).
    fn avoided_peers(&self, now: u64, primary: Id) -> Vec<Id> {
        let mut avoid = vec![primary];
        for (&id, b) in &self.breakers {
            if id != primary.0 && b.state(now) == BreakerState::Open {
                avoid.push(Id(id));
            }
        }
        avoid
    }

    /// The gray-failure service layer for one identifier fetch, applied
    /// after routing resolved `owner` in `h` hops. Returns `(serving
    /// peer, effective latency, primary latency)`:
    ///
    /// 1. **Breaker short-circuit** — if the primary's breaker is open,
    ///    the fetch goes straight to the successor-list substitute along
    ///    the already-routed chain (one hop per chain step), never
    ///    touching the slow peer.
    /// 2. **Hedge** — otherwise, if the primary would take longer than
    ///    the adaptive hedge delay, a backup lookup detours around the
    ///    primary ([`DynamicNetwork::lookup_detour`], a full independent
    ///    route, honestly costed in [`ResilienceStats::hedge_hops`]) and
    ///    the first response wins:
    ///    `min(primary, delay + backup_route + backup_service)`.
    /// 3. Every contacted peer's service time feeds the failure detector
    ///    and its breaker ([`Self::note_response`]).
    ///
    /// Both mechanisms require replication ≥ 2 (the substitute must hold
    /// the data) and consume **no randomness** — with no gray-slow peers
    /// the fetch is served by `owner` at model latency and this layer is
    /// a pure observer (the tail-tolerance proptests pin this).
    fn gray_fetch(&mut self, origin: Id, key: Id, owner: Id, h: usize) -> (Id, u64, u64) {
        let now = self.clock;
        let primary_svc = self.service_time(owner);
        let primary_lat = h as u64 * HOP_COST + primary_svc;
        let backup_viable = self.config.replication >= 2;

        // 1. Short-circuit an open-breaker primary.
        if backup_viable && self.breaker_cfg.is_some() {
            let open = self
                .breakers
                .get(&owner.0)
                .is_some_and(|b| b.state(now) == BreakerState::Open);
            if open {
                let avoid = self.avoided_peers(now, owner);
                if let Some((sub, chain)) = self.chord.successor_substitute(owner, &avoid) {
                    let svc = self.service_time(sub);
                    let lat = (h + chain) as u64 * HOP_COST + svc;
                    self.resilience.breaker_short_circuits += 1;
                    self.resilience.hedge_hops += chain as u64;
                    self.telemetry
                        .counter_add("resilient.hedge_hops", chain as u64);
                    self.telemetry.counter_add("resilient.short_circuits", 1);
                    self.note_response(sub.0, svc, now);
                    self.latency_hist.record(lat);
                    self.telemetry.record("resilient.lookup.latency", lat);
                    return (sub, lat, primary_lat);
                }
            }
        }

        // 2. The primary is contacted (closed breaker, or the half-open
        //    probe). Hedge if it looks slow against the observed tail.
        let mut serving = owner;
        let mut lat = primary_lat;
        if backup_viable {
            if let Some(policy) = self.hedge {
                let delay = policy.delay(&self.latency_hist);
                if primary_lat > delay {
                    let avoid = self.avoided_peers(now, owner);
                    let budget = self.retry.hop_budget.max(8);
                    if let Ok((backup, bh)) = self.chord.lookup_detour(origin, key, budget, &avoid)
                    {
                        if backup != owner {
                            self.resilience.hedges_fired += 1;
                            self.resilience.hedge_hops += bh as u64;
                            self.telemetry
                                .counter_add("resilient.hedge_hops", bh as u64);
                            self.telemetry.counter_add("resilient.hedges_fired", 1);
                            let bsvc = self.service_time(backup);
                            let alt_lat = delay + bh as u64 * HOP_COST + bsvc;
                            self.note_response(backup.0, bsvc, now);
                            if alt_lat < primary_lat {
                                self.resilience.hedges_won += 1;
                                self.telemetry.counter_add("resilient.hedges_won", 1);
                                serving = backup;
                                lat = alt_lat;
                            }
                        }
                    }
                }
            }
        }
        // The primary's response arrives (possibly after the backup won);
        // judge it either way — that is how slowness is detected.
        self.note_response(owner.0, primary_svc, now);
        self.latency_hist.record(lat);
        self.telemetry.record("resilient.lookup.latency", lat);
        (serving, lat, primary_lat)
    }

    /// Best match for `ident` held by `peer`, honoring the configured
    /// read path (bucket-local or local-index scan).
    fn read_candidate(&self, peer: Id, ident: u32, hashed_range: &RangeSet) -> Option<Match> {
        self.storage.get(&peer.0).and_then(|p| {
            if self.config.use_local_index {
                p.best_across_buckets(hashed_range, self.config.matching)
            } else {
                p.best_in_bucket(ident, hashed_range, self.config.matching)
            }
        })
    }

    /// Number of alive peers.
    pub fn len(&self) -> usize {
        self.chord.len()
    }

    /// True if no peers are alive (cannot happen through this API).
    pub fn is_empty(&self) -> bool {
        self.chord.is_empty()
    }

    /// The underlying dynamic Chord network.
    pub fn chord(&self) -> &DynamicNetwork {
        &self.chord
    }

    /// Route-cache counters of the underlying Chord network (all zero when
    /// [`SystemConfig::route_cache`] is 0, the default).
    pub fn route_cache_stats(&self) -> ars_chord::RouteCacheStats {
        self.chord.route_cache_stats()
    }

    /// Total cached partition copies across alive peers.
    pub fn total_partitions(&self) -> usize {
        self.storage.values().map(Peer::partition_count).sum()
    }

    /// Freeze the current alive membership and storage into a static
    /// [`RangeSelectNetwork`] snapshot — the bridge that lets the
    /// concurrent engine ([`crate::engine`]) serve a heavy query burst
    /// against a churning network's state: the ring snapshot and cloned
    /// peer stores are immutable to ongoing churn, workers route against
    /// them lock-free, and every engine shard derives its RNG stream
    /// (via [`ars_common::DetRng::split_streams`]) from this network's
    /// generator state at freeze time, so a freeze is reproducible from
    /// the seed and event history alone. Stats and the identifier cache
    /// start empty; the live network is unaffected.
    pub fn freeze(&self) -> RangeSelectNetwork {
        RangeSelectNetwork::from_parts(
            self.config.clone(),
            self.chord.snapshot_ring(),
            self.storage.clone(),
            self.groups.clone(),
            self.rng.clone(),
        )
    }

    fn place(&self, identifier: u32) -> Id {
        match self.config.placement {
            Placement::Uniformized => Id(ars_chord::sha1::sha1_u32(&identifier.to_be_bytes())),
            Placement::Direct => Id(identifier),
        }
    }

    /// Fresh durable store for a peer, if durability is configured.
    fn make_store(config: &SystemConfig, id: u32) -> Option<BucketStore> {
        config
            .durability
            .as_ref()
            .map(|d| BucketStore::new(d.store_config(), d.seed_for(config.seed, id)))
    }

    /// Store one partition copy at a peer — the single choke point every
    /// placement path goes through (query caching, re-replication, repair,
    /// leave handover, key migration), so the durable log and the
    /// `placed == live + lost − recovered` ledger move in lockstep with
    /// the in-memory state. Returns true if the copy was newly stored.
    fn store_at(&mut self, owner: u32, identifier: u32, range: &RangeSet) -> bool {
        let Some(peer) = self.storage.get_mut(&owner) else {
            return false;
        };
        if !peer.store(identifier, range.clone()) {
            return false;
        }
        self.resilience.buckets_placed += 1;
        self.telemetry.counter_add("buckets.placed", 1);
        if self.chord.is_partitioned() {
            // Divergence ledger: every copy written while the network is
            // split is state that post-heal reconciliation must spread.
            self.resilience.partition_writes += 1;
            self.telemetry.counter_add("buckets.partition_writes", 1);
        }
        if let Some(log) = self.logs.get_mut(&owner) {
            log.place(identifier, &encode_range(range));
            self.telemetry.counter_add("store.appended", 1);
        }
        true
    }

    /// Remove one partition copy from a peer — the eviction counterpart of
    /// [`Self::store_at`] (key migration moves entries through both).
    fn evict_at(&mut self, owner: u32, identifier: u32, range: &RangeSet) -> bool {
        let Some(peer) = self.storage.get_mut(&owner) else {
            return false;
        };
        if !peer.evict(identifier, range) {
            return false;
        }
        self.lose_buckets(1);
        if let Some(log) = self.logs.get_mut(&owner) {
            log.evict(identifier, &encode_range(range));
            self.telemetry.counter_add("store.appended", 1);
        }
        true
    }

    /// Account for live partition copies destroyed.
    fn lose_buckets(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.resilience.buckets_lost += n;
        self.telemetry.counter_add("buckets.lost", n);
    }

    /// Abruptly fail a peer *permanently*: the machine never returns, its
    /// disks (durable or not) are gone, and its cached partitions are lost
    /// — counted in [`ResilienceStats::buckets_lost`] and the
    /// `buckets.lost` telemetry counter. With a replication factor above 1,
    /// surviving replicas are immediately re-spread so the invariant (each
    /// partition at `r` alive successors) holds again. Contrast with
    /// [`Self::crash`], which parks the disks for a later
    /// [`Self::restart`].
    pub fn fail(&mut self, id: Id) -> Result<(), ChordError> {
        self.chord.fail(id)?;
        let lost = self
            .storage
            .remove(&id.0)
            .map(|p| p.partition_count() as u64)
            .unwrap_or(0);
        self.lose_buckets(lost);
        self.logs.remove(&id.0);
        self.re_replicate();
        Ok(())
    }

    /// Crash `count` random peers at once.
    pub fn fail_random(&mut self, count: usize) {
        for _ in 0..count {
            let ids = self.chord.node_ids();
            if ids.len() <= 1 {
                return;
            }
            let victim = ids[self.rng.gen_index(ids.len())];
            let _ = self.fail(victim);
        }
    }

    /// Gracefully leave: buckets are handed to the departing peer's ring
    /// successor before it goes. While the network is partitioned, the
    /// handover can only reach the successor *within the leaver's island*
    /// (computed before the node is removed); a node leaving as the sole
    /// member of its island has no reachable heir and its copies are lost
    /// like an abrupt failure's.
    pub fn leave(&mut self, id: Id) -> Result<(), ChordError> {
        // Determine the inheritor *before* removing the node — and before
        // the chord layer forgets which island the leaver was in.
        let inheritor = if self.chord.is_partitioned() {
            self.chord.island_owner(id, id.plus(1))
        } else {
            self.chord.true_owner(id.plus(1))
        };
        self.chord.leave(id)?;
        if let Some(mut gone) = self.storage.remove(&id.0) {
            let handed = gone.drain();
            // The leaver's live copies are gone (its disks with them); the
            // handover re-places them at the heir, so the ledger records a
            // loss and a placement per copy that moved.
            self.lose_buckets(handed.len() as u64);
            if inheritor == id {
                // Sole member of its island: nobody reachable to inherit.
                self.telemetry
                    .counter_add("churn.orphaned_handovers", handed.len() as u64);
            } else {
                assert!(
                    self.storage.contains_key(&inheritor.0),
                    "successor must be alive"
                );
                for (ident, range) in handed {
                    self.store_at(inheritor.0, ident, &range);
                }
            }
        }
        self.logs.remove(&id.0);
        self.re_replicate();
        Ok(())
    }

    /// Join a fresh random peer and stabilize.
    pub fn join_random(&mut self) -> Result<Id, ChordError> {
        loop {
            let id = Id(self.rng.next_u32());
            if self.chord.node_ids().contains(&id) {
                continue;
            }
            let via = self.chord.node_ids()[0];
            self.chord.join(id, via)?;
            self.storage.insert(id.0, Peer::new(id));
            if let Some(store) = Self::make_store(&self.config, id.0) {
                self.logs.insert(id.0, store);
            }
            self.chord.stabilize_all(32);
            self.re_replicate();
            return Ok(id);
        }
    }

    /// Join with Chord's key migration: after the ring stabilizes, the new
    /// node's successor hands over every bucket whose identifier now falls
    /// in the new node's interval `(pred(new), new]` — so previously cached
    /// partitions stay findable across joins.
    pub fn join_random_with_migration(&mut self) -> Result<Id, ChordError> {
        let new = self.join_random()?;
        self.chord
            .stabilize_until_consistent(64)
            .ok_or(ChordError::NotConverged { rounds: 64 })?;
        // The new node's successor holds the keys that must move.
        let succ = self.chord.true_owner(new.plus(1));
        let pred = {
            // Predecessor on the current ring: the owner of (new - 1)'s
            // interval is `new` itself, so find the node before it.
            let ids = self.chord.node_ids();
            let pos = ids.iter().position(|&i| i == new).expect("joined");
            ids[(pos + ids.len() - 1) % ids.len()]
        };
        if succ != new {
            let moved: Vec<(u32, RangeSet)> = {
                let donor = self.storage.get(&succ.0).expect("successor storage exists");
                donor
                    .entries()
                    .filter(|(ident, _)| self.place(*ident).in_open_closed(pred, new))
                    .map(|(ident, range)| (ident, range.clone()))
                    .collect()
            };
            // Move each migrating entry through the evict/store choke
            // points so both peers' durable logs record the transfer.
            for (ident, range) in moved {
                self.evict_at(succ.0, ident, &range);
                self.store_at(new.0, ident, &range);
            }
        }
        self.re_replicate();
        Ok(new)
    }

    /// Run stabilization rounds (after injected churn).
    pub fn stabilize(&mut self, max_rounds: usize) -> Option<usize> {
        self.chord.stabilize_until_consistent(max_rounds)
    }

    /// Run `rounds` unconditional stabilization passes over every node,
    /// even when the ring is already successor-consistent.
    /// [`Self::stabilize`] stops as soon as immediate successors match
    /// the ground truth, which right after a [`Self::heal`] can leave
    /// predecessor beliefs stale enough for the split-brain probe
    /// ([`DynamicNetwork::ring_view`]) to still report contested keys; a
    /// couple of settle rounds clears them.
    pub fn settle(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.chord.stabilize_all(32);
        }
    }

    /// Split the network into ≥ 2 islands: cross-island traffic (lookups,
    /// digest exchanges, replica pushes, leave handovers) stops until
    /// [`Self::heal`]. Alive nodes not listed in any group land in island
    /// 0. Each island's ring collapses onto its own members over the
    /// following stabilization rounds (split-brain); queries keep being
    /// answered island-locally through [`Self::query_resilient`], flagged
    /// [`QueryOutcome::partition_degraded`] when the global owner is on
    /// the far side.
    ///
    /// # Panics
    /// Panics (in the chord layer) on fewer than two islands, an empty
    /// island, a dead member, or a node listed twice.
    pub fn partition(&mut self, groups: &[Vec<Id>]) {
        self.chord.partition(groups);
        self.telemetry.counter_add("churn.partitions", 1);
        self.telemetry
            .event("churn.partition", &[("islands", groups.len().into())]);
    }

    /// True while a [`Self::partition`] is in force.
    pub fn is_partitioned(&self) -> bool {
        self.chord.is_partitioned()
    }

    /// Heal the partition: cross-island traffic resumes and every node
    /// whose successor belief diverged from the global ring is handed its
    /// true successor (the out-of-band rejoin bootstrap — see
    /// [`DynamicNetwork::heal`]). Returns the number of rejoined nodes.
    ///
    /// Healing the *ring* does not reconcile *storage*: copies written
    /// island-locally during the window sit at owners the other side never
    /// saw. Run [`Self::stabilize`] and then either the oracle
    /// [`Self::re_replicate`] or budgeted [`Self::repair_until_quiescent`]
    /// rounds to converge the replica sets (both reach the same fixed
    /// point — the bench and the partition-tolerance tests pin this).
    pub fn heal(&mut self) -> usize {
        let rejoined = self.chord.heal();
        self.telemetry.counter_add("churn.heals", 1);
        self.telemetry
            .event("churn.heal", &[("rejoined", rejoined.into())]);
        rejoined
    }

    /// Crash a peer: like [`Self::fail`] it drops off the ring abruptly
    /// and its live cache is lost, but its disks survive (after taking the
    /// configured crash faults — un-synced suffix gone, possibly a torn
    /// tail write or a flipped bit) and are parked for a later
    /// [`Self::restart`]. No re-replication sweep runs here: a crashed
    /// machine is expected back, and the anti-entropy repair loop is the
    /// path that restores the replication invariant afterwards.
    pub fn crash(&mut self, id: Id) -> Result<(), ChordError> {
        self.chord.fail(id)?;
        let lost = self
            .storage
            .remove(&id.0)
            .map(|p| p.partition_count() as u64)
            .unwrap_or(0);
        self.lose_buckets(lost);
        let disks = self.logs.remove(&id.0).map(|mut store| {
            store.crash();
            store
        });
        self.crashed.insert(id.0, disks);
        self.telemetry.event(
            "churn.crash",
            &[("node", id.0.into()), ("buckets_lost", lost.into())],
        );
        Ok(())
    }

    /// Crash up to `count` random alive peers (always leaving at least
    /// one). Returns the crashed ids, for matching [`Self::restart`] calls.
    pub fn crash_random(&mut self, count: usize) -> Vec<Id> {
        let mut downed = Vec::new();
        for _ in 0..count {
            let ids = self.chord.node_ids();
            if ids.len() <= 1 {
                break;
            }
            let victim = ids[self.rng.gen_index(ids.len())];
            if self.crash(victim).is_ok() {
                downed.push(victim);
            }
        }
        downed
    }

    /// Restart a crashed peer: replay its parked disks — falling back past
    /// a corrupt snapshot to the longest valid log prefix, never panicking
    /// — rebuild its bucket state from the recovered entries, rejoin the
    /// ring through the join protocol, and stabilize. Returns the number
    /// of partition copies recovered from disk (0 without durability).
    ///
    /// The recovered identifiers are re-announced by the next
    /// [`Self::anti_entropy_round`]: the restarted holder pushes them back
    /// to their current replica owners, which is what makes recovery
    /// visible to queries again even if ring ownership shifted meanwhile.
    pub fn restart(&mut self, id: Id) -> Result<usize, ChordError> {
        let Some(disks) = self.crashed.remove(&id.0) else {
            return Err(ChordError::UnknownNode(id));
        };
        let via = self.chord.node_ids()[0];
        if let Err(e) = self.chord.join(id, via) {
            self.crashed.insert(id.0, disks);
            return Err(e);
        }
        self.chord.stabilize_all(32);
        let mut peer = Peer::new(id);
        let mut recovered = 0u64;
        let mut torn = 0u64;
        let store = disks.map(|mut store| {
            let report = store.recover();
            torn = report.discarded_bytes as u64;
            for (ident, payload) in &report.entries {
                if let Some(range) = decode_range(payload) {
                    if peer.store(*ident, range) {
                        recovered += 1;
                    }
                }
            }
            store
        });
        self.storage.insert(id.0, peer);
        if let Some(store) = store {
            self.logs.insert(id.0, store);
        }
        self.resilience.buckets_recovered += recovered;
        self.telemetry.counter_add("store.recovered", recovered);
        self.telemetry.counter_add("buckets.recovered", recovered);
        self.telemetry.counter_add("store.torn_discarded", torn);
        self.telemetry.event(
            "churn.restart",
            &[
                ("node", id.0.into()),
                ("recovered", recovered.into()),
                ("torn_bytes", torn.into()),
            ],
        );
        Ok(recovered as usize)
    }

    /// Number of crashed peers awaiting [`Self::restart`].
    pub fn crashed_count(&self) -> usize {
        self.crashed.len()
    }

    /// A peer's durable store, if durability is on and the peer is alive —
    /// read access for benches and tests (log length, disk statistics).
    pub fn log_of(&self, id: Id) -> Option<&BucketStore> {
        self.logs.get(&id.0)
    }

    /// One anti-entropy repair round. Every alive peer walks its held
    /// identifiers in sorted order and compares a compact per-bucket
    /// digest (FNV-1a over the encoded entries, order-independent) with
    /// each replica owner of that identifier; on mismatch the holder
    /// pushes the entries the owner is missing. At most `budget` entries
    /// are transferred per round — a budget-cut round reports
    /// [`RepairRound::hit_budget`] and the sweep resumes next round.
    ///
    /// The loop is additive, exactly like the oracle
    /// [`Self::re_replicate`]: repeated rounds converge to the same fixed
    /// point (every entry present at all of its replica owners; stale
    /// copies left to age out as soft state), reached when a round sends
    /// nothing and was not cut short.
    ///
    /// # Panics
    /// Panics if `budget` is zero (such a round could never make progress).
    pub fn anti_entropy_round(&mut self, budget: usize) -> RepairRound {
        assert!(budget >= 1, "repair budget must be positive");
        self.resilience.repair_rounds += 1;
        self.telemetry.counter_add("repair.rounds", 1);
        let mut round = RepairRound::default();
        let mut peer_ids: Vec<u32> = self.storage.keys().copied().collect();
        peer_ids.sort_unstable();
        'sweep: for p in peer_ids {
            let mut idents: Vec<u32> = self.storage[&p].entries().map(|(i, _)| i).collect();
            idents.sort_unstable();
            idents.dedup();
            for ident in idents {
                for owner in self.replica_owners(ident) {
                    if owner.0 == p {
                        continue;
                    }
                    // A digest exchange is a message: while the network is
                    // split, a holder can only repair owners it can reach.
                    // Cross-island pairs are skipped (not counted as
                    // compared) and picked up by post-heal rounds.
                    if !self.chord.reachable(Id(p), owner) {
                        continue;
                    }
                    round.digests_compared += 1;
                    let src_digest = Self::bucket_digest(&self.storage[&p], ident);
                    let dst_digest = self
                        .storage
                        .get(&owner.0)
                        .map(|d| Self::bucket_digest(d, ident))
                        .unwrap_or(0);
                    if src_digest == dst_digest {
                        continue;
                    }
                    // Digest mismatch: fetch the owner's entry list and
                    // push only what it is missing.
                    let missing: Vec<RangeSet> = {
                        let dst_bucket = self.storage.get(&owner.0).and_then(|d| d.bucket(ident));
                        self.storage[&p]
                            .bucket(ident)
                            .map(|b| {
                                b.ranges()
                                    .iter()
                                    .filter(|r| !dst_bucket.map(|d| d.contains(r)).unwrap_or(false))
                                    .cloned()
                                    .collect()
                            })
                            .unwrap_or_default()
                    };
                    for range in missing {
                        if round.entries_sent as usize >= budget {
                            round.hit_budget = true;
                            break 'sweep;
                        }
                        if self.store_at(owner.0, ident, &range) {
                            round.entries_sent += 1;
                            self.telemetry.counter_add("repair.entries_sent", 1);
                        }
                    }
                }
            }
        }
        self.resilience.repair_entries_sent += round.entries_sent;
        round
    }

    /// Run [`Self::anti_entropy_round`]s until a round transfers nothing
    /// (and was not cut short by the budget), i.e. every replica set has
    /// converged. Returns the number of rounds run, or `None` if
    /// `max_rounds` elapsed first.
    pub fn repair_until_quiescent(&mut self, max_rounds: usize, budget: usize) -> Option<usize> {
        for round in 1..=max_rounds {
            let outcome = self.anti_entropy_round(budget);
            if outcome.entries_sent == 0 && !outcome.hit_budget {
                return Some(round);
            }
        }
        None
    }

    /// Order-independent digest of one peer's bucket for `identifier`:
    /// FNV-1a of each encoded entry XOR-combined, mixed with the entry
    /// count. 0 for an absent bucket. Two buckets digest equal iff they
    /// hold the same entry set (modulo negligible collision probability),
    /// which is all the repair loop needs to skip in-sync replicas.
    fn bucket_digest(peer: &Peer, identifier: u32) -> u64 {
        match peer.bucket(identifier) {
            None => 0,
            Some(bucket) => {
                let mut digest =
                    0x9e37_79b9_7f4a_7c15u64 ^ (bucket.len() as u64).wrapping_mul(0x100_0000_01b3);
                for range in bucket.ranges() {
                    digest ^= digest_bytes(&encode_range(range));
                }
                digest
            }
        }
    }

    /// The full storage inventory as a sorted, canonical listing of
    /// `(peer, identifier, intervals)` triples — the bit-identical
    /// comparison form used to check that anti-entropy repair reaches the
    /// oracle [`Self::re_replicate`] fixed point.
    pub fn inventory(&self) -> Vec<InventoryEntry> {
        let mut out: Vec<InventoryEntry> = self
            .storage
            .iter()
            .flat_map(|(&pid, peer)| {
                peer.entries()
                    .map(move |(ident, range)| (pid, ident, range.intervals().to_vec()))
            })
            .collect();
        out.sort();
        out
    }

    /// Publish the `buckets.live` gauge so a telemetry snapshot can check
    /// the ledger `placed == live + lost − recovered` at any quiet point.
    pub fn publish_ledger(&self) {
        self.telemetry
            .gauge_set("buckets.live", self.total_partitions() as u64);
    }

    /// The ground-truth replica set for an identifier: the first `r` alive
    /// nodes clockwise from its placed ring position. Computed from the
    /// membership oracle, not routing state, so it is correct even while
    /// finger tables are stale.
    pub fn replica_owners(&self, identifier: u32) -> Vec<Id> {
        self.chord
            .true_successors(self.place(identifier), self.config.replication)
    }

    /// Restore the successor-replication invariant: every cached
    /// (identifier, partition) pair must live at all of its
    /// [`Self::replica_owners`]. Missing copies are rebuilt from any
    /// surviving one (additive — stale extra copies are left as soft state
    /// to age out). Returns the number of copies created. No-op when the
    /// replication factor is 1.
    pub fn re_replicate(&mut self) -> usize {
        if self.config.replication <= 1 {
            return 0;
        }
        self.resilience.re_replications += 1;
        let partitioned = self.chord.is_partitioned();
        // Inventory of everything stored anywhere, deduplicated, tagged
        // with the islands that hold a copy: while the network is split,
        // a missing replica can only be rebuilt at an owner some holder
        // can actually reach.
        let mut pairs: Vec<(u32, RangeSet, Vec<usize>)> = Vec::new();
        {
            let mut seen: std::collections::HashMap<(u32, &RangeSet), usize> =
                std::collections::HashMap::new();
            for (&pid, peer) in &self.storage {
                let island = self.chord.island_of(Id(pid));
                for (ident, range) in peer.entries() {
                    match seen.entry((ident, range)) {
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(pairs.len());
                            pairs.push((ident, range.clone(), vec![island]));
                        }
                        std::collections::hash_map::Entry::Occupied(o) => {
                            let islands = &mut pairs[*o.get()].2;
                            if !islands.contains(&island) {
                                islands.push(island);
                            }
                        }
                    }
                }
            }
        }
        let mut restored = 0;
        for (ident, range, holder_islands) in pairs {
            for owner in self.replica_owners(ident) {
                if partitioned && !holder_islands.contains(&self.chord.island_of(owner)) {
                    continue;
                }
                if self.store_at(owner.0, ident, &range) {
                    restored += 1;
                    self.telemetry.counter_add("replica.stores", 1);
                    self.telemetry.event(
                        "replica.store",
                        &[("ident", ident.into()), ("node", owner.0.into())],
                    );
                }
            }
        }
        self.resilience.replicas_restored += restored as u64;
        restored
    }

    /// One identifier lookup under the retry policy. Attempt 1 is the
    /// plain greedy lookup; retries back off (deterministic jitter), let a
    /// stabilization round run — modelling the repair a real deployment's
    /// periodic stabilizer performs while the client waits — and then route
    /// failure-aware through successor lists. Returns the owner, the hop
    /// count of the successful attempt, and how many attempts were spent;
    /// the failure side carries the attempts spent before giving up
    /// (attempts, timeout budget, or whole-query deadline exhausted).
    ///
    /// `wall` accumulates backoff delay across the *whole query* (all `l`
    /// identifier lookups share it); when [`RetryPolicy::deadline`] is set
    /// and the accumulated wall time reaches it, no further retries are
    /// scheduled — checked *before* the backoff jitter draw so a
    /// deadline-cut run stays deterministic.
    fn lookup_with_retry(
        &mut self,
        origin: Id,
        key: Id,
        wall: &mut u64,
    ) -> Result<(Id, usize, usize), usize> {
        let policy = self.retry.clone();
        let mut elapsed = 0u64;
        let mut spent = 0usize;
        for attempt in 1..=policy.attempts {
            spent = attempt;
            self.resilience.lookups_attempted += 1;
            self.telemetry.counter_add("resilient.attempts", 1);
            if attempt > 1 {
                self.resilience.retries += 1;
                self.telemetry.counter_add("resilient.retries", 1);
            }
            let lost = self.lookup_loss > 0.0 && self.rng.gen_bool(self.lookup_loss);
            let result = if lost {
                // The request (or its reply) vanished in flight; the
                // client observes a timeout indistinguishable from a
                // routing failure.
                Err(ChordError::RoutingFailed { from: origin, key })
            } else if attempt == 1 {
                self.chord.lookup(origin, key)
            } else {
                self.chord.lookup_resilient(origin, key, policy.hop_budget)
            };
            if let Ok((owner, hops)) = result {
                self.telemetry.counter_add("resilient.successes", 1);
                return Ok((owner, hops, attempt));
            }
            if attempt < policy.attempts {
                if let Some(deadline) = policy.deadline {
                    if *wall >= deadline {
                        self.resilience.deadline_exhausted += 1;
                        self.telemetry
                            .counter_add("resilient.deadline_exhausted", 1);
                        break;
                    }
                }
                let delay = policy.backoff(attempt as u32, &mut self.rng);
                elapsed += delay;
                *wall += delay;
                self.resilience.backoff_time += delay;
                self.telemetry.counter_add("resilient.backoff_spent", delay);
                self.telemetry.event(
                    "resilient.retry",
                    &[("attempt", attempt.into()), ("backoff", delay.into())],
                );
                if elapsed > policy.timeout_budget {
                    break;
                }
                self.chord.stabilize_all(1);
            }
        }
        self.resilience.lookups_failed += 1;
        self.telemetry.counter_add("resilient.failures", 1);
        Err(spent)
    }

    /// Execute one query through the live routing state, *without* a
    /// failure escape hatch in the type: lookups that fail are retried per
    /// the [`RetryPolicy`]; identifiers whose owner stays unreachable are
    /// skipped; and if **no** owner is reachable the query degrades to a
    /// source fetch, reported via
    /// [`QueryOutcome::fell_back_to_source`] and counted in
    /// [`ResilienceStats::source_fallbacks`]. This path never panics and
    /// never returns an error, whatever the churn state.
    ///
    /// Cache-on-miss stores go to the full replica set of each reachable
    /// identifier ([`Self::replica_owners`]), which is where the
    /// replication factor pays off.
    ///
    /// While the network is [`Self::partition`]ed the query degrades
    /// gracefully instead of erroring: lookups route island-locally; when
    /// an identifier's *global* owner sits on the far side (or no owner is
    /// reachable at all) the outcome is flagged
    /// [`QueryOutcome::partition_degraded`] and counted in
    /// [`ResilienceStats::partition_degraded_queries`]; a routed owner with
    /// an empty bucket falls through to the island-local replica set
    /// ([`DynamicNetwork::island_successors`]); and cache-on-miss stores go
    /// to the island-local owners only — cross-island writes are
    /// physically impossible during the window and are what post-heal
    /// reconciliation restores.
    pub fn query_resilient(&mut self, q: &RangeSet) -> QueryOutcome {
        assert!(!q.is_empty(), "cannot query an empty range");
        let hashed_range = if self.config.padding > 0.0 {
            q.pad(self.config.padding)
        } else {
            q.clone()
        };
        let identifiers = self.groups.identifiers(&hashed_range);
        self.telemetry.counter_add("resilient.queries", 1);
        let span = self.telemetry.span(
            "core.query",
            &[
                ("path", "resilient".into()),
                ("l", identifiers.len().into()),
            ],
        );
        let origin = {
            let ids = self.chord.node_ids();
            ids[self.rng.gen_index(ids.len())]
        };

        let partitioned = self.chord.is_partitioned();
        let mut partition_degraded = false;
        let mut wall = 0u64;
        let mut query_lat = 0u64;
        let mut hops = Vec::with_capacity(identifiers.len());
        let mut owners: Vec<Id> = Vec::new();
        let mut reached: Vec<u32> = Vec::new();
        let mut attempts_total = 0usize;
        let mut best: Option<Match> = None;
        for &ident in &identifiers {
            let key = self.place(ident);
            match self.lookup_with_retry(origin, key, &mut wall) {
                Ok((owner, h, attempts)) => {
                    hops.push(h);
                    self.telemetry
                        .counter_add("resilient.lookup.hops", h as u64);
                    owners.push(owner);
                    reached.push(ident);
                    attempts_total += attempts;
                    if partitioned && owner != self.chord.true_owner(key) {
                        // Routing converged island-locally, but the node
                        // that globally owns this identifier is across the
                        // split — its bucket may hold answers we can't see.
                        partition_degraded = true;
                    }
                    // Gray-failure service layer: pick the peer that
                    // actually serves the fetch (short-circuiting or
                    // hedging around slow primaries) and the virtual
                    // latency paid for it.
                    let (serving, lat, primary_lat) = self.gray_fetch(origin, key, owner, h);
                    if serving != owner {
                        owners.push(serving);
                    }
                    query_lat += lat;
                    let mut candidate = self.read_candidate(serving, ident, &hashed_range);
                    if candidate.is_none() && serving != owner {
                        // Replica-divergence safety net: the substitute's
                        // bucket was empty, so wait for the primary after
                        // all — recall must never pay for tail tolerance.
                        candidate = self.read_candidate(owner, ident, &hashed_range);
                        if candidate.is_some() {
                            query_lat = query_lat - lat + primary_lat.max(lat);
                        }
                    }
                    if candidate.is_none() && partitioned {
                        // Degraded read path: the routed owner came up
                        // empty, so consult the rest of the island-local
                        // replica set before giving up on this identifier.
                        for replica in
                            self.chord
                                .island_successors(origin, key, self.config.replication)
                        {
                            if replica == owner {
                                continue;
                            }
                            let held = self.read_candidate(replica, ident, &hashed_range);
                            if held.is_some() {
                                owners.push(replica);
                                candidate = held;
                                break;
                            }
                        }
                    }
                    if let Some(m) = candidate {
                        let better = match &best {
                            None => true,
                            Some(b) => m.score > b.score,
                        };
                        if better {
                            best = Some(m);
                        }
                    }
                }
                Err(spent) => {
                    attempts_total += spent;
                    if partitioned {
                        partition_degraded = true;
                    }
                }
            }
        }

        // Advance the virtual clock by what this query cost: fetch
        // latencies plus retry backoff wall time. Breaker cooldowns are
        // measured on this clock.
        let query_latency = query_lat + wall;
        self.telemetry
            .record("resilient.query.latency", query_latency);
        self.clock += query_latency;

        let fell_back_to_source = reached.is_empty();
        if fell_back_to_source {
            self.resilience.source_fallbacks += 1;
            self.telemetry.counter_add("resilient.source_fallbacks", 1);
        }
        if partition_degraded {
            self.resilience.partition_degraded_queries += 1;
            self.telemetry
                .counter_add("resilient.partition_degraded", 1);
        }

        let exact = best
            .as_ref()
            .map(|m| m.range == hashed_range)
            .unwrap_or(false);
        let mut stored = false;
        if self.config.cache_on_miss && !exact {
            for &ident in &reached {
                let targets = if partitioned {
                    // A write cannot cross the split: cache the partition
                    // at the island-local owners only.
                    self.chord
                        .island_successors(origin, self.place(ident), self.config.replication)
                } else {
                    self.replica_owners(ident)
                };
                for owner in targets {
                    stored |= self.store_at(owner.0, ident, &hashed_range);
                }
            }
        }

        let (similarity, recall, best_match) = match &best {
            Some(m) => (
                q.jaccard(&m.range),
                q.containment_in(&m.range),
                Some(m.range.clone()),
            ),
            None => (0.0, 0.0, None),
        };
        let mut distinct = owners;
        distinct.sort_unstable();
        distinct.dedup();
        self.telemetry.span_end(
            span,
            &[
                ("matched", best_match.is_some().into()),
                ("exact", exact.into()),
                ("attempts", attempts_total.into()),
                ("fallback", fell_back_to_source.into()),
                ("degraded", partition_degraded.into()),
                ("similarity", similarity.into()),
                ("recall", recall.into()),
            ],
        );
        QueryOutcome {
            query: q.clone(),
            best_match,
            similarity,
            recall,
            exact,
            stored,
            hops,
            identifiers,
            peers_contacted: distinct.len(),
            attempts: attempts_total,
            fell_back_to_source,
            partition_degraded,
        }
    }

    /// [`Self::query_resilient`] plus the virtual latency the query cost
    /// (fetch service times, hop costs, hedge delays, retry backoff) —
    /// the measurement entry point for the tail-latency experiments.
    pub fn query_timed(&mut self, q: &RangeSet) -> (QueryOutcome, u64) {
        let start = self.clock;
        let outcome = self.query_resilient(q);
        (outcome, self.clock - start)
    }

    /// Execute one query through the live routing state. Fails only if
    /// routing itself fails (possible mid-churn before stabilization).
    pub fn query(&mut self, q: &RangeSet) -> Result<QueryOutcome, ChordError> {
        assert!(!q.is_empty(), "cannot query an empty range");
        let hashed_range = if self.config.padding > 0.0 {
            q.pad(self.config.padding)
        } else {
            q.clone()
        };
        let identifiers = self.groups.identifiers(&hashed_range);
        let origin = {
            let ids = self.chord.node_ids();
            ids[self.rng.gen_index(ids.len())]
        };

        let mut hops = Vec::with_capacity(identifiers.len());
        let mut owners = Vec::with_capacity(identifiers.len());
        let mut reached = 0usize;
        let mut best: Option<Match> = None;
        for &ident in &identifiers {
            let (owner, h) = self.chord.lookup(origin, self.place(ident))?;
            hops.push(h);
            owners.push(owner);
            let Some(peer) = self.storage.get(&owner.0) else {
                continue;
            };
            reached += 1;
            let candidate = if self.config.use_local_index {
                peer.best_across_buckets(&hashed_range, self.config.matching)
            } else {
                peer.best_in_bucket(ident, &hashed_range, self.config.matching)
            };
            if let Some(m) = candidate {
                let better = match &best {
                    None => true,
                    Some(b) => m.score > b.score,
                };
                if better {
                    best = Some(m);
                }
            }
        }

        let exact = best
            .as_ref()
            .map(|m| m.range == hashed_range)
            .unwrap_or(false);
        let mut stored = false;
        if self.config.cache_on_miss && !exact {
            let targets: Vec<(u32, Id)> = identifiers.iter().copied().zip(owners.clone()).collect();
            for (ident, owner) in targets {
                stored |= self.store_at(owner.0, ident, &hashed_range);
            }
        }

        let (similarity, recall, best_match) = match &best {
            Some(m) => (
                q.jaccard(&m.range),
                q.containment_in(&m.range),
                Some(m.range.clone()),
            ),
            None => (0.0, 0.0, None),
        };
        let mut distinct = owners.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let attempts = identifiers.len();
        Ok(QueryOutcome {
            query: q.clone(),
            best_match,
            similarity,
            recall,
            exact,
            stored,
            hops,
            identifiers,
            peers_contacted: distinct.len(),
            attempts,
            fell_back_to_source: reached == 0,
            partition_degraded: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: u32, hi: u32) -> RangeSet {
        RangeSet::interval(lo, hi)
    }

    fn small_net(seed: u64) -> ChurnNetwork {
        ChurnNetwork::new(12, SystemConfig::default().with_seed(seed)).expect("growth converges")
    }

    #[test]
    fn query_and_requery_as_in_static_network() {
        let mut net = small_net(1);
        let miss = net.query(&r(30, 50)).unwrap();
        assert!(!miss.exact);
        let hit = net.query(&r(30, 50)).unwrap();
        assert!(hit.exact);
        assert_eq!(hit.recall, 1.0);
    }

    #[test]
    fn freeze_snapshots_membership_and_storage() {
        let mut net = small_net(4);
        net.query(&r(30, 50)).unwrap();
        let frozen = net.freeze();
        assert_eq!(frozen.len(), net.len());
        assert_eq!(frozen.total_partitions(), net.total_partitions());
        // The snapshot is decoupled: querying the live network afterwards
        // does not change the frozen state.
        net.query(&r(500, 600)).unwrap();
        assert_eq!(frozen.stats().queries, 0);
    }

    #[test]
    fn frozen_network_serves_cached_partitions_through_the_engine() {
        let mut net = small_net(7);
        net.query(&r(200, 260)).unwrap(); // cache the partition while live
        let mut frozen = net.freeze();
        let outs = frozen.query_batch_concurrent_with(
            &[r(200, 260), r(200, 260)],
            crate::engine::EngineOptions {
                shards: 4,
                workers: 2,
                queue: 8,
            },
        );
        assert!(
            outs.iter().any(|o| o.exact),
            "partition cached on the live network must be found in the frozen snapshot"
        );
        // Frozen runs are deterministic: an identical freeze replays
        // identically (per-shard RNG streams derive from the same state).
        let mut again = net.freeze();
        let outs2 = again.query_batch_concurrent_with(
            &[r(200, 260), r(200, 260)],
            crate::engine::EngineOptions {
                shards: 4,
                workers: 3,
                queue: 8,
            },
        );
        assert_eq!(outs, outs2, "freeze + engine must be schedule-invariant");
    }

    #[test]
    fn abrupt_failure_loses_cached_partitions() {
        let mut net = small_net(2);
        net.query(&r(100, 200)).unwrap();
        let before = net.total_partitions();
        assert!(before >= 1);
        // Kill every peer that holds a partition copy (walk all peers).
        let holders: Vec<Id> = net
            .chord()
            .node_ids()
            .into_iter()
            .filter(|id| {
                net.storage
                    .get(&id.0)
                    .map(|p| p.partition_count() > 0)
                    .unwrap_or(false)
            })
            .collect();
        for h in holders {
            if net.len() > 1 {
                net.fail(h).unwrap();
            }
        }
        net.stabilize(128).expect("recovers");
        assert_eq!(net.total_partitions(), 0, "failed peers take data down");
        // The same query now misses again — and re-caches (soft state).
        let miss_again = net.query(&r(100, 200)).unwrap();
        assert!(!miss_again.exact);
        assert!(net.total_partitions() >= 1);
        let hit = net.query(&r(100, 200)).unwrap();
        assert!(hit.exact);
    }

    #[test]
    fn graceful_leave_preserves_cached_partitions() {
        let mut net = small_net(3);
        net.query(&r(100, 200)).unwrap();
        let before = net.total_partitions();
        // Every holder leaves gracefully (handing buckets to successors).
        loop {
            let holder = net.chord().node_ids().into_iter().find(|id| {
                net.storage
                    .get(&id.0)
                    .map(|p| p.partition_count() > 0)
                    .unwrap_or(false)
            });
            match holder {
                Some(h) if net.len() > 1 => {
                    // The successor inherits; the partitions must survive.
                    net.leave(h).unwrap();
                    net.stabilize(64).expect("recovers");
                }
                _ => break,
            }
            if net.len() <= 2 {
                break;
            }
        }
        assert_eq!(
            net.total_partitions(),
            before,
            "graceful leave must not lose partitions"
        );
        // And they are still *findable*: the successor now owns the
        // identifier interval the partitions were stored under.
        let hit = net.query(&r(100, 200)).unwrap();
        assert!(hit.exact, "handed-over partition must still be located");
    }

    #[test]
    fn join_does_not_disturb_existing_cache() {
        let mut net = small_net(4);
        net.query(&r(5, 80)).unwrap();
        for _ in 0..4 {
            net.join_random().unwrap();
        }
        net.stabilize(64).expect("converges");
        // NOTE: a new peer can take over part of an identifier interval
        // without inheriting its buckets (Chord key migration on join is
        // not modelled) — the paper's soft-state answer applies: such
        // queries miss and re-cache. With 4 joins over 12 peers, at least
        // some copies usually stay findable; correctness (no crash, valid
        // outcome) is what this asserts.
        let out = net.query(&r(5, 80)).unwrap();
        assert!(out.recall >= 0.0);
    }

    #[test]
    fn join_with_migration_keeps_partitions_findable() {
        let mut net = small_net(6);
        // Cache several partitions.
        let queries = [r(10, 60), r(200, 260), r(500, 580), r(800, 870)];
        for q in &queries {
            net.query(q).unwrap();
        }
        // Many joins with key migration: every previously cached partition
        // must remain an exact hit afterwards.
        for _ in 0..8 {
            net.join_random_with_migration().unwrap();
        }
        net.stabilize(64).expect("converges");
        for q in &queries {
            let out = net.query(q).unwrap();
            assert!(
                out.exact,
                "partition for {q} lost after joins with migration"
            );
        }
    }

    #[test]
    fn mixed_churn_stream_keeps_answering() {
        let mut net = ChurnNetwork::new(20, SystemConfig::default().with_seed(5)).unwrap();
        let queries: Vec<RangeSet> = (0..40).map(|i| r(i * 10, i * 10 + 50)).collect();
        let mut answered = 0;
        for (i, q) in queries.iter().enumerate() {
            if i % 7 == 3 {
                net.fail_random(1);
                net.stabilize(64).expect("recovers");
            }
            if i % 11 == 5 {
                net.join_random().unwrap();
                net.stabilize(64).expect("converges");
            }
            if net.query(q).is_ok() {
                answered += 1;
            }
        }
        assert_eq!(answered, 40, "stabilized network must answer everything");
    }

    #[test]
    fn route_cached_churn_network_matches_uncached_modulo_hops() {
        // Twin networks, one with the Chord route cache enabled, driven
        // through the same churn + query stream. Every outcome field
        // except per-lookup hop counts must be identical (the cache serves
        // a memoized owner in one hop); total hops must not increase; and
        // repeated queries must actually hit.
        let base = SystemConfig::default().with_seed(31);
        let mut plain = ChurnNetwork::new(20, base.clone()).unwrap();
        let mut cached = ChurnNetwork::new(20, base.with_route_cache(256)).unwrap();
        let queries: Vec<RangeSet> = (0..30)
            .map(|i| r((i % 6) * 100, (i % 6) * 100 + 50))
            .collect();
        let (mut plain_hops, mut cached_hops) = (0usize, 0usize);
        for (i, q) in queries.iter().enumerate() {
            if i % 9 == 4 {
                plain.fail_random(1);
                cached.fail_random(1);
                plain.stabilize(64).expect("recovers");
                cached.stabilize(64).expect("recovers");
            }
            let a = plain.query(q).unwrap();
            let b = cached.query(q).unwrap();
            assert_eq!(a.best_match, b.best_match, "query {i}");
            assert_eq!(a.identifiers, b.identifiers, "query {i}");
            assert_eq!(a.stored, b.stored, "query {i}");
            assert_eq!(a.exact, b.exact, "query {i}");
            assert_eq!(a.peers_contacted, b.peers_contacted, "query {i}");
            assert_eq!(a.attempts, b.attempts, "query {i}");
            let (ah, bh): (usize, usize) = (a.hops.iter().sum(), b.hops.iter().sum());
            assert!(bh <= ah, "cache increased hops on query {i}");
            plain_hops += ah;
            cached_hops += bh;
        }
        assert_eq!(plain.total_partitions(), cached.total_partitions());
        let stats = cached.route_cache_stats();
        assert!(stats.hits > 0, "repeated queries must hit the route cache");
        assert!(
            cached_hops < plain_hops,
            "route cache saved no hops ({cached_hops} vs {plain_hops})"
        );
        assert_eq!(plain.route_cache_stats(), Default::default());
    }

    #[test]
    fn route_cached_resilient_queries_match_uncached() {
        // Same twin-network check through the retrying resilient path with
        // lookup loss: retries, attempts, and fallbacks must stay aligned
        // because the loss RNG draw happens before every lookup either way.
        let base = SystemConfig::default().with_seed(37);
        let mut plain = ChurnNetwork::new(15, base.clone()).unwrap();
        let mut cached = ChurnNetwork::new(15, base.with_route_cache(128)).unwrap();
        plain.set_lookup_loss(0.2);
        cached.set_lookup_loss(0.2);
        for i in 0..25u32 {
            let q = r((i % 5) * 80, (i % 5) * 80 + 40);
            let a = plain.query_resilient(&q);
            let b = cached.query_resilient(&q);
            assert_eq!(a.best_match, b.best_match, "query {i}");
            assert_eq!(a.attempts, b.attempts, "query {i}");
            assert_eq!(a.fell_back_to_source, b.fell_back_to_source, "query {i}");
            let (ah, bh): (usize, usize) = (a.hops.iter().sum(), b.hops.iter().sum());
            assert!(bh <= ah, "cache increased hops on query {i}");
        }
        assert_eq!(plain.resilience().retries, cached.resilience().retries);
        assert!(cached.route_cache_stats().hits > 0);
    }

    #[test]
    fn starved_growth_reports_nonconvergence() {
        // Zero stabilization anywhere leaves predecessor-side successor
        // pointers stale on a 10-node ring; the constructor must surface
        // that as an error, not a panic or a silently broken network.
        let err = ChurnNetwork::with_growth_rounds(10, SystemConfig::default().with_seed(8), 0, 0);
        match err {
            Err(ChordError::NotConverged { rounds }) => assert_eq!(rounds, 0),
            Err(e) => panic!("expected NotConverged, got {e}"),
            Ok(_) => panic!("starved growth must not converge"),
        }
    }

    #[test]
    fn generous_growth_still_converges() {
        assert!(
            ChurnNetwork::with_growth_rounds(10, SystemConfig::default().with_seed(8), 32, 64)
                .is_ok()
        );
    }

    #[test]
    fn query_resilient_matches_query_on_calm_network() {
        let mut a = small_net(13);
        let mut b = small_net(13);
        for q in [r(30, 50), r(30, 50), r(200, 280)] {
            let plain = a.query(&q).unwrap();
            let res = b.query_resilient(&q);
            assert_eq!(plain.best_match, res.best_match);
            assert_eq!(plain.exact, res.exact);
            assert_eq!(plain.recall, res.recall);
            assert_eq!(res.attempts, 5, "no retries on a calm ring");
            assert!(!res.fell_back_to_source);
        }
        assert_eq!(b.resilience().retries, 0);
        assert_eq!(b.resilience().source_fallbacks, 0);
    }

    #[test]
    fn replication_places_r_copies_per_identifier() {
        let mut net = ChurnNetwork::new(
            12,
            SystemConfig::default().with_seed(21).with_replication(2),
        )
        .unwrap();
        let out = net.query_resilient(&r(100, 200));
        assert!(out.stored);
        // Each of the l identifiers is stored at 2 replica owners (which
        // may coincide across identifiers, but per identifier there are 2
        // distinct peers in a 12-node ring).
        for &ident in &out.identifiers {
            let owners = net.replica_owners(ident);
            assert_eq!(owners.len(), 2);
            let held = owners
                .iter()
                .filter(|o| {
                    net.storage
                        .get(&o.0)
                        .map(|p| p.bucket(ident).is_some())
                        .unwrap_or(false)
                })
                .count();
            assert_eq!(held, 2, "identifier {ident} missing a replica");
        }
    }

    #[test]
    fn replication_survives_abrupt_failure() {
        let mut net =
            ChurnNetwork::new(12, SystemConfig::default().with_seed(2).with_replication(2))
                .unwrap();
        net.query_resilient(&r(100, 200));
        // Kill the *primary* owner of every identifier; the replica (next
        // successor) must keep every bucket findable after stabilization.
        let out = net.query_resilient(&r(100, 200));
        assert!(out.exact, "warm cache before failure");
        let primaries: Vec<Id> = out
            .identifiers
            .iter()
            .map(|&i| net.replica_owners(i)[0])
            .collect();
        for p in primaries {
            if net.len() > 2 && net.chord().node_ids().contains(&p) {
                net.fail(p).unwrap();
            }
        }
        net.stabilize(128).expect("recovers");
        let after = net.query_resilient(&r(100, 200));
        assert!(after.exact, "replicated partition lost to primary failures");
        assert!(net.resilience().re_replications > 0);
    }

    #[test]
    fn unreplicated_failure_still_loses_buckets() {
        // The r = 1 baseline keeps the paper's soft-state behavior: killing
        // every holder loses the data (the replication test above is the
        // contrast).
        let mut net = small_net(2);
        net.query_resilient(&r(100, 200));
        let holders: Vec<Id> = net
            .chord()
            .node_ids()
            .into_iter()
            .filter(|id| {
                net.storage
                    .get(&id.0)
                    .map(|p| p.partition_count() > 0)
                    .unwrap_or(false)
            })
            .collect();
        for h in holders {
            if net.len() > 1 {
                net.fail(h).unwrap();
            }
        }
        net.stabilize(128).expect("recovers");
        assert_eq!(net.total_partitions(), 0);
        assert_eq!(net.resilience().re_replications, 0, "r=1 never sweeps");
    }

    #[test]
    fn lookup_loss_drives_retries_but_queries_survive() {
        let mut net = small_net(17);
        net.set_lookup_loss(0.3);
        for i in 0..10u32 {
            let out = net.query_resilient(&r(i * 30, i * 30 + 40));
            assert!(out.attempts >= 5, "at least one attempt per identifier");
        }
        assert!(net.resilience().retries > 0, "30% loss must force retries");
        assert_eq!(
            net.resilience().lookups_attempted,
            net.resilience().retries + 50,
            "attempts = first tries + retries"
        );
    }

    #[test]
    fn telemetry_attempt_ledger_balances_under_loss() {
        let mut net = small_net(17);
        let tel = Telemetry::recording();
        net.set_telemetry(tel.clone());
        net.set_lookup_loss(0.3);
        for i in 0..10u32 {
            net.query_resilient(&r(i * 30, i * 30 + 40));
        }
        let snap = tel.snapshot();
        // Per lookup: n attempts = 1 first try (success or failure) plus
        // n−1 retries, so the counters balance exactly.
        assert_eq!(
            snap.counter("resilient.attempts"),
            snap.counter("resilient.successes")
                + snap.counter("resilient.failures")
                + snap.counter("resilient.retries")
        );
        assert!(snap.counter("resilient.retries") > 0, "30% loss retries");
        assert_eq!(snap.counter("resilient.queries"), 10);
        // The registry mirrors ResilienceStats exactly.
        assert_eq!(
            snap.counter("resilient.attempts"),
            net.resilience().lookups_attempted
        );
        assert_eq!(snap.counter("resilient.retries"), net.resilience().retries);
        assert_eq!(
            snap.counter("resilient.backoff_spent"),
            net.resilience().backoff_time
        );
        // Chord lookups triggered by the query path share the sink.
        assert!(snap.counter("chord.lookups") > 0);
    }

    #[test]
    fn re_replication_emits_one_store_event_per_copy() {
        let mut net =
            ChurnNetwork::new(12, SystemConfig::default().with_seed(2).with_replication(2))
                .unwrap();
        net.query_resilient(&r(100, 200));
        let out = net.query_resilient(&r(100, 200));
        assert!(out.exact, "warm cache first");
        let tel = Telemetry::recording();
        net.set_telemetry(tel.clone());
        let before = net.resilience().replicas_restored;
        let primary = net.replica_owners(out.identifiers[0])[0];
        net.fail(primary).unwrap(); // triggers re_replicate internally
        let restored = net.resilience().replicas_restored - before;
        assert!(restored > 0, "losing a primary must restore copies");
        let events = tel.events_named("replica.store");
        assert_eq!(events.len() as u64, restored);
        assert_eq!(tel.snapshot().counter("replica.stores"), restored);
        assert!(events
            .iter()
            .all(|e| e.field_u64("ident").is_some() && e.field_u64("node").is_some()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lookup_loss_rejects_bad_probability() {
        small_net(1).set_lookup_loss(1.5);
    }

    fn durable_config(seed: u64) -> SystemConfig {
        SystemConfig::default()
            .with_seed(seed)
            .with_durability(crate::durable::DurabilityConfig::default())
    }

    /// The ledger identity the telemetry suite pins: every placement,
    /// loss, and recovery is counted, so the live count is derivable.
    fn assert_ledger(net: &ChurnNetwork) {
        let s = net.resilience();
        assert_eq!(
            s.buckets_placed + s.buckets_recovered,
            net.total_partitions() as u64 + s.buckets_lost,
            "ledger violated: placed {} recovered {} live {} lost {}",
            s.buckets_placed,
            s.buckets_recovered,
            net.total_partitions(),
            s.buckets_lost
        );
    }

    #[test]
    fn fail_counts_silently_discarded_buckets() {
        let mut net = small_net(2);
        net.query(&r(100, 200)).unwrap();
        let live = net.total_partitions() as u64;
        assert!(live >= 1);
        assert_eq!(net.resilience().buckets_lost, 0);
        let holder = net
            .chord()
            .node_ids()
            .into_iter()
            .find(|id| {
                net.storage
                    .get(&id.0)
                    .map(|p| p.partition_count() > 0)
                    .unwrap_or(false)
            })
            .expect("someone holds the cache");
        let held = net.storage[&holder.0].partition_count() as u64;
        net.fail(holder).unwrap();
        assert_eq!(net.resilience().buckets_lost, held);
        assert_ledger(&net);
    }

    #[test]
    fn ledger_identity_holds_across_mixed_churn() {
        let mut net = ChurnNetwork::new(16, durable_config(9)).unwrap();
        for i in 0..8u32 {
            net.query(&r(i * 40, i * 40 + 60)).unwrap();
            assert_ledger(&net);
        }
        net.fail_random(2);
        assert_ledger(&net);
        let leaver = net.chord().node_ids()[1];
        net.leave(leaver).unwrap();
        assert_ledger(&net);
        net.join_random_with_migration().unwrap();
        assert_ledger(&net);
        let downed = net.crash_random(3);
        assert_ledger(&net);
        for id in downed {
            net.restart(id).unwrap();
            assert_ledger(&net);
        }
        net.stabilize(128).expect("recovers");
        net.repair_until_quiescent(64, 1_000).expect("quiesces");
        assert_ledger(&net);
    }

    #[test]
    fn crash_without_durability_loses_buckets_but_restart_rejoins() {
        let mut net = small_net(4);
        net.query(&r(100, 200)).unwrap();
        let n = net.len();
        let victim = net.crash_random(1)[0];
        assert_eq!(net.len(), n - 1);
        assert_eq!(net.crashed_count(), 1);
        let recovered = net.restart(victim).unwrap();
        assert_eq!(recovered, 0, "no disks, nothing to replay");
        assert_eq!(net.len(), n);
        assert_eq!(net.crashed_count(), 0);
        net.stabilize(128).expect("recovers");
        assert_ledger(&net);
    }

    #[test]
    fn crash_restart_recovers_buckets_from_disk() {
        let mut net = ChurnNetwork::new(12, durable_config(6)).unwrap();
        net.query(&r(100, 200)).unwrap();
        assert!(net.query(&r(100, 200)).unwrap().exact, "warm cache");
        let before = net.total_partitions();
        // Crash every holder; with r = 1 the live cache is entirely gone.
        let holders: Vec<Id> = net
            .chord()
            .node_ids()
            .into_iter()
            .filter(|id| {
                net.storage
                    .get(&id.0)
                    .map(|p| p.partition_count() > 0)
                    .unwrap_or(false)
            })
            .collect();
        for h in &holders {
            net.crash(*h).unwrap();
        }
        assert_eq!(net.total_partitions(), 0, "crash drops the live cache");
        // Restart replays the logs: every copy comes back, and because the
        // same ids rejoin at the same ring positions, the warm hit returns
        // without any repair round.
        let mut recovered = 0;
        for h in &holders {
            recovered += net.restart(*h).unwrap();
        }
        net.stabilize(128).expect("recovers");
        assert_eq!(recovered, before, "every synced copy must replay");
        assert_eq!(net.total_partitions(), before);
        assert!(net.query(&r(100, 200)).unwrap().exact, "cache survived");
        assert_eq!(net.resilience().buckets_recovered, before as u64);
        assert_ledger(&net);
    }

    #[test]
    fn restart_of_a_never_crashed_peer_errors() {
        let mut net = small_net(1);
        let alive = net.chord().node_ids()[0];
        match net.restart(alive) {
            Err(ChordError::UnknownNode(id)) => assert_eq!(id, alive),
            other => panic!("expected UnknownNode, got {other:?}"),
        }
    }

    #[test]
    fn anti_entropy_reaches_the_oracle_fixed_point() {
        // Two identical networks diverge replicas the same way; one runs
        // the budgeted digest-exchange repair, the other the global oracle
        // sweep. Their inventories must be bit-identical at the end.
        let run = |seed: u64| {
            let mut net = ChurnNetwork::new(14, durable_config(seed).with_replication(2)).unwrap();
            for i in 0..6u32 {
                net.query_resilient(&r(i * 70, i * 70 + 80));
            }
            let downed = net.crash_random(3);
            for id in downed {
                net.restart(id).unwrap();
            }
            net.stabilize(128).expect("recovers");
            net
        };
        let mut repaired = run(11);
        let mut oracle = run(11);
        assert_eq!(repaired.inventory(), oracle.inventory(), "same divergence");
        let rounds = repaired
            .repair_until_quiescent(64, 5)
            .expect("repair quiesces");
        assert!(rounds >= 1);
        oracle.re_replicate();
        assert_eq!(
            repaired.inventory(),
            oracle.inventory(),
            "anti-entropy fixed point must equal the oracle sweep"
        );
        // Quiescent means a further round moves nothing.
        let extra = repaired.anti_entropy_round(1_000);
        assert_eq!(extra.entries_sent, 0);
        assert!(!extra.hit_budget);
        assert_ledger(&repaired);
    }

    #[test]
    fn repair_budget_cuts_rounds_short_but_converges() {
        let mut net = ChurnNetwork::new(14, durable_config(12).with_replication(3)).unwrap();
        for i in 0..6u32 {
            net.query_resilient(&r(i * 70, i * 70 + 80));
        }
        let downed = net.crash_random(4);
        for id in downed {
            net.restart(id).unwrap();
        }
        net.stabilize(128).expect("recovers");
        let first = net.anti_entropy_round(1);
        if first.entries_sent > 0 {
            assert!(first.hit_budget, "budget 1 must cut a non-trivial round");
            assert_eq!(first.entries_sent, 1);
        }
        let rounds = net.repair_until_quiescent(10_000, 1).expect("quiesces");
        // One entry per round, plus the final empty round that proves
        // quiescence.
        assert_eq!(
            rounds as u64,
            net.resilience().repair_entries_sent - first.entries_sent + 1
        );
        let extra = net.anti_entropy_round(1_000);
        assert_eq!(extra.entries_sent, 0);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_repair_budget_rejected() {
        small_net(1).anti_entropy_round(0);
    }

    /// The k smallest node ids become the minority island.
    fn split_minority(net: &mut ChurnNetwork, k: usize) -> (Vec<Id>, Vec<Id>) {
        let ids = net.chord().node_ids();
        assert!(k < ids.len());
        let minority: Vec<Id> = ids.iter().copied().take(k).collect();
        let majority: Vec<Id> = ids.iter().copied().skip(k).collect();
        net.partition(&[majority.clone(), minority.clone()]);
        (majority, minority)
    }

    #[test]
    fn partitioned_queries_degrade_and_heal_reconciles() {
        let mut net = ChurnNetwork::new(
            16,
            SystemConfig::default().with_seed(41).with_replication(2),
        )
        .unwrap();
        net.query_resilient(&r(100, 200));
        assert!(net.query_resilient(&r(100, 200)).exact, "warm cache");
        split_minority(&mut net, 5);
        net.stabilize(128).expect("islands settle");
        assert!(net.is_partitioned());
        // In-window queries never error; origins land on both sides, so
        // some must observe that a global owner sits across the split.
        let mut degraded = 0u64;
        for i in 0..12u32 {
            let out = net.query_resilient(&r(i * 60, i * 60 + 70));
            assert!((0.0..=1.0).contains(&out.recall));
            degraded += out.partition_degraded as u64;
        }
        assert!(degraded > 0, "a 5/16 split must degrade some queries");
        assert_eq!(net.resilience().partition_degraded_queries, degraded);
        assert!(
            net.resilience().partition_writes > 0,
            "in-window caching writes island-locally"
        );
        // Heal the ring, then reconcile storage: the pre-partition cache
        // must be an exact, undegraded hit again.
        let rejoined = net.heal();
        assert!(rejoined > 0, "split-brain rings must need rejoin edges");
        assert!(!net.is_partitioned());
        net.stabilize(128).expect("ring re-merges");
        net.repair_until_quiescent(256, 1_000)
            .expect("reconciliation quiesces");
        let out = net.query_resilient(&r(100, 200));
        assert!(out.exact, "pre-partition cache findable after heal");
        assert!(!out.partition_degraded);
        assert_ledger(&net);
    }

    #[test]
    fn post_heal_repair_matches_oracle_re_replication() {
        // Twin networks diverge identically through a partition window;
        // after healing, budgeted anti-entropy on one and the oracle sweep
        // on the other must land on bit-identical inventories.
        let run = |_: ()| {
            let mut net = ChurnNetwork::new(
                14,
                SystemConfig::default().with_seed(23).with_replication(2),
            )
            .unwrap();
            for i in 0..4u32 {
                net.query_resilient(&r(i * 90, i * 90 + 80));
            }
            split_minority(&mut net, 4);
            net.stabilize(128).expect("islands settle");
            for i in 0..8u32 {
                net.query_resilient(&r(i * 70 + 20, i * 70 + 90));
            }
            net.heal();
            net.stabilize(128).expect("ring re-merges");
            net
        };
        let mut repaired = run(());
        let mut oracle = run(());
        assert_eq!(repaired.inventory(), oracle.inventory(), "same divergence");
        assert!(repaired.resilience().partition_writes > 0);
        repaired
            .repair_until_quiescent(512, 7)
            .expect("repair quiesces");
        oracle.re_replicate();
        assert_eq!(
            repaired.inventory(),
            oracle.inventory(),
            "post-heal anti-entropy must reach the oracle fixed point"
        );
        let extra = repaired.anti_entropy_round(1_000);
        assert_eq!(extra.entries_sent, 0);
        assert_ledger(&repaired);
    }

    #[test]
    fn leave_during_partition_hands_buckets_island_locally() {
        let mut net = ChurnNetwork::new(16, SystemConfig::default().with_seed(41)).unwrap();
        let (_, minority) = split_minority(&mut net, 5);
        net.stabilize(128).expect("islands settle");
        // Populate minority-island storage through in-window queries.
        for i in 0..10u32 {
            net.query_resilient(&r(i * 55, i * 55 + 65));
        }
        let leaver = *minority
            .iter()
            .find(|m| {
                net.storage
                    .get(&m.0)
                    .map(|p| p.partition_count() > 0)
                    .unwrap_or(false)
            })
            .expect("some minority node caches a partition in-window");
        let handed: Vec<(u32, RangeSet)> = net.storage[&leaver.0]
            .entries()
            .map(|(i, rg)| (i, rg.clone()))
            .collect();
        net.leave(leaver).unwrap();
        net.stabilize(128).expect("recovers");
        for (ident, range) in &handed {
            let in_minority = minority.iter().filter(|m| **m != leaver).any(|m| {
                net.storage
                    .get(&m.0)
                    .and_then(|p| p.bucket(*ident))
                    .map(|b| b.contains(range))
                    .unwrap_or(false)
            });
            assert!(
                in_minority,
                "copy for identifier {ident} must stay inside the island"
            );
        }
        assert_ledger(&net);
    }

    #[test]
    fn leave_as_sole_island_member_loses_buckets() {
        let mut net = ChurnNetwork::new(12, SystemConfig::default().with_seed(2)).unwrap();
        net.query_resilient(&r(100, 200));
        let ids = net.chord().node_ids();
        let holder = *ids
            .iter()
            .find(|id| {
                net.storage
                    .get(&id.0)
                    .map(|p| p.partition_count() > 0)
                    .unwrap_or(false)
            })
            .expect("someone holds the cache");
        let rest: Vec<Id> = ids.iter().copied().filter(|i| *i != holder).collect();
        let held = net.storage[&holder.0].partition_count() as u64;
        net.partition(&[rest, vec![holder]]);
        let lost_before = net.resilience().buckets_lost;
        // Nobody reachable to inherit: the copies are lost, like an
        // abrupt failure, and the ledger records it.
        net.leave(holder).unwrap();
        assert_eq!(net.resilience().buckets_lost, lost_before + held);
        net.heal();
        net.stabilize(128).expect("recovers");
        assert_ledger(&net);
    }

    #[test]
    fn unset_deadline_is_bit_for_bit_with_unreachable_deadline() {
        // The deadline budget must not perturb the deterministic stream
        // when it never fires: a policy with a never-reached deadline
        // replays identically to the default.
        let mut a = ChurnNetwork::new(15, SystemConfig::default().with_seed(37)).unwrap();
        let mut b = ChurnNetwork::new(15, SystemConfig::default().with_seed(37)).unwrap();
        b.set_retry_policy(RetryPolicy::default().with_deadline(u64::MAX));
        a.set_lookup_loss(0.3);
        b.set_lookup_loss(0.3);
        for i in 0..20u32 {
            let q = r((i % 5) * 80, (i % 5) * 80 + 40);
            assert_eq!(a.query_resilient(&q), b.query_resilient(&q), "query {i}");
        }
        assert!(a.resilience().retries > 0, "loss must force retries");
        assert_eq!(a.resilience(), b.resilience());
    }

    #[test]
    fn zero_deadline_forfeits_every_retry() {
        let mut net = ChurnNetwork::new(15, SystemConfig::default().with_seed(37)).unwrap();
        net.set_retry_policy(RetryPolicy::default().with_deadline(0));
        net.set_lookup_loss(0.4);
        for i in 0..15u32 {
            let out = net.query_resilient(&r(i * 50, i * 50 + 45));
            assert!((0.0..=1.0).contains(&out.recall));
        }
        assert_eq!(net.resilience().retries, 0, "deadline 0 bars all retries");
        assert!(net.resilience().deadline_exhausted > 0);
        assert!(
            net.resilience().lookups_failed > 0,
            "lost lookups give up on the spot"
        );
        assert_eq!(net.resilience().backoff_time, 0, "no waiting ever happens");
    }

    #[test]
    fn query_resilient_survives_unstabilized_mass_failure() {
        // Crash a third of the ring and query *before* stabilization: the
        // retry path (failure-aware routing + backoff-with-stabilize) must
        // answer without panicking or erroring, falling back to source only
        // as a last resort.
        let mut net = ChurnNetwork::new(20, SystemConfig::default().with_seed(31)).unwrap();
        net.query_resilient(&r(100, 200));
        net.fail_random(6);
        let mut fallbacks = 0;
        for i in 0..10u32 {
            let out = net.query_resilient(&r(i * 50, i * 50 + 60));
            assert!(out.recall >= 0.0 && out.recall <= 1.0);
            fallbacks += out.fell_back_to_source as u32;
        }
        assert_eq!(
            net.resilience().source_fallbacks as u32,
            fallbacks,
            "stats must agree with outcomes"
        );
    }
}
