//! The range-selection system over a *live* Chord network.
//!
//! The experiment harness measures steady state over a static ring
//! ([`crate::RangeSelectNetwork`]); this module composes the same §4 query
//! procedure with [`ars_chord::DynamicNetwork`] so peers can join, leave,
//! and crash mid-stream:
//!
//! * a graceful **leave** hands the peer's buckets to its ring successor
//!   (who becomes the owner of its identifier interval), so cached
//!   partitions survive;
//! * an abrupt **fail** loses the peer's buckets — subsequent queries miss
//!   and re-cache, which is exactly the paper's soft-state story (cached
//!   partitions are rebuildable from the sources).

use crate::bucket::Match;
use crate::config::{Placement, SystemConfig};
use crate::network::QueryOutcome;
use crate::peer::Peer;
use ars_chord::dynamic::ChordError;
use ars_chord::{DynamicNetwork, Id};
use ars_common::{DetRng, FxHashMap};
use ars_lsh::{HashGroups, RangeSet};

/// The paper's system over a dynamic (churning) Chord network.
pub struct ChurnNetwork {
    config: SystemConfig,
    chord: DynamicNetwork,
    storage: FxHashMap<u32, Peer>,
    groups: HashGroups,
    rng: DetRng,
}

impl ChurnNetwork {
    /// Grow a network to `n_peers` through the join protocol (each join
    /// followed by stabilization, as a slow deployment would).
    ///
    /// # Panics
    /// Panics if the ring fails to converge while growing (cannot happen
    /// without failures).
    pub fn new(n_peers: usize, config: SystemConfig) -> ChurnNetwork {
        assert!(n_peers >= 1);
        let mut rng = DetRng::new(config.seed);
        let mut group_rng = rng.fork();
        let groups = HashGroups::generate(config.family, config.k, config.l, &mut group_rng);
        let first = Id(rng.next_u32());
        let mut chord = DynamicNetwork::bootstrap(first, 8);
        let mut storage = FxHashMap::default();
        storage.insert(first.0, Peer::new(first));
        while chord.len() < n_peers {
            let id = Id(rng.next_u32());
            if chord.node_ids().contains(&id) {
                continue;
            }
            chord.join(id, first).expect("join while growing");
            chord.stabilize_all(32);
            storage.insert(id.0, Peer::new(id));
        }
        chord
            .stabilize_until_consistent(64)
            .expect("growth converges");
        ChurnNetwork {
            config,
            chord,
            storage,
            groups,
            rng,
        }
    }

    /// Number of alive peers.
    pub fn len(&self) -> usize {
        self.chord.len()
    }

    /// True if no peers are alive (cannot happen through this API).
    pub fn is_empty(&self) -> bool {
        self.chord.is_empty()
    }

    /// The underlying dynamic Chord network.
    pub fn chord(&self) -> &DynamicNetwork {
        &self.chord
    }

    /// Total cached partition copies across alive peers.
    pub fn total_partitions(&self) -> usize {
        self.storage.values().map(Peer::partition_count).sum()
    }

    fn place(&self, identifier: u32) -> Id {
        match self.config.placement {
            Placement::Uniformized => Id(ars_chord::sha1::sha1_u32(&identifier.to_be_bytes())),
            Placement::Direct => Id(identifier),
        }
    }

    /// Abruptly crash a peer: its cached partitions are lost.
    pub fn fail(&mut self, id: Id) -> Result<(), ChordError> {
        self.chord.fail(id)?;
        self.storage.remove(&id.0);
        Ok(())
    }

    /// Crash `count` random peers at once.
    pub fn fail_random(&mut self, count: usize) {
        for _ in 0..count {
            let ids = self.chord.node_ids();
            if ids.len() <= 1 {
                return;
            }
            let victim = ids[self.rng.gen_index(ids.len())];
            let _ = self.fail(victim);
        }
    }

    /// Gracefully leave: buckets are handed to the departing peer's ring
    /// successor before it goes.
    pub fn leave(&mut self, id: Id) -> Result<(), ChordError> {
        // Determine the inheritor *before* removing the node.
        let inheritor = self.chord.true_owner(id.plus(1));
        self.chord.leave(id)?;
        if let Some(mut gone) = self.storage.remove(&id.0) {
            let handed = gone.drain();
            let heir = self
                .storage
                .get_mut(&inheritor.0)
                .expect("successor must be alive");
            for (ident, range) in handed {
                heir.store(ident, range);
            }
        }
        Ok(())
    }

    /// Join a fresh random peer and stabilize.
    pub fn join_random(&mut self) -> Result<Id, ChordError> {
        loop {
            let id = Id(self.rng.next_u32());
            if self.chord.node_ids().contains(&id) {
                continue;
            }
            let via = self.chord.node_ids()[0];
            self.chord.join(id, via)?;
            self.storage.insert(id.0, Peer::new(id));
            self.chord.stabilize_all(32);
            return Ok(id);
        }
    }

    /// Join with Chord's key migration: after the ring stabilizes, the new
    /// node's successor hands over every bucket whose identifier now falls
    /// in the new node's interval `(pred(new), new]` — so previously cached
    /// partitions stay findable across joins.
    pub fn join_random_with_migration(&mut self) -> Result<Id, ChordError> {
        let new = self.join_random()?;
        self.chord
            .stabilize_until_consistent(64)
            .ok_or(ChordError::RoutingFailed {
                from: new,
                key: new,
            })?;
        // The new node's successor holds the keys that must move.
        let succ = self.chord.true_owner(new.plus(1));
        let pred = {
            // Predecessor on the current ring: the owner of (new - 1)'s
            // interval is `new` itself, so find the node before it.
            let ids = self.chord.node_ids();
            let pos = ids.iter().position(|&i| i == new).expect("joined");
            ids[(pos + ids.len() - 1) % ids.len()]
        };
        if succ != new {
            let placement = self.config.placement;
            let place = move |ident: u32| match placement {
                Placement::Uniformized => Id(ars_chord::sha1::sha1_u32(&ident.to_be_bytes())),
                Placement::Direct => Id(ident),
            };
            let moved: Vec<(u32, ars_lsh::RangeSet)> = {
                let donor = self
                    .storage
                    .get_mut(&succ.0)
                    .expect("successor storage exists");
                let all = donor.drain();
                let (mine, theirs): (Vec<_>, Vec<_>) = all
                    .into_iter()
                    .partition(|(ident, _)| place(*ident).in_open_closed(pred, new));
                for (ident, range) in theirs {
                    donor.store(ident, range);
                }
                mine
            };
            let newcomer = self.storage.get_mut(&new.0).expect("new storage exists");
            for (ident, range) in moved {
                newcomer.store(ident, range);
            }
        }
        Ok(new)
    }

    /// Run stabilization rounds (after injected churn).
    pub fn stabilize(&mut self, max_rounds: usize) -> Option<usize> {
        self.chord.stabilize_until_consistent(max_rounds)
    }

    /// Execute one query through the live routing state. Fails only if
    /// routing itself fails (possible mid-churn before stabilization).
    pub fn query(&mut self, q: &RangeSet) -> Result<QueryOutcome, ChordError> {
        assert!(!q.is_empty(), "cannot query an empty range");
        let hashed_range = if self.config.padding > 0.0 {
            q.pad(self.config.padding)
        } else {
            q.clone()
        };
        let identifiers = self.groups.identifiers(&hashed_range);
        let origin = {
            let ids = self.chord.node_ids();
            ids[self.rng.gen_index(ids.len())]
        };

        let mut hops = Vec::with_capacity(identifiers.len());
        let mut owners = Vec::with_capacity(identifiers.len());
        let mut best: Option<Match> = None;
        for &ident in &identifiers {
            let (owner, h) = self.chord.lookup(origin, self.place(ident))?;
            hops.push(h);
            owners.push(owner);
            let peer = self
                .storage
                .get(&owner.0)
                .expect("alive owner must have storage");
            let candidate = if self.config.use_local_index {
                peer.best_across_buckets(&hashed_range, self.config.matching)
            } else {
                peer.best_in_bucket(ident, &hashed_range, self.config.matching)
            };
            if let Some(m) = candidate {
                let better = match &best {
                    None => true,
                    Some(b) => m.score > b.score,
                };
                if better {
                    best = Some(m);
                }
            }
        }

        let exact = best
            .as_ref()
            .map(|m| m.range == hashed_range)
            .unwrap_or(false);
        let mut stored = false;
        if self.config.cache_on_miss && !exact {
            for (&ident, owner) in identifiers.iter().zip(&owners) {
                let peer = self
                    .storage
                    .get_mut(&owner.0)
                    .expect("alive owner must have storage");
                stored |= peer.store(ident, hashed_range.clone());
            }
        }

        let (similarity, recall, best_match) = match &best {
            Some(m) => (
                q.jaccard(&m.range),
                q.containment_in(&m.range),
                Some(m.range.clone()),
            ),
            None => (0.0, 0.0, None),
        };
        let mut distinct = owners.clone();
        distinct.sort_unstable();
        distinct.dedup();
        Ok(QueryOutcome {
            query: q.clone(),
            best_match,
            similarity,
            recall,
            exact,
            stored,
            hops,
            identifiers,
            peers_contacted: distinct.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: u32, hi: u32) -> RangeSet {
        RangeSet::interval(lo, hi)
    }

    fn small_net(seed: u64) -> ChurnNetwork {
        ChurnNetwork::new(12, SystemConfig::default().with_seed(seed))
    }

    #[test]
    fn query_and_requery_as_in_static_network() {
        let mut net = small_net(1);
        let miss = net.query(&r(30, 50)).unwrap();
        assert!(!miss.exact);
        let hit = net.query(&r(30, 50)).unwrap();
        assert!(hit.exact);
        assert_eq!(hit.recall, 1.0);
    }

    #[test]
    fn abrupt_failure_loses_cached_partitions() {
        let mut net = small_net(2);
        net.query(&r(100, 200)).unwrap();
        let before = net.total_partitions();
        assert!(before >= 1);
        // Kill every peer that holds a partition copy (walk all peers).
        let holders: Vec<Id> = net
            .chord()
            .node_ids()
            .into_iter()
            .filter(|id| {
                net.storage
                    .get(&id.0)
                    .map(|p| p.partition_count() > 0)
                    .unwrap_or(false)
            })
            .collect();
        for h in holders {
            if net.len() > 1 {
                net.fail(h).unwrap();
            }
        }
        net.stabilize(128).expect("recovers");
        assert_eq!(net.total_partitions(), 0, "failed peers take data down");
        // The same query now misses again — and re-caches (soft state).
        let miss_again = net.query(&r(100, 200)).unwrap();
        assert!(!miss_again.exact);
        assert!(net.total_partitions() >= 1);
        let hit = net.query(&r(100, 200)).unwrap();
        assert!(hit.exact);
    }

    #[test]
    fn graceful_leave_preserves_cached_partitions() {
        let mut net = small_net(3);
        net.query(&r(100, 200)).unwrap();
        let before = net.total_partitions();
        // Every holder leaves gracefully (handing buckets to successors).
        loop {
            let holder = net.chord().node_ids().into_iter().find(|id| {
                net.storage
                    .get(&id.0)
                    .map(|p| p.partition_count() > 0)
                    .unwrap_or(false)
            });
            match holder {
                Some(h) if net.len() > 1 => {
                    // The successor inherits; the partitions must survive.
                    net.leave(h).unwrap();
                    net.stabilize(64).expect("recovers");
                }
                _ => break,
            }
            if net.len() <= 2 {
                break;
            }
        }
        assert_eq!(
            net.total_partitions(),
            before,
            "graceful leave must not lose partitions"
        );
        // And they are still *findable*: the successor now owns the
        // identifier interval the partitions were stored under.
        let hit = net.query(&r(100, 200)).unwrap();
        assert!(hit.exact, "handed-over partition must still be located");
    }

    #[test]
    fn join_does_not_disturb_existing_cache() {
        let mut net = small_net(4);
        net.query(&r(5, 80)).unwrap();
        for _ in 0..4 {
            net.join_random().unwrap();
        }
        net.stabilize(64).expect("converges");
        // NOTE: a new peer can take over part of an identifier interval
        // without inheriting its buckets (Chord key migration on join is
        // not modelled) — the paper's soft-state answer applies: such
        // queries miss and re-cache. With 4 joins over 12 peers, at least
        // some copies usually stay findable; correctness (no crash, valid
        // outcome) is what this asserts.
        let out = net.query(&r(5, 80)).unwrap();
        assert!(out.recall >= 0.0);
    }

    #[test]
    fn join_with_migration_keeps_partitions_findable() {
        let mut net = small_net(6);
        // Cache several partitions.
        let queries = [r(10, 60), r(200, 260), r(500, 580), r(800, 870)];
        for q in &queries {
            net.query(q).unwrap();
        }
        // Many joins with key migration: every previously cached partition
        // must remain an exact hit afterwards.
        for _ in 0..8 {
            net.join_random_with_migration().unwrap();
        }
        net.stabilize(64).expect("converges");
        for q in &queries {
            let out = net.query(q).unwrap();
            assert!(
                out.exact,
                "partition for {q} lost after joins with migration"
            );
        }
    }

    #[test]
    fn mixed_churn_stream_keeps_answering() {
        let mut net = ChurnNetwork::new(20, SystemConfig::default().with_seed(5));
        let queries: Vec<RangeSet> = (0..40).map(|i| r(i * 10, i * 10 + 50)).collect();
        let mut answered = 0;
        for (i, q) in queries.iter().enumerate() {
            if i % 7 == 3 {
                net.fail_random(1);
                net.stabilize(64).expect("recovers");
            }
            if i % 11 == 5 {
                net.join_random().unwrap();
                net.stabilize(64).expect("converges");
            }
            if net.query(q).is_ok() {
                answered += 1;
            }
        }
        assert_eq!(answered, 40, "stabilized network must answer everything");
    }
}
