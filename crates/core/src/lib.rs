//! Approximate range selection queries in peer-to-peer systems.
//!
//! This crate assembles the paper's system (§4) from the substrates:
//! query ranges are hashed by `l` groups of `k` LSH functions
//! ([`ars_lsh`]) into a 32-bit identifier space organised as a Chord ring
//! ([`ars_chord`]); the peers owning the `l` identifiers search their
//! buckets for the best-matching cached partition; and on an inexact match
//! the query's own partition is cached at those peers for future queries.
//!
//! Two renditions of the protocol are provided:
//!
//! * [`network::RangeSelectNetwork`] — the direct-call simulation used by
//!   all experiments (deterministic, fast, full hop accounting);
//! * [`proto`] — the same protocol as explicit messages over
//!   [`ars_simnet`], including a binary wire codec; an integration test
//!   checks the two renditions agree query-for-query.
//!
//! ```
//! use ars_core::{RangeSelectNetwork, SystemConfig};
//! use ars_lsh::RangeSet;
//!
//! let mut net = RangeSelectNetwork::new(50, SystemConfig::default());
//! // First query misses and is cached...
//! let miss = net.query(&RangeSet::interval(30, 50));
//! assert!(miss.best_match.is_none());
//! // ...an identical re-query finds it.
//! let hit = net.query(&RangeSet::interval(30, 50));
//! assert_eq!(hit.recall, 1.0);
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod bucket;
pub mod churn;
pub mod config;
pub mod data;
pub mod durable;
pub mod engine;
pub mod exact;
pub mod index;
pub mod multiattr;
pub mod network;
pub mod peer;
pub mod proto;
pub mod recall;
pub mod resilient;

pub use adaptive::{AdaptiveClient, AdaptivePadding};
pub use bucket::Bucket;
pub use churn::{ChurnNetwork, InventoryEntry, RepairRound};
pub use config::{MatchMeasure, PlacementMode, SystemConfig};
pub use data::DataNetwork;
pub use durable::DurabilityConfig;
pub use engine::{Admission, AdmissionStats, EngineError, EngineOptions, QueryEngine, SubmitError};
pub use exact::ExactMatchNetwork;
pub use multiattr::{MultiAttrNetwork, MultiRange};
pub use network::{BatchTimings, NetworkStats, QueryOutcome, RangeSelectNetwork};
pub use peer::Peer;
pub use proto::{ProtoNetwork, ThreadedProtoNetwork};
pub use recall::{recall_curve, similarity_histogram, RECALL_THRESHOLDS};
pub use resilient::{
    BreakerConfig, BreakerState, CircuitBreaker, FailureDetector, HedgePolicy, ResilienceStats,
    RetryPolicy,
};
